"""Setup shim: kept so legacy editable installs work in offline
environments that lack the ``wheel`` package (PEP 660 needs it)."""

from setuptools import setup

setup()
