"""Live resharding: crash-safe online shard split/merge (DESIGN.md §14).

A serving instance's shard topology is frozen at build time, but load is
not: a hot range concentrates lookups and updates on one worker while
cold neighbours idle.  This module migrates a live :class:`ShardSet` to
a new topology **while it keeps serving**, through a staged state
machine journaled to ``reshard.json`` next to the live ``serve.json``:

    PREPARE   validate the request, compute the new boundaries, journal
              the intent (action, old/new boundaries, target epoch).
    COPY      quiesce-without-stopping (flush every source shard), take
              the journal watermark via ``begin_shipping`` — the same
              snapshot-bootstrap contract the replication shipper uses —
              and build the new epoch's shards from the sources' route
              sets under ``epoch-<NNNN>/``, each with its own fresh
              :class:`PersistenceManager`.
    CATCHUP   repeatedly drain ``collect_shipment`` from the sources and
              re-apply each journal record to the covering new shards;
              traffic keeps landing on the old topology and keeps being
              journaled, so nothing is missed and nothing blocks.
    CUTOVER   one synchronous block: final flush + final catch-up round,
              fsync the new shards, then atomically commit the stage
              record.  The commit write *is* the cutover: a crash before
              it rolls back, a crash after it rolls forward.
    RETIRE    close the source shards' managers; the superseded state
              directory is left in place for post-mortem.

Crash-resume matrix (applied by :func:`resolve_reshard`, which
:meth:`ShardSet.restore` runs before reading any metadata):

    ========== =========================================================
    stage      restart behaviour
    ========== =========================================================
    prepare    roll back: delete the partial epoch dir, serve the old
    copy       topology (nothing was promised yet)
    catchup
    cutover    roll forward: the new epoch was durable before the commit
    retire     record, so serve it and finish the bookkeeping
    done
    rolled-back serve the old topology (a previous abort already cleaned)
    ========== =========================================================

Record re-application mirrors :meth:`BackupReplica._apply_one`, with one
twist: records are *routed*.  A source shard's record applies to the new
shards whose ranges overlap the source's range (intersected with the
prefix's covering set for offer/apply records).  A merge can deliver the
same boundary-spanning offer twice — once from each source journal —
which is safe for the same reason client retries are: announces are
no-op modifies and withdraws are no-ops at the route level, and the new
shards journal whatever they apply, so replay stays byte-identical.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.compress.labels import CompressionMode
from repro.compress.onrtc import compress
from repro.partition.even import even_partition
from repro.partition.index_logic import RangeIndex
from repro.persist import codec
from repro.persist.manager import PersistenceManager
from repro.serve.router import ShardRouter
from repro.serve.shard import ShardSet, ShardWorker
from repro.trie.trie import BinaryTrie

PathLike = Union[str, Path]

#: Migration journal, written atomically next to the live ``serve.json``.
RESHARD_FILE = "reshard.json"
RESHARD_VERSION = 1

#: Address space ceiling (exclusive) of the last shard's range.
ADDRESS_SPACE = 1 << 32

STAGE_PREPARE = "prepare"
STAGE_COPY = "copy"
STAGE_CATCHUP = "catchup"
STAGE_CUTOVER = "cutover"
STAGE_RETIRE = "retire"
STAGE_DONE = "done"
STAGE_ROLLED_BACK = "rolled-back"

#: Stages whose crash-recovery verdict is "roll back".
ROLLBACK_STAGES = (STAGE_PREPARE, STAGE_COPY, STAGE_CATCHUP)
#: Stages whose crash-recovery verdict is "roll forward".
FORWARD_STAGES = (STAGE_CUTOVER, STAGE_RETIRE, STAGE_DONE)


class ReshardError(Exception):
    """The migration cannot proceed (bad plan, wrong state, lost data)."""


def epoch_dir_name(epoch: int) -> str:
    """Directory name of one topology epoch (``epoch-0002`` …)."""
    return f"epoch-{epoch:04d}"


@dataclass
class MigrationState:
    """The journaled state of one migration (the ``reshard.json`` body)."""

    stage: str
    action: str
    shard: int
    epoch_from: int
    epoch_to: int
    epoch_dir: str
    old_boundaries: List[int]
    new_boundaries: List[int]
    reason: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": RESHARD_VERSION,
            "stage": self.stage,
            "action": self.action,
            "shard": self.shard,
            "epoch_from": self.epoch_from,
            "epoch_to": self.epoch_to,
            "epoch_dir": self.epoch_dir,
            "old_boundaries": list(self.old_boundaries),
            "new_boundaries": list(self.new_boundaries),
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "MigrationState":
        try:
            if int(data["version"]) != RESHARD_VERSION:
                raise ValueError(
                    f"reshard journal v{data['version']}; this build "
                    f"reads v{RESHARD_VERSION}"
                )
            return cls(
                stage=str(data["stage"]),
                action=str(data["action"]),
                shard=int(data["shard"]),
                epoch_from=int(data["epoch_from"]),
                epoch_to=int(data["epoch_to"]),
                epoch_dir=str(data["epoch_dir"]),
                old_boundaries=[int(b) for b in data["old_boundaries"]],
                new_boundaries=[int(b) for b in data["new_boundaries"]],
                reason=str(data.get("reason", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReshardError(f"malformed reshard journal: {exc}") from exc


def write_state(root: PathLike, state: MigrationState) -> None:
    """Atomically persist the migration state (write + fsync + rename).

    The rename is the crash-consistency hinge: a reader either sees the
    previous stage or the new one, never a torn file.  The CUTOVER write
    in particular *is* the migration's commit record.
    """
    root = Path(root)
    tmp = root / (RESHARD_FILE + ".tmp")
    with open(tmp, "w", encoding="ascii") as handle:
        json.dump(state.as_dict(), handle, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, root / RESHARD_FILE)
    dir_fd = os.open(root, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def read_state(root: PathLike) -> Optional[MigrationState]:
    """The migration journal under ``root``, or ``None`` when absent."""
    path = Path(root) / RESHARD_FILE
    if not path.is_file():
        return None
    try:
        data = json.loads(path.read_text(encoding="ascii"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ReshardError(f"unreadable {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise ReshardError(f"{path} is not a JSON object")
    return MigrationState.from_dict(data)


def resolve_reshard(root: PathLike, _depth: int = 0) -> Path:
    """The directory holding the committed topology under ``root``.

    Applies the crash-resume matrix: an uncommitted migration is rolled
    back (partial epoch directory deleted, stage set to ``rolled-back``),
    a committed one is rolled forward (stage advanced to ``done`` and the
    epoch directory resolved — recursively, since the new epoch may have
    started a migration of its own before a crash).
    """
    root = Path(root)
    if _depth > 64:  # a cycle here means a corrupted journal chain
        raise ReshardError(f"reshard journal chain too deep under {root}")
    state = read_state(root)
    if state is None or state.stage == STAGE_ROLLED_BACK:
        return root
    epoch_path = root / state.epoch_dir
    if state.stage in ROLLBACK_STAGES:
        shutil.rmtree(epoch_path, ignore_errors=True)
        state.stage = STAGE_ROLLED_BACK
        if not state.reason:
            state.reason = "crash before cutover commit"
        write_state(root, state)
        return root
    if state.stage not in FORWARD_STAGES:
        raise ReshardError(
            f"unknown reshard stage {state.stage!r} in {root / RESHARD_FILE}"
        )
    if not (epoch_path / "serve.json").is_file():
        raise ReshardError(
            f"reshard journal claims stage {state.stage} but "
            f"{epoch_path} holds no topology"
        )
    if state.stage != STAGE_DONE:
        state.stage = STAGE_DONE
        write_state(root, state)
    return resolve_reshard(epoch_path, _depth + 1)


# -- planning -------------------------------------------------------------


def _source_routes(worker: ShardWorker) -> List[Tuple]:
    """The worker's current raw route set (post-applied updates)."""
    return list(worker.system.pipeline.trie_stage.table.source.routes())


def plan_split(
    shard_set: ShardSet,
    shard: int,
    at: Optional[int] = None,
    mode: CompressionMode = CompressionMode.DONT_CARE,
) -> List[int]:
    """New boundaries that split one shard's range in two.

    Without an explicit ``at``, the cut comes from even-partitioning the
    shard's own compressed table — the same machinery ``plan_shards``
    uses at build time, so the two halves carry near-equal TCAM
    populations.  Falls back to the range midpoint when the compressed
    table is too small to split evenly.
    """
    boundaries = shard_set.router.boundaries
    if not 0 <= shard < len(boundaries):
        raise ReshardError(
            f"no shard {shard} in a {len(boundaries)}-shard topology"
        )
    lo = boundaries[shard]
    hi = boundaries[shard + 1] if shard + 1 < len(boundaries) else ADDRESS_SPACE
    if hi - lo < 2:
        raise ReshardError(
            f"shard {shard} range [{lo:#x}, {hi:#x}) is too narrow to split"
        )
    cut = at
    if cut is None:
        routes = _source_routes(shard_set.workers[shard])
        compressed = sorted(
            compress(BinaryTrie.from_routes(routes), mode).items(),
            key=lambda route: route[0].sort_key(),
        )
        if len(compressed) >= 2:
            result = even_partition(compressed, 2)
            candidate = RangeIndex.from_partition(result).boundaries[1]
            if lo < candidate < hi:
                cut = candidate
        if cut is None:
            cut = lo + (hi - lo) // 2
    if not lo < cut < hi:
        raise ReshardError(
            f"split point {cut:#x} outside shard {shard} range "
            f"[{lo:#x}, {hi:#x})"
        )
    return boundaries[: shard + 1] + [cut] + boundaries[shard + 1:]


def plan_merge(shard_set: ShardSet, shard: int) -> List[int]:
    """New boundaries that merge ``shard`` with its right neighbour."""
    boundaries = shard_set.router.boundaries
    if not 0 <= shard < len(boundaries) - 1:
        raise ReshardError(
            f"cannot merge shard {shard} with its right neighbour in a "
            f"{len(boundaries)}-shard topology"
        )
    return boundaries[: shard + 1] + boundaries[shard + 2:]


def choose_reshard(
    shard_set: ShardSet,
    hot_share: float = 0.6,
    cold_share: float = 0.15,
) -> Optional[Tuple[str, int]]:
    """Pick a migration from the per-range hit counters, or ``None``.

    A shard absorbing at least ``hot_share`` of the total load is split;
    otherwise the coldest adjacent pair is merged when its combined share
    is at most ``cold_share``.  Deterministic (ties go to the lowest
    index), so campaign drills and the auto CLI agree on the decision.
    """
    return choose_reshard_from_loads(
        [
            worker.lookup_hits + worker.update_hits
            for worker in shard_set.workers
        ],
        hot_share=hot_share,
        cold_share=cold_share,
    )


def choose_reshard_from_loads(
    loads: Sequence[int],
    hot_share: float = 0.6,
    cold_share: float = 0.15,
) -> Optional[Tuple[str, int]]:
    """The :func:`choose_reshard` policy over bare per-range loads.

    The multi-process front has no in-process workers to read counters
    from — it aggregates ``lookup_hits + update_hits`` out of the
    per-worker STATS rows and feeds the merged list here, so the policy
    decision is identical to what the in-process topology would pick.
    """
    total = sum(loads)
    if total <= 0:
        return None
    hottest = max(range(len(loads)), key=lambda i: (loads[i], -i))
    if loads[hottest] / total >= hot_share:
        return ("split", hottest)
    if len(loads) >= 2:
        pair = min(
            range(len(loads) - 1), key=lambda i: (loads[i] + loads[i + 1], i)
        )
        if (loads[pair] + loads[pair + 1]) / total <= cold_share:
            return ("merge", pair)
    return None


# -- the migration controller ---------------------------------------------


@dataclass
class ReshardProgress:
    """Counters one migration accumulates (the status-RPC body)."""

    rounds: int = 0
    records_applied: int = 0
    duplicates_possible: bool = False


class ReshardCoordinator:
    """One staged migration of a live :class:`ShardSet`.

    The coordinator is synchronous and single-threaded by design: the
    server drives it from its event loop between requests, so every
    stage method runs with the shard set quiescent for the duration of
    the call — the same determinism contract the rest of the serving
    plane relies on.  Use :meth:`run_to_completion` outside a server.
    """

    def __init__(
        self,
        shards: ShardSet,
        action: str,
        shard: int,
        at: Optional[int] = None,
        reason: str = "",
        checkpoint_every: int = 0,
        sync_interval: int = 64,
    ) -> None:
        if action not in ("split", "merge"):
            raise ReshardError(f"unknown reshard action {action!r}")
        if not shards.durable:
            raise ReshardError(
                "resharding replays journal records; every shard needs a "
                "PersistenceManager (serve with --journal)"
            )
        self.shards = shards
        self.action = action
        self.shard = shard
        self.checkpoint_every = checkpoint_every
        self.sync_interval = sync_interval
        self.progress = ReshardProgress()
        self.new_set: Optional[ShardSet] = None
        manager = shards.workers[0].manager
        assert manager is not None
        #: The directory holding the live ``serve.json`` — shard state
        #: dirs are always directly beneath it.
        self.root = Path(manager.directory).parent
        if action == "split":
            new_boundaries = plan_split(shards, shard, at=at)
        else:
            new_boundaries = plan_merge(shards, shard)
        self.state = MigrationState(
            stage=STAGE_PREPARE,
            action=action,
            shard=shard,
            epoch_from=shards.epoch,
            epoch_to=shards.epoch + 1,
            epoch_dir=epoch_dir_name(shards.epoch + 1),
            old_boundaries=list(shards.router.boundaries),
            new_boundaries=new_boundaries,
            reason=reason,
        )
        #: New shards whose range overlaps each source shard's range —
        #: the routing table for re-applied journal records.
        self._targets = self._overlap_targets(
            shards.router.boundaries, new_boundaries
        )
        self._shipping = False

    @staticmethod
    def _overlap_targets(
        old_boundaries: Sequence[int], new_boundaries: Sequence[int]
    ) -> List[List[int]]:
        def ranges(boundaries: Sequence[int]) -> List[Tuple[int, int]]:
            ends = list(boundaries[1:]) + [ADDRESS_SPACE]
            return list(zip(boundaries, ends))

        old_ranges = ranges(old_boundaries)
        new_ranges = ranges(new_boundaries)
        return [
            [
                j
                for j, (new_lo, new_hi) in enumerate(new_ranges)
                if new_lo < old_hi and old_lo < new_hi
            ]
            for old_lo, old_hi in old_ranges
        ]

    # -- stage transitions ------------------------------------------------

    def _set_stage(self, stage: str) -> None:
        self.state.stage = stage
        write_state(self.root, self.state)

    def prepare(self) -> None:
        """Journal the intent; everything before this leaves no trace."""
        leftover = read_state(self.root)
        if leftover is not None and leftover.stage not in (
            STAGE_DONE,
            STAGE_ROLLED_BACK,
        ):
            raise ReshardError(
                f"a migration is already journaled at stage "
                f"{leftover.stage!r}; restart the server to resolve it"
            )
        self._set_stage(STAGE_PREPARE)

    def copy(self) -> None:
        """Snapshot-bootstrap the new epoch from the quiesced sources.

        Reuses the replication shipping contract: each source is flushed
        (journaled quiesce), ``begin_shipping`` marks the watermark the
        snapshot covers, and every record journaled afterwards
        accumulates for the catch-up rounds.
        """
        from repro.core.system import ClueSystem

        self._set_stage(STAGE_COPY)
        for worker in self.shards.workers:
            assert worker.manager is not None
            worker.flush()
            worker.manager.begin_shipping()
        self._shipping = True

        union: Dict = {}
        for worker in self.shards.workers:
            for prefix, hop in _source_routes(worker):
                union[prefix] = hop
        new_router = ShardRouter(
            self.state.new_boundaries, epoch=self.state.epoch_to
        )
        routes_per_shard: List[List[Tuple]] = [
            [] for _ in range(new_router.shard_count)
        ]
        for prefix, hop in sorted(
            union.items(), key=lambda route: route[0].sort_key()
        ):
            for j in new_router.shards_covering(prefix):
                routes_per_shard[j].append((prefix, hop))
        for j, subset in enumerate(routes_per_shard):
            if not subset:
                raise ReshardError(
                    f"new shard {j} would receive no routes; refusing a "
                    f"topology that cannot build a CLUE pipeline"
                )

        epoch_path = self.root / self.state.epoch_dir
        if epoch_path.exists():
            shutil.rmtree(epoch_path)
        config = self.shards.workers[0].system.config
        new_workers: List[ShardWorker] = []
        for j, subset in enumerate(routes_per_shard):
            system = ClueSystem(subset, config)
            manager = PersistenceManager(
                system,
                epoch_path / f"shard-{j}",
                checkpoint_every=self.checkpoint_every,
                sync_interval=self.sync_interval,
            )
            new_workers.append(ShardWorker(j, system, manager))
        new_set = ShardSet(new_router, new_workers)
        new_set._write_meta(epoch_path)
        self.new_set = new_set

    def begin_catchup(self) -> None:
        self._set_stage(STAGE_CATCHUP)

    def catchup_round(self) -> int:
        """Drain every source's shipment into the new shards.

        Returns the number of records re-applied; the caller loops until
        a round comes back empty (then cutover closes the race window
        synchronously).
        """
        assert self.new_set is not None
        applied = 0
        for worker in self.shards.workers:
            assert worker.manager is not None
            for _seq, kind, payload in worker.manager.collect_shipment():
                self._apply_record(worker.index, kind, payload)
                applied += 1
        self.progress.rounds += 1
        self.progress.records_applied += applied
        return applied

    def _apply_record(self, source: int, kind: str, payload: str) -> None:
        assert self.new_set is not None
        if kind in ("flush-auto", "checkpoint"):
            return  # markers recur inside the re-applied pumps/flushes
        targets = self._targets[source]
        workers = self.new_set.workers
        if kind in ("offer", "apply"):
            message = codec.decode_message(payload)
            covering = set(self.new_set.router.shards_covering(message.prefix))
            if len(targets) > 1:
                self.progress.duplicates_possible = True
            for j in targets:
                if j not in covering:
                    continue
                manager = workers[j].manager
                assert manager is not None
                if kind == "offer":
                    manager.offer_update(message)
                else:
                    manager.apply_update(message)
            return
        for j in targets:
            manager = workers[j].manager
            assert manager is not None
            if kind == "pump":
                manager.pump_updates(int(payload))
            elif kind == "drain":
                manager.drain_updates()
            elif kind == "flush":
                manager.flush_updates()
            else:
                raise ReshardError(f"unknown journal record kind {kind!r}")

    def cutover(self) -> ShardSet:
        """Commit the migration; returns the new shard set to install.

        One synchronous block — no request can interleave: flush the
        sources (their queues drain into journal records), apply the
        final shipment, fsync the new shards, then write the CUTOVER
        record.  The rename inside :func:`write_state` is the atomic
        commit: before it a crash rolls back, after it the new epoch is
        the topology of record.
        """
        assert self.new_set is not None
        for worker in self.shards.workers:
            worker.flush()
        self.catchup_round()
        for worker in self.new_set.workers:
            assert worker.manager is not None
            worker.manager.sync()
        self._set_stage(STAGE_CUTOVER)
        return self.new_set

    def retire(self) -> None:
        """Close the sources; the old state directory stays for post-mortem."""
        self._set_stage(STAGE_RETIRE)
        for worker in self.shards.workers:
            assert worker.manager is not None
            worker.manager.end_shipping()
            worker.manager.close()
        self._shipping = False
        self._set_stage(STAGE_DONE)

    def abort(self, reason: str) -> None:
        """Roll back a live migration (the non-crash error path)."""
        if self._shipping:
            for worker in self.shards.workers:
                if worker.manager is not None:
                    worker.manager.end_shipping()
            self._shipping = False
        if self.new_set is not None:
            for worker in self.new_set.workers:
                if worker.manager is not None:
                    worker.manager.close()
            self.new_set = None
        shutil.rmtree(self.root / self.state.epoch_dir, ignore_errors=True)
        self.state.reason = reason
        self._set_stage(STAGE_ROLLED_BACK)

    # -- convenience ------------------------------------------------------

    def run_to_completion(self, max_rounds: int = 64) -> ShardSet:
        """Drive every stage back to back (tests and offline tooling)."""
        try:
            self.prepare()
            self.copy()
            self.begin_catchup()
            for _ in range(max_rounds):
                if self.catchup_round() == 0:
                    break
            new_set = self.cutover()
            self.retire()
            return new_set
        except ReshardError as exc:
            self.abort(str(exc))
            raise

    def snapshot(self) -> Dict[str, object]:
        """Status-RPC view of the migration."""
        return {
            "stage": self.state.stage,
            "action": self.state.action,
            "shard": self.state.shard,
            "epoch_from": self.state.epoch_from,
            "epoch_to": self.state.epoch_to,
            "old_boundaries": list(self.state.old_boundaries),
            "new_boundaries": list(self.state.new_boundaries),
            "rounds": self.progress.rounds,
            "records_applied": self.progress.records_applied,
            "reason": self.state.reason,
        }
