"""Multi-process serving plane: one OS process per address-range shard.

Python's GIL serialises CPU work inside one process, so in-process
sharding buys almost nothing end-to-end (BENCH_serve: 2 shards =
1.12x).  This module breaks that ceiling with the topology the paper's
parallel-chip argument implies: each shard worker becomes its *own*
process — its own asyncio loop, :class:`ClueSystem` and
:class:`PersistenceManager` — and a parent **front** keeps the client
contract unchanged by routing the data plane over per-worker control
channels.

Pieces, bottom up:

* :class:`WorkerSpec` — how to spawn one worker: the ``repro serve
  --shard-index i`` argument vector.  Workers re-derive the shard plan
  themselves (:func:`~repro.serve.router.plan_shards` is deterministic),
  so nothing but the table/journal path needs to travel.
* :class:`WorkerProcess` — one spawned worker, with the stdout port
  handshake and the orphan-reap discipline of the chaos drills'
  ``ServerProcess``: any failure after ``Popen`` kills and reaps the
  child before the exception propagates.
* :class:`ProcessSupervisor` — spawns the fleet, polls for unexpected
  deaths, restarts crashed *durable* workers from their journal, and
  escalates TERM→KILL on shutdown so the parent never leaves orphans.
* :class:`_WorkerLink` — the parent's one multiplexed connection to a
  worker: request-id-correlated futures over the ordinary binary
  protocol (responses arrive in request order; the id map makes the
  link safe for concurrent callers anyway).
* :class:`ProcessFront` — the parent server clients talk to.  Lookups
  scatter by home shard and gather in request order; updates fan out to
  every covering shard and merge acks exactly like
  :meth:`ShardSet.update`; admin requests aggregate worker snapshots
  (stats rows keep their global shard index and range); MSG_DRAIN and
  SIGTERM fan the drain out to every worker — each flushes, writes its
  final checkpoint and exits 0 — before the parent itself exits.

A worker that dies mid-serve is reaped by the supervisor's poll loop
and its range answers ``BUSY ("worker")`` until the journal-restore
respawn brings it back; the parent never hangs on a dead child.

Durability invariant: an ack a client saw was journaled+fsynced by the
owning worker *before* the ack left it, so a crash or drain anywhere in
the tree loses nothing acked, and a single-process
:meth:`ShardSet.restore` of the shared journal directory reproduces the
multi-process fingerprint byte for byte
(:func:`~repro.serve.shard.combine_fingerprints`).
"""

from __future__ import annotations

import asyncio
import os
import re
import subprocess
import sys
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serve import protocol
from repro.serve.protocol import Frame, ProtocolError, UpdateAck
from repro.serve.router import ShardRouter
from repro.serve.server import FrameServer, ServeConfig
from repro.serve.shard import ShardSet, combine_fingerprints
from repro.serve.stats import ServeStats

#: The stdout handshake every serve process prints once bound.
STARTUP_RE = re.compile(r"serving on \S*?:(\d+)")


class WorkerError(RuntimeError):
    """A worker process failed to start, died, or broke protocol."""


class _WorkerShed(Exception):
    """Internal: this request cannot be served right now; shed as BUSY."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass
class WorkerSpec:
    """Everything needed to spawn (or respawn) one shard worker."""

    shard_count: int
    table: Optional[str] = None
    journal: Optional[str] = None
    restore: bool = False
    chips: int = 4
    dred: int = 1_024
    queue: int = 256
    update_queue: int = 256
    backend: str = "fast"
    #: Worker-side inflight window.  The parent multiplexes every client
    #: connection onto one upstream link, so this is deliberately wider
    #: than the client-facing window; the link's semaphore never admits
    #: more than this, so workers never shed "window" at the parent.
    window: int = 64
    pump_budget: Optional[int] = None
    checkpoint_every: int = 0
    sync_every: int = 64
    drain_grace: float = 2.0
    faults: Optional[str] = None
    host: str = "127.0.0.1"

    @property
    def durable(self) -> bool:
        return self.journal is not None

    def cli_args(self, index: int, restore: Optional[bool] = None) -> List[str]:
        """The ``repro serve`` argument vector for shard ``index``."""
        restore = self.restore if restore is None else restore
        args = [
            "serve",
            "--shards", str(self.shard_count),
            "--shard-index", str(index),
            "--host", self.host,
            "--port", "0",
            "--chips", str(self.chips),
            "--dred", str(self.dred),
            "--queue", str(self.queue),
            "--update-queue", str(self.update_queue),
            "--backend", self.backend,
            "--window", str(self.window),
            "--drain-grace", str(self.drain_grace),
        ]
        if self.pump_budget is not None:
            args += ["--pump-budget", str(self.pump_budget)]
        if restore:
            if self.journal is None:
                raise WorkerError("cannot restore a worker without a journal")
            args += ["--restore", "--journal", self.journal]
        else:
            if self.table is None:
                raise WorkerError("worker spec needs a table (or restore)")
            args += ["--table", self.table]
            if self.journal is not None:
                args += ["--journal", self.journal]
        if self.journal is not None:
            args += [
                "--checkpoint-every", str(self.checkpoint_every),
                "--sync-every", str(self.sync_every),
            ]
        if self.faults is not None:
            args += ["--faults", self.faults]
        return args


class WorkerProcess:
    """One spawned shard worker (the PR 6 orphan-reap pattern).

    The constructor either returns a fully wired process — reader
    thread pumping stdout for the ``serving on host:port`` handshake —
    or kills and reaps whatever it spawned before raising; a worker can
    never outlive the supervisor's knowledge of it.
    """

    def __init__(self, index: int, cli_args: Sequence[str]) -> None:
        self.index = index
        env = os.environ.copy()
        root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            root if not existing else root + os.pathsep + existing
        )
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", *cli_args],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            self.lines: List[str] = []
            self.port: Optional[int] = None
            self._port_ready = threading.Event()
            self._reader = threading.Thread(target=self._pump, daemon=True)
            self._reader.start()
        except BaseException:
            self.proc.kill()
            self.proc.wait()
            raise

    def _pump(self) -> None:
        try:
            assert self.proc.stdout is not None
            for line in self.proc.stdout:
                self.lines.append(line.rstrip("\n"))
                match = STARTUP_RE.search(line)
                if match and self.port is None:
                    self.port = int(match.group(1))
                    self._port_ready.set()
        finally:
            self._port_ready.set()  # EOF: wake any waiter, port may be None

    def wait_port(self, timeout: float) -> int:
        if not self._port_ready.wait(timeout) or self.port is None:
            tail = self.tail()
            self.kill()
            raise WorkerError(
                f"shard worker {self.index} failed to start"
                + (f":\n{tail}" if tail else "")
            )
        return self.port

    @property
    def alive(self) -> bool:
        return self.proc.poll() is None

    def wait(self, timeout: Optional[float] = None) -> Optional[int]:
        """Exit code, or ``None`` if still running at ``timeout``."""
        try:
            return self.proc.wait(timeout)
        except subprocess.TimeoutExpired:
            return None

    def terminate(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
        self.proc.wait()

    def tail(self, count: int = 20) -> str:
        return "\n".join(self.lines[-count:])


class ProcessSupervisor:
    """Spawns, watches, restarts and reaps the per-shard worker fleet."""

    def __init__(
        self,
        spec: WorkerSpec,
        boundaries: Sequence[int],
        epoch: int = 1,
        restart_limit: int = 1,
        startup_timeout: float = 60.0,
    ) -> None:
        if len(boundaries) != spec.shard_count:
            raise WorkerError(
                f"{len(boundaries)} boundaries for "
                f"{spec.shard_count} worker(s)"
            )
        self.spec = spec
        self.boundaries = list(boundaries)
        self.epoch = epoch
        #: Respawns allowed per shard; only durable workers restart (a
        #: journal-less respawn would silently forget acked updates).
        self.restart_limit = restart_limit if spec.durable else 0
        self.startup_timeout = startup_timeout
        self.workers: List[Optional[WorkerProcess]] = (
            [None] * spec.shard_count
        )
        self.restarts = [0] * spec.shard_count
        #: Shards currently believed to be serving.
        self._serving: set = set()

    @property
    def shard_count(self) -> int:
        return self.spec.shard_count

    def start(self) -> None:
        """Spawn every worker; on any failure, no child survives."""
        try:
            for index in range(self.shard_count):
                self.workers[index] = WorkerProcess(
                    index, self.spec.cli_args(index)
                )
            for index in range(self.shard_count):
                worker = self.workers[index]
                assert worker is not None
                worker.wait_port(self.startup_timeout)
                self._serving.add(index)
        except BaseException:
            self.shutdown()
            raise

    def endpoints(self) -> List[Tuple[str, int]]:
        rows = []
        for worker in self.workers:
            assert worker is not None and worker.port is not None
            rows.append((self.spec.host, worker.port))
        return rows

    def poll_dead(self) -> List[int]:
        """Shards whose process exited since the last poll (reaped)."""
        dead = []
        for index in sorted(self._serving):
            worker = self.workers[index]
            if worker is not None and not worker.alive:
                worker.wait()  # reap the zombie
                self._serving.discard(index)
                dead.append(index)
        return dead

    def can_restart(self, index: int) -> bool:
        return self.restarts[index] < self.restart_limit

    def restart(self, index: int) -> Tuple[str, int]:
        """Respawn a crashed durable worker from its journal (blocking)."""
        if not self.can_restart(index):
            raise WorkerError(f"worker {index} is out of restart budget")
        self.restarts[index] += 1
        worker = WorkerProcess(index, self.spec.cli_args(index, restore=True))
        port = worker.wait_port(self.startup_timeout)
        self.workers[index] = worker
        self._serving.add(index)
        return (self.spec.host, port)

    def reap(self, index: int, timeout: float = 15.0) -> Optional[int]:
        """Wait for one worker to exit, escalating TERM then KILL."""
        worker = self.workers[index]
        if worker is None:
            return None
        code = worker.wait(timeout)
        if code is None:
            worker.terminate()
            code = worker.wait(5.0)
        if code is None:
            worker.kill()
            code = worker.proc.returncode
        self._serving.discard(index)
        return code

    def shutdown(self) -> None:
        """Hard-stop every remaining child (error paths; drain uses reap)."""
        for worker in self.workers:
            if worker is not None:
                worker.kill()
        self._serving.clear()


class _WorkerLink:
    """The parent's multiplexed protocol connection to one worker."""

    def __init__(self, index: int, host: str, port: int, window: int) -> None:
        self.index = index
        self.host = host
        self.port = port
        self.dead = False
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._gate = asyncio.Semaphore(max(1, window))

    async def connect(self) -> None:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        self._writer = writer
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop(reader)
        )

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                frame = await protocol.read_frame_async(reader)
                if frame is None:
                    break
                future = self._pending.pop(frame.request_id, None)
                if future is not None and not future.done():
                    future.set_result(frame)
        except (ProtocolError, ConnectionError, OSError):
            pass
        finally:
            self._fail_pending()

    def _fail_pending(self) -> None:
        self.dead = True
        for future in self._pending.values():
            if not future.done():
                future.set_exception(
                    WorkerError(f"link to worker {self.index} died")
                )
        self._pending.clear()

    async def call(self, msg_type: int, payload: bytes = b"") -> Frame:
        """One request/response over the link; raises on BUSY or death."""
        async with self._gate:
            if self.dead or self._writer is None:
                raise WorkerError(f"link to worker {self.index} is down")
            self._next_id = (self._next_id + 1) & 0xFFFFFFFF or 1
            request_id = self._next_id
            future = asyncio.get_running_loop().create_future()
            self._pending[request_id] = future
            try:
                self._writer.write(
                    protocol.encode_frame(msg_type, request_id, payload)
                )
                await self._writer.drain()
            except (ConnectionError, OSError) as exc:
                self._pending.pop(request_id, None)
                self.dead = True
                raise WorkerError(
                    f"link to worker {self.index} died: {exc}"
                ) from exc
            frame = await future
        if frame.type == protocol.MSG_ERROR:
            raise WorkerError(
                f"worker {self.index}: {protocol.decode_text(frame.payload)}"
            )
        if frame.type == protocol.MSG_BUSY:
            raise _WorkerShed(protocol.decode_text(frame.payload))
        return frame

    def abandon(self) -> None:
        """Synchronous teardown when the worker died under us."""
        self._fail_pending()
        if self._reader_task is not None:
            self._reader_task.cancel()
        if self._writer is not None:
            self._writer.close()

    async def close(self) -> None:
        self.dead = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._fail_pending()


class ProcessFront(FrameServer):
    """The parent server: client protocol in, worker fan-out behind.

    ``ServeClient``/``HAClient`` need no changes: the front answers the
    same frames a single-process :class:`ClueServer` would, with the
    same ordering guarantees.  Data-plane requests touching a crashed
    worker's range are answered ``BUSY ("worker")`` — never hung — and
    serve again once the journal-restore respawn completes.
    """

    def __init__(
        self,
        supervisor: ProcessSupervisor,
        config: Optional[ServeConfig] = None,
    ) -> None:
        super().__init__(config)
        if self.config.backup_dir or self.config.replicate_to:
            raise ValueError(
                "replication is not supported with --workers processes"
            )
        self.supervisor = supervisor
        self.router = ShardRouter(supervisor.boundaries, supervisor.epoch)
        self.links: List[Optional[_WorkerLink]] = (
            [None] * supervisor.shard_count
        )
        self._restarting: set = set()

    @property
    def role(self) -> str:
        return "primary"

    @property
    def durable(self) -> bool:
        return self.supervisor.spec.durable

    @property
    def epoch(self) -> int:
        return self.router.epoch

    # -- lifecycle ------------------------------------------------------

    async def _before_bind(self) -> None:
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.supervisor.start)
        try:
            for index, (host, port) in enumerate(self.supervisor.endpoints()):
                link = _WorkerLink(
                    index, host, port, self.supervisor.spec.window
                )
                await link.connect()
                self.links[index] = link
        except BaseException:
            self.supervisor.shutdown()
            raise
        self._write_meta()

    def _after_bind(self) -> None:
        self._spawn(self._monitor_loop())

    def _write_meta(self) -> None:
        """Record the process topology in ``serve.json`` (durable only).

        The required keys are exactly what :meth:`ShardSet.restore`
        reads, so a plain single-process restore of the directory works;
        the ``workers`` key is advisory endpoint discovery.
        """
        journal = self.supervisor.spec.journal
        if journal is None:
            return
        ShardSet.write_meta(
            journal,
            shards=self.supervisor.shard_count,
            boundaries=self.router.boundaries,
            epoch=self.epoch,
            extra={
                "workers": {
                    "mode": "processes",
                    "endpoints": [
                        [host, port]
                        for host, port in self.supervisor.endpoints()
                    ],
                }
            },
        )

    async def _drain_resources(self) -> None:
        """Fan the drain out: every worker flushes, checkpoints, exits."""
        loop = asyncio.get_running_loop()
        for index in range(self.supervisor.shard_count):
            link = self.links[index]
            self.links[index] = None
            if link is not None and not link.dead:
                try:
                    await asyncio.wait_for(
                        link.call(protocol.MSG_DRAIN), timeout=10.0
                    )
                except (WorkerError, _WorkerShed, asyncio.TimeoutError):
                    pass
            if link is not None:
                # Close promptly so the worker's own connection drain
                # sees EOF instead of waiting out its grace period.
                await link.close()
            await loop.run_in_executor(None, self.supervisor.reap, index)
        self.supervisor.shutdown()

    # -- crash watch ----------------------------------------------------

    async def _monitor_loop(self) -> None:
        while True:
            await asyncio.sleep(0.2)
            for index in self.supervisor.poll_dead():
                self._on_worker_death(index)

    def _on_worker_death(self, index: int) -> None:
        self.stats.worker_crashes += 1
        link = self.links[index]
        self.links[index] = None
        if link is not None:
            link.abandon()
        worker = self.supervisor.workers[index]
        code = worker.proc.returncode if worker is not None else None
        print(
            f"shard worker {index} died unexpectedly (exit {code}); "
            + (
                "restarting from its journal"
                if self.supervisor.can_restart(index)
                else "its range will answer BUSY"
            ),
            flush=True,
        )
        if self.supervisor.can_restart(index) and index not in self._restarting:
            self._restarting.add(index)
            self._spawn(self._restart_worker(index))

    async def _restart_worker(self, index: int) -> None:
        loop = asyncio.get_running_loop()
        try:
            host, port = await loop.run_in_executor(
                None, self.supervisor.restart, index
            )
            link = _WorkerLink(index, host, port, self.supervisor.spec.window)
            await link.connect()
        except (WorkerError, ConnectionError, OSError) as exc:
            print(f"shard worker {index} restart failed: {exc}", flush=True)
            return
        finally:
            self._restarting.discard(index)
        self.links[index] = link
        self.stats.worker_restarts += 1
        self._write_meta()
        print(f"shard worker {index} restarted on port {port}", flush=True)

    # -- dispatch -------------------------------------------------------

    def _dispatch(self, frame: Frame, state: Optional[Dict] = None):
        self.stats.requests_total += 1
        if frame.type == protocol.MSG_LOOKUP:
            return self._do_lookup(frame)
        if frame.type == protocol.MSG_UPDATE:
            return self._do_update(frame)
        self.stats.admin_requests += 1
        if frame.type == protocol.MSG_STATS:
            return self._do_stats(frame)
        if frame.type == protocol.MSG_HEALTH:
            return self._admin_ok(frame, self._health_snapshot())
        if frame.type == protocol.MSG_CHECKPOINT:
            return self._fan_admin(frame, protocol.MSG_CHECKPOINT)
        if frame.type == protocol.MSG_FINGERPRINT:
            return self._do_fingerprint(frame)
        if frame.type == protocol.MSG_FLUSH:
            return self._fan_admin(frame, protocol.MSG_FLUSH)
        if frame.type == protocol.MSG_DRAIN:
            self._request_shutdown()
            return self._admin_ok(frame, {"draining": True})
        if frame.type in (
            protocol.MSG_RESHARD,
            protocol.MSG_FAILOVER,
            protocol.MSG_REPLICATE,
        ):
            return self._error(
                frame,
                "not supported with --workers processes "
                "(run --workers threads for reshard/replication)",
            )
        return self._error(frame, f"unknown request type {frame.type:#x}")

    async def _call(self, index: int, msg_type: int, payload: bytes) -> Frame:
        link = self.links[index]
        if link is None or link.dead:
            raise _WorkerShed("worker")
        try:
            return await link.call(msg_type, payload)
        except WorkerError:
            raise _WorkerShed("worker") from None

    def _shed_busy(self, frame: Frame, reason: str) -> bytes:
        self.stats.busy_responses += 1
        return protocol.encode_frame(
            protocol.MSG_BUSY, frame.request_id, protocol.encode_text(reason)
        )

    # -- data plane -----------------------------------------------------

    async def _do_lookup(self, frame: Frame) -> bytes:
        self.stats.lookup_requests += 1
        try:
            addresses = protocol.decode_addresses(frame.payload)
        except ProtocolError as exc:
            self.stats.protocol_errors += 1
            return self._error(frame, str(exc))
        self.stats.lookups_total += len(addresses)
        try:
            if not addresses:
                return protocol.encode_frame(
                    protocol.MSG_LOOKUP_OK, frame.request_id, b""
                )
            shard_of = self.router.shard_of
            first = shard_of(addresses[0])
            if all(shard_of(address) == first for address in addresses):
                # Range-local batch (the common case under address-range
                # load): forward the encoded payload untouched.
                reply = await self._call(
                    first, protocol.MSG_LOOKUP, frame.payload
                )
                return protocol.encode_frame(
                    protocol.MSG_LOOKUP_OK, frame.request_id, reply.payload
                )
            buckets: Dict[int, List[int]] = {}
            positions: Dict[int, List[int]] = {}
            for position, address in enumerate(addresses):
                shard = shard_of(address)
                buckets.setdefault(shard, []).append(address)
                positions.setdefault(shard, []).append(position)
            targets = sorted(buckets)
            replies = await asyncio.gather(
                *(
                    self._call(
                        shard,
                        protocol.MSG_LOOKUP,
                        protocol.encode_addresses(buckets[shard]),
                    )
                    for shard in targets
                )
            )
            hops: List[Optional[int]] = [None] * len(addresses)
            for shard, reply in zip(targets, replies):
                for position, hop in zip(
                    positions[shard], protocol.decode_hops(reply.payload)
                ):
                    hops[position] = hop
            return protocol.encode_frame(
                protocol.MSG_LOOKUP_OK,
                frame.request_id,
                protocol.encode_hops(hops),
            )
        except _WorkerShed as exc:
            return self._shed_busy(frame, exc.reason)

    async def _do_update(self, frame: Frame) -> bytes:
        self.stats.update_requests += 1
        try:
            messages = protocol.decode_updates(frame.payload)
        except ProtocolError as exc:
            self.stats.protocol_errors += 1
            return self._error(frame, str(exc))
        self.stats.updates_total += len(messages)
        batches: List[List] = [[] for _ in range(self.supervisor.shard_count)]
        for message in messages:
            for shard in self.router.shards_covering(message.prefix):
                batches[shard].append(message)
        targets = [
            shard for shard, batch in enumerate(batches) if batch
        ]
        try:
            replies = await asyncio.gather(
                *(
                    self._call(
                        shard,
                        protocol.MSG_UPDATE,
                        protocol.encode_updates(batches[shard]),
                    )
                    for shard in targets
                )
            )
        except _WorkerShed as exc:
            return self._shed_busy(frame, exc.reason)
        accepted = shed = applied = 0
        durable = True
        for reply in replies:
            ack = protocol.decode_update_ack(reply.payload)
            accepted += ack.accepted
            shed += ack.shed
            applied += ack.applied
            durable = durable and ack.durable
        self.stats.updates_accepted += accepted
        self.stats.updates_shed += shed
        return protocol.encode_frame(
            protocol.MSG_UPDATE_OK,
            frame.request_id,
            protocol.encode_update_ack(
                UpdateAck(accepted, shed, applied, durable)
            ),
        )

    # -- admin fan-out --------------------------------------------------

    async def _fan_admin(self, frame: Frame, msg_type: int) -> bytes:
        """Fan one admin request to every worker, merge scalar results."""
        flushed = 0
        checkpoints: List[Optional[str]] = []
        for index in range(self.supervisor.shard_count):
            try:
                reply = await self._call(index, msg_type, b"")
            except _WorkerShed as exc:
                return self._error(
                    frame, f"shard {index} unavailable ({exc.reason})"
                )
            data = protocol.decode_json(reply.payload)
            assert isinstance(data, dict)
            flushed += int(data.get("flushed", 0))
            checkpoints.extend(data.get("checkpoints") or [])
        if msg_type == protocol.MSG_FLUSH:
            return self._admin_ok(frame, {"flushed": flushed})
        return self._admin_ok(frame, {"checkpoints": checkpoints})

    async def _do_fingerprint(self, frame: Frame) -> bytes:
        fingerprints: List[str] = []
        for index in range(self.supervisor.shard_count):
            try:
                reply = await self._call(index, protocol.MSG_FINGERPRINT, b"")
            except _WorkerShed as exc:
                return self._error(
                    frame, f"shard {index} unavailable ({exc.reason})"
                )
            data = protocol.decode_json(reply.payload)
            assert isinstance(data, dict)
            fingerprints.extend(data["shards"])
        return self._admin_ok(
            frame,
            {
                "fingerprint": combine_fingerprints(fingerprints),
                "shards": fingerprints,
            },
        )

    async def _do_stats(self, frame: Frame) -> bytes:
        """Aggregate worker snapshots; shard rows keep global identity."""
        rows: List[Dict[str, object]] = []
        serve_snapshots: List[Dict[str, object]] = []
        for index in range(self.supervisor.shard_count):
            try:
                reply = await self._call(index, protocol.MSG_STATS, b"")
            except _WorkerShed:
                continue  # a dead worker still shows up in "workers"
            data = protocol.decode_json(reply.payload)
            assert isinstance(data, dict)
            serve_snapshots.append(data.get("serve") or {})
            rows.extend(data.get("shards") or [])
        rows.sort(key=lambda row: int(row.get("shard", 0)))
        return self._admin_ok(
            frame,
            {
                "serve": self.stats.as_dict(),
                "workers_serve": ServeStats.merged(serve_snapshots).as_dict(),
                "shards": rows,
                "draining": self.draining,
                "workers": self._worker_rows(),
            },
        )

    def _worker_rows(self) -> List[Dict[str, object]]:
        rows = []
        for index in range(self.supervisor.shard_count):
            worker = self.supervisor.workers[index]
            link = self.links[index]
            start, end = ShardSet._worker_span(self.router.boundaries, index)
            rows.append(
                {
                    "shard": index,
                    "host": self.supervisor.spec.host,
                    "port": worker.port if worker is not None else None,
                    "alive": bool(
                        worker is not None
                        and worker.alive
                        and link is not None
                        and not link.dead
                    ),
                    "restarts": self.supervisor.restarts[index],
                    "range": [start, end],
                }
            )
        return rows

    def _health_snapshot(self) -> Dict[str, object]:
        return {
            "status": "draining" if self.draining else "ok",
            "role": self.role,
            "mode": "processes",
            "shards": self.supervisor.shard_count,
            "durable": self.durable,
            "epoch": self.epoch,
            "port": self.port,
            "replicas": [[self.config.host, self.port, "primary"]],
            "boundaries": list(self.router.boundaries),
            "workers": self._worker_rows(),
        }
