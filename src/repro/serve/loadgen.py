"""Loopback load generator: the measuring stick of the serving plane.

Drives one pipelined connection with pre-encoded lookup batches and
reports sustained lookups/sec plus p50/p99 request latency.  Payloads
are encoded before the clock starts, so the number measures the server
(framing, shard routing, engine) plus the wire — not the generator.

BUSY answers are counted by reason, because they mean opposite things:
``window`` is the generator outpacing the server's inflight window (a
pacing problem — count it, never retry), while ``draining`` and
``backup`` mean this endpoint will not serve at all.  Given a
:class:`~repro.serve.router.ReplicaMap`, the generator reacts to the
second kind by re-resolving the primary and replaying the unanswered
batches there instead of hammering a server that told it to go away.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import asdict, dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.net.prefix import Prefix
from repro.serve import protocol
from repro.serve.client import HAClient, ServeClient, ServeTimeoutError
from repro.serve.protocol import ProtocolError
from repro.serve.router import ReplicaMap
from repro.workload.trafficgen import TrafficGenerator

Route = Tuple[Prefix, int]


@dataclass
class LoadReport:
    """One load-generation run, ready for ``BENCH_serve.json``."""

    requests: int
    lookups: int
    busy: int
    duration_s: float
    lookups_per_sec: float
    p50_us: float
    p99_us: float
    batch_size: int
    window: int
    #: The two shed reasons, separately: pacing vs placement.
    busy_window: int = 0
    busy_draining: int = 0
    #: BUSY("backup") — landed on a replica that owns no range yet.
    busy_backup: int = 0
    #: BUSY("worker") — a multi-process front whose shard worker is
    #: down (crash window before the journal-restore respawn).
    busy_worker: int = 0
    #: Times the generator re-resolved the primary and reconnected.
    failovers: int = 0
    #: Requests replayed against a new primary after a redirect.
    retried: int = 0
    #: MSG_REDIRECT answers (mid-reshard cutover); replayed like
    #: redirect-class BUSYs when a replica map is available.
    redirects: int = 0

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    position = int(round(fraction * (len(sorted_values) - 1)))
    return sorted_values[position]


def generate_batches(
    routes: Sequence[Route],
    batch_count: int,
    batch_size: int,
    seed: int = 1,
) -> List[List[int]]:
    """Zipf-skewed destination addresses, pre-split into batches."""
    generator = TrafficGenerator(routes, seed=seed)
    return [generator.take(batch_size) for _ in range(batch_count)]


def batches_from_packets(
    addresses: Sequence[int],
    batch_count: int,
    batch_size: int,
) -> List[List[int]]:
    """An ingested packet trace pre-split into batches, cycling when the
    trace is shorter than the bench demands — same shape as
    :func:`generate_batches`, but real captured destinations."""
    if not addresses:
        raise ValueError("packet trace is empty")
    total = len(addresses)
    return [
        [
            addresses[(batch * batch_size + offset) % total]
            for offset in range(batch_size)
        ]
        for batch in range(batch_count)
    ]


def run_load(
    host: str,
    port: int,
    batches: Sequence[Sequence[int]],
    window: int = 4,
    replicas: Optional[ReplicaMap] = None,
    timeout: Optional[float] = 30.0,
    connect_attempts: int = 3,
    latencies_out: Optional[List[float]] = None,
) -> LoadReport:
    """Send every batch through one pipelined connection and measure.

    ``window`` requests ride in flight at once; responses arrive in
    request order, so latency is measured per request id.  Without a
    replica map every BUSY is terminal for its batch (counted, not
    retried); with one, redirect-class BUSYs and connection failures
    trigger failover — the unanswered batches replay against whichever
    replica has become primary, so the run completes across a kill.

    ``latencies_out`` receives the raw per-request latencies so callers
    merging several connections (:func:`run_load_processes`) can compute
    true percentiles over the union instead of averaging percentiles.
    """
    if window < 1:
        raise ValueError("window must be at least one request")
    payloads = [protocol.encode_addresses(batch) for batch in batches]
    latencies: List[float] = []
    lookups = 0
    busy_window = busy_draining = busy_backup = busy_worker = 0
    failovers = 0
    retried = 0
    pending: Deque[int] = deque(range(len(payloads)))
    outstanding: Dict[int, Tuple[int, float]] = {}
    completed = 0

    redirects = 0
    ha: Optional[HAClient] = None
    if replicas is not None:
        ha = HAClient(replicas, timeout=timeout)
        client = ha.connect()
    else:
        client = ServeClient(
            host,
            port,
            timeout=timeout,
            connect_attempts=connect_attempts,
        )

    def fail_over(requeue: bool) -> None:
        nonlocal client, failovers, retried
        assert ha is not None
        if requeue:
            # Unanswered requests died with the connection; their
            # batches replay on the new primary (idempotent lookups).
            for index, _started in outstanding.values():
                pending.appendleft(index)
            retried += len(outstanding)
        outstanding.clear()
        ha.drop()
        client = ha.connect()  # raises FailoverError when nobody serves
        failovers += 1

    started = time.perf_counter()
    try:
        while completed < len(payloads):
            try:
                while len(outstanding) < window and pending:
                    index = pending.popleft()
                    request_id = client.send(protocol.MSG_LOOKUP, payloads[index])
                    outstanding[request_id] = (index, time.perf_counter())
                frame = client.recv()
            except (ProtocolError, ServeTimeoutError, ConnectionError, OSError):
                if ha is None:
                    raise
                fail_over(requeue=True)
                continue
            now = time.perf_counter()
            index, sent_at = outstanding.pop(frame.request_id)
            if frame.type == protocol.MSG_BUSY:
                reason = protocol.decode_text(frame.payload)
                if reason == "window":
                    busy_window += 1
                    latencies.append(now - sent_at)
                    completed += 1
                elif reason == "worker":
                    # A crashed shard worker: transient (the supervisor
                    # restarts durable workers), but retrying against
                    # the same endpoint mid-crash-window just spins, so
                    # count it and move on like a pacing shed.
                    busy_worker += 1
                    latencies.append(now - sent_at)
                    completed += 1
                else:
                    if reason == "backup":
                        busy_backup += 1
                    else:
                        busy_draining += 1
                    if ha is None:
                        latencies.append(now - sent_at)
                        completed += 1
                    else:
                        pending.appendleft(index)
                        retried += 1
                        fail_over(requeue=True)
            elif frame.type == protocol.MSG_REDIRECT:
                # Mid-reshard cutover pause: the same endpoint serves
                # again (under a new epoch) moments later, so replay the
                # batch when failover machinery is available.
                redirects += 1
                if ha is None:
                    latencies.append(now - sent_at)
                    completed += 1
                else:
                    pending.appendleft(index)
                    retried += 1
                    fail_over(requeue=True)
            elif frame.type == protocol.MSG_LOOKUP_OK:
                latencies.append(now - sent_at)
                lookups += len(frame.payload) // 4
                completed += 1
            else:
                raise protocol.ProtocolError(
                    f"unexpected response type {frame.type:#x}"
                )
        duration = time.perf_counter() - started
    finally:
        if ha is not None:
            ha.close()
        else:
            client.close()
    latencies.sort()
    if latencies_out is not None:
        latencies_out.extend(latencies)
    busy = busy_window + busy_draining + busy_backup + busy_worker
    return LoadReport(
        requests=len(payloads),
        lookups=lookups,
        busy=busy,
        duration_s=duration,
        lookups_per_sec=lookups / duration if duration else 0.0,
        p50_us=_percentile(latencies, 0.50) * 1e6,
        p99_us=_percentile(latencies, 0.99) * 1e6,
        batch_size=max(len(batch) for batch in batches) if batches else 0,
        window=window,
        busy_window=busy_window,
        busy_draining=busy_draining,
        busy_backup=busy_backup,
        busy_worker=busy_worker,
        failovers=failovers,
        retried=retried,
        redirects=redirects,
    )


def split_batches(
    batches: Sequence[Sequence[int]], boundaries: Sequence[int]
) -> List[List[List[int]]]:
    """Split every batch by home shard, preserving in-batch order.

    Returns one batch list per shard; empty sub-batches are dropped, so
    a shard that owns none of a batch's addresses simply sees one fewer
    request.  Used to drive worker processes directly on their
    advertised per-shard ports — the topology ``serve.json`` publishes —
    which is what lets the generator actually exercise the cores.
    """
    from repro.serve.router import ShardRouter

    router = ShardRouter(boundaries)
    per_shard: List[List[List[int]]] = [[] for _ in boundaries]
    for batch in batches:
        buckets: Dict[int, List[int]] = {}
        for address in batch:
            buckets.setdefault(router.shard_of(address), []).append(address)
        for shard, sub in buckets.items():
            per_shard[shard].append(sub)
    return per_shard


def run_load_processes(
    endpoints: Sequence[Tuple[str, int]],
    boundaries: Sequence[int],
    batches: Sequence[Sequence[int]],
    window: int = 4,
    timeout: Optional[float] = 30.0,
    connect_attempts: int = 3,
) -> LoadReport:
    """Drive every worker process in parallel and merge one report.

    One generator thread per worker endpoint, each running
    :func:`run_load` over that shard's sub-batches (the generator's own
    threads release the GIL in socket I/O, so the *measured* CPU work —
    LPM in the worker processes — runs genuinely in parallel).
    Throughput is total lookups over the whole run's wall clock;
    percentiles are computed over the merged per-request latencies.
    """
    if len(endpoints) != len(boundaries):
        raise ValueError(
            f"{len(endpoints)} endpoint(s) for {len(boundaries)} shard(s)"
        )
    per_shard = split_batches(batches, boundaries)
    reports: List[Optional[LoadReport]] = [None] * len(endpoints)
    merged_latencies: List[float] = []
    lock = threading.Lock()
    failures: List[BaseException] = []

    def drive(shard: int) -> None:
        host, port = endpoints[shard]
        local: List[float] = []
        try:
            report = run_load(
                host,
                port,
                per_shard[shard],
                window=window,
                timeout=timeout,
                connect_attempts=connect_attempts,
                latencies_out=local,
            )
        except BaseException as exc:  # surfaced to the caller below
            with lock:
                failures.append(exc)
            return
        with lock:
            reports[shard] = report
            merged_latencies.extend(local)

    threads = [
        threading.Thread(target=drive, args=(shard,), daemon=True)
        for shard in range(len(endpoints))
        if per_shard[shard]
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - started
    if failures:
        raise failures[0]
    done = [report for report in reports if report is not None]
    merged_latencies.sort()
    lookups = sum(report.lookups for report in done)
    return LoadReport(
        requests=sum(report.requests for report in done),
        lookups=lookups,
        busy=sum(report.busy for report in done),
        duration_s=duration,
        lookups_per_sec=lookups / duration if duration else 0.0,
        p50_us=_percentile(merged_latencies, 0.50) * 1e6,
        p99_us=_percentile(merged_latencies, 0.99) * 1e6,
        batch_size=max(len(batch) for batch in batches) if batches else 0,
        window=window,
        busy_window=sum(report.busy_window for report in done),
        busy_draining=sum(report.busy_draining for report in done),
        busy_backup=sum(report.busy_backup for report in done),
        busy_worker=sum(report.busy_worker for report in done),
        failovers=sum(report.failovers for report in done),
        retried=sum(report.retried for report in done),
        redirects=sum(report.redirects for report in done),
    )
