"""Loopback load generator: the measuring stick of the serving plane.

Drives one pipelined connection with pre-encoded lookup batches and
reports sustained lookups/sec plus p50/p99 request latency.  Payloads
are encoded before the clock starts, so the number measures the server
(framing, shard routing, engine) plus the wire — not the generator.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Sequence, Tuple

from repro.net.prefix import Prefix
from repro.serve import protocol
from repro.serve.client import ServeClient
from repro.workload.trafficgen import TrafficGenerator

Route = Tuple[Prefix, int]


@dataclass
class LoadReport:
    """One load-generation run, ready for ``BENCH_serve.json``."""

    requests: int
    lookups: int
    busy: int
    duration_s: float
    lookups_per_sec: float
    p50_us: float
    p99_us: float
    batch_size: int
    window: int

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    position = int(round(fraction * (len(sorted_values) - 1)))
    return sorted_values[position]


def generate_batches(
    routes: Sequence[Route],
    batch_count: int,
    batch_size: int,
    seed: int = 1,
) -> List[List[int]]:
    """Zipf-skewed destination addresses, pre-split into batches."""
    generator = TrafficGenerator(routes, seed=seed)
    return [generator.take(batch_size) for _ in range(batch_count)]


def run_load(
    host: str,
    port: int,
    batches: Sequence[Sequence[int]],
    window: int = 4,
) -> LoadReport:
    """Send every batch through one pipelined connection and measure.

    ``window`` requests ride in flight at once; responses arrive in
    request order, so latency is measured per request id.  BUSY answers
    are counted, not retried — with a window at or below the server's
    inflight window there should be none.
    """
    if window < 1:
        raise ValueError("window must be at least one request")
    payloads = [protocol.encode_addresses(batch) for batch in batches]
    latencies: List[float] = []
    lookups = 0
    busy = 0
    with ServeClient(host, port) as client:
        send_times: Dict[int, float] = {}
        started = time.perf_counter()
        in_flight = 0
        next_batch = 0
        done = 0
        while done < len(payloads):
            while in_flight < window and next_batch < len(payloads):
                request_id = client.send(
                    protocol.MSG_LOOKUP, payloads[next_batch]
                )
                send_times[request_id] = time.perf_counter()
                next_batch += 1
                in_flight += 1
            frame = client.recv()
            now = time.perf_counter()
            latencies.append(now - send_times.pop(frame.request_id))
            if frame.type == protocol.MSG_BUSY:
                busy += 1
            elif frame.type == protocol.MSG_LOOKUP_OK:
                lookups += len(frame.payload) // 4
            else:
                raise protocol.ProtocolError(
                    f"unexpected response type {frame.type:#x}"
                )
            in_flight -= 1
            done += 1
        duration = time.perf_counter() - started
    latencies.sort()
    return LoadReport(
        requests=len(payloads),
        lookups=lookups,
        busy=busy,
        duration_s=duration,
        lookups_per_sec=lookups / duration if duration else 0.0,
        p50_us=_percentile(latencies, 0.50) * 1e6,
        p99_us=_percentile(latencies, 0.99) * 1e6,
        batch_size=max(len(batch) for batch in batches) if batches else 0,
        window=window,
    )
