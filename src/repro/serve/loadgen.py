"""Loopback load generator: the measuring stick of the serving plane.

Drives one pipelined connection with pre-encoded lookup batches and
reports sustained lookups/sec plus p50/p99 request latency.  Payloads
are encoded before the clock starts, so the number measures the server
(framing, shard routing, engine) plus the wire — not the generator.

BUSY answers are counted by reason, because they mean opposite things:
``window`` is the generator outpacing the server's inflight window (a
pacing problem — count it, never retry), while ``draining`` and
``backup`` mean this endpoint will not serve at all.  Given a
:class:`~repro.serve.router.ReplicaMap`, the generator reacts to the
second kind by re-resolving the primary and replaying the unanswered
batches there instead of hammering a server that told it to go away.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import asdict, dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.net.prefix import Prefix
from repro.serve import protocol
from repro.serve.client import HAClient, ServeClient, ServeTimeoutError
from repro.serve.protocol import ProtocolError
from repro.serve.router import ReplicaMap
from repro.workload.trafficgen import TrafficGenerator

Route = Tuple[Prefix, int]


@dataclass
class LoadReport:
    """One load-generation run, ready for ``BENCH_serve.json``."""

    requests: int
    lookups: int
    busy: int
    duration_s: float
    lookups_per_sec: float
    p50_us: float
    p99_us: float
    batch_size: int
    window: int
    #: The two shed reasons, separately: pacing vs placement.
    busy_window: int = 0
    busy_draining: int = 0
    #: BUSY("backup") — landed on a replica that owns no range yet.
    busy_backup: int = 0
    #: Times the generator re-resolved the primary and reconnected.
    failovers: int = 0
    #: Requests replayed against a new primary after a redirect.
    retried: int = 0
    #: MSG_REDIRECT answers (mid-reshard cutover); replayed like
    #: redirect-class BUSYs when a replica map is available.
    redirects: int = 0

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    position = int(round(fraction * (len(sorted_values) - 1)))
    return sorted_values[position]


def generate_batches(
    routes: Sequence[Route],
    batch_count: int,
    batch_size: int,
    seed: int = 1,
) -> List[List[int]]:
    """Zipf-skewed destination addresses, pre-split into batches."""
    generator = TrafficGenerator(routes, seed=seed)
    return [generator.take(batch_size) for _ in range(batch_count)]


def run_load(
    host: str,
    port: int,
    batches: Sequence[Sequence[int]],
    window: int = 4,
    replicas: Optional[ReplicaMap] = None,
    timeout: Optional[float] = 30.0,
    connect_attempts: int = 3,
) -> LoadReport:
    """Send every batch through one pipelined connection and measure.

    ``window`` requests ride in flight at once; responses arrive in
    request order, so latency is measured per request id.  Without a
    replica map every BUSY is terminal for its batch (counted, not
    retried); with one, redirect-class BUSYs and connection failures
    trigger failover — the unanswered batches replay against whichever
    replica has become primary, so the run completes across a kill.
    """
    if window < 1:
        raise ValueError("window must be at least one request")
    payloads = [protocol.encode_addresses(batch) for batch in batches]
    latencies: List[float] = []
    lookups = 0
    busy_window = busy_draining = busy_backup = 0
    failovers = 0
    retried = 0
    pending: Deque[int] = deque(range(len(payloads)))
    outstanding: Dict[int, Tuple[int, float]] = {}
    completed = 0

    redirects = 0
    ha: Optional[HAClient] = None
    if replicas is not None:
        ha = HAClient(replicas, timeout=timeout)
        client = ha.connect()
    else:
        client = ServeClient(
            host,
            port,
            timeout=timeout,
            connect_attempts=connect_attempts,
        )

    def fail_over(requeue: bool) -> None:
        nonlocal client, failovers, retried
        assert ha is not None
        if requeue:
            # Unanswered requests died with the connection; their
            # batches replay on the new primary (idempotent lookups).
            for index, _started in outstanding.values():
                pending.appendleft(index)
            retried += len(outstanding)
        outstanding.clear()
        ha.drop()
        client = ha.connect()  # raises FailoverError when nobody serves
        failovers += 1

    started = time.perf_counter()
    try:
        while completed < len(payloads):
            try:
                while len(outstanding) < window and pending:
                    index = pending.popleft()
                    request_id = client.send(protocol.MSG_LOOKUP, payloads[index])
                    outstanding[request_id] = (index, time.perf_counter())
                frame = client.recv()
            except (ProtocolError, ServeTimeoutError, ConnectionError, OSError):
                if ha is None:
                    raise
                fail_over(requeue=True)
                continue
            now = time.perf_counter()
            index, sent_at = outstanding.pop(frame.request_id)
            if frame.type == protocol.MSG_BUSY:
                reason = protocol.decode_text(frame.payload)
                if reason == "window":
                    busy_window += 1
                    latencies.append(now - sent_at)
                    completed += 1
                else:
                    if reason == "backup":
                        busy_backup += 1
                    else:
                        busy_draining += 1
                    if ha is None:
                        latencies.append(now - sent_at)
                        completed += 1
                    else:
                        pending.appendleft(index)
                        retried += 1
                        fail_over(requeue=True)
            elif frame.type == protocol.MSG_REDIRECT:
                # Mid-reshard cutover pause: the same endpoint serves
                # again (under a new epoch) moments later, so replay the
                # batch when failover machinery is available.
                redirects += 1
                if ha is None:
                    latencies.append(now - sent_at)
                    completed += 1
                else:
                    pending.appendleft(index)
                    retried += 1
                    fail_over(requeue=True)
            elif frame.type == protocol.MSG_LOOKUP_OK:
                latencies.append(now - sent_at)
                lookups += len(frame.payload) // 4
                completed += 1
            else:
                raise protocol.ProtocolError(
                    f"unexpected response type {frame.type:#x}"
                )
        duration = time.perf_counter() - started
    finally:
        if ha is not None:
            ha.close()
        else:
            client.close()
    latencies.sort()
    busy = busy_window + busy_draining + busy_backup
    return LoadReport(
        requests=len(payloads),
        lookups=lookups,
        busy=busy,
        duration_s=duration,
        lookups_per_sec=lookups / duration if duration else 0.0,
        p50_us=_percentile(latencies, 0.50) * 1e6,
        p99_us=_percentile(latencies, 0.99) * 1e6,
        batch_size=max(len(batch) for batch in batches) if batches else 0,
        window=window,
        busy_window=busy_window,
        busy_draining=busy_draining,
        busy_backup=busy_backup,
        failovers=failovers,
        retried=retried,
        redirects=redirects,
    )
