"""The asyncio serving plane: lookups and durable updates over TCP.

One event loop owns every shard (python's GIL would serialise the CPU
work anyway; a single loop keeps the update path deterministic, which
the crash-consistency contract needs).  Each connection gets a bounded
inflight window: requests beyond it are answered ``MSG_BUSY`` instead of
queueing without limit — the same shed-don't-stall philosophy as the
PR 1 update-storm backpressure, applied one layer up.  Responses always
leave in request order, BUSY included, so a pipelining client can match
them positionally.

Graceful drain (SIGTERM or an admin DRAIN request):

1. stop accepting connections;
2. answer BUSY to newly arriving data-plane requests, finish everything
   already admitted to a window, and read each connection to EOF (a
   grace period bounds how long a silent client can hold the process);
3. flush every shard — queued updates, deferred storm diffs, a final
   checkpoint, journal close;
4. exit 0.

Nothing admitted is dropped: every request is acked or explicitly
refused, which the serve-smoke CI job asserts.
"""

from __future__ import annotations

import asyncio
import signal
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.serve import protocol
from repro.serve.protocol import Frame, ProtocolError
from repro.serve.shard import ShardSet
from repro.serve.stats import ServeStats


@dataclass
class ServeConfig:
    """Network-layer knobs (the CLUE knobs live in :class:`SystemConfig`)."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Unanswered data-plane requests one connection may have queued;
    #: the next one is answered BUSY ("window").
    inflight_window: int = 8
    #: Seconds drain waits for clients to close before force-closing.
    drain_grace: float = 5.0
    #: Scheduler pump budget per update batch (None = the batch size);
    #: small budgets let the queue back up, holding storm mode open.
    pump_budget: Optional[int] = None
    #: File to write the bound port to (ephemeral-port discovery).
    port_file: Optional[str] = None


class ClueServer:
    """Serves one :class:`ShardSet` until told to drain."""

    def __init__(self, shards: ShardSet, config: Optional[ServeConfig] = None):
        self.shards = shards
        self.config = config or ServeConfig()
        self.stats = ServeStats()
        self.draining = False
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: Set[asyncio.Task] = set()
        self._stopped: Optional[asyncio.Event] = None
        self._shutdown_task: Optional[asyncio.Task] = None

    # -- lifecycle ------------------------------------------------------

    async def start(self, install_signal_handlers: bool = True) -> None:
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.port_file:
            with open(self.config.port_file, "w", encoding="ascii") as handle:
                handle.write(f"{self.port}\n")
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self._request_shutdown)
                except NotImplementedError:  # pragma: no cover - non-POSIX
                    pass

    def _request_shutdown(self) -> None:
        if self._shutdown_task is None:
            self._shutdown_task = asyncio.get_running_loop().create_task(
                self.shutdown()
            )

    async def shutdown(self) -> None:
        """Graceful drain; idempotent."""
        if self.draining:
            return
        self.draining = True
        assert self._server is not None and self._stopped is not None
        self._server.close()
        await self._server.wait_closed()
        if self._connections:
            _done, pending = await asyncio.wait(
                set(self._connections), timeout=self.config.drain_grace
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        self.shards.drain()
        self._stopped.set()

    async def run(self, install_signal_handlers: bool = True) -> int:
        """Start, serve until drained, return the process exit code."""
        await self.start(install_signal_handlers=install_signal_handlers)
        assert self._stopped is not None
        await self._stopped.wait()
        return 0

    async def wait_stopped(self) -> None:
        assert self._stopped is not None
        await self._stopped.wait()

    # -- connection handling --------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        self.stats.connections_total += 1
        self.stats.connections_active += 1
        window = self.config.inflight_window
        # The queue carries (frame, busy_reason) in arrival order; the
        # writer coroutine answers strictly in that order.  Its bound is
        # above the window so BUSY verdicts never stall the reader, yet
        # a client that stops reading responses still hits TCP
        # backpressure here instead of growing an unbounded buffer.
        queue: asyncio.Queue = asyncio.Queue(maxsize=window * 4 + 8)
        state = {"inflight": 0, "dead": False}
        responder = asyncio.create_task(self._respond_loop(writer, queue, state))
        try:
            while not state["dead"]:
                try:
                    frame = await protocol.read_frame_async(reader)
                except (ProtocolError, ConnectionError, OSError):
                    self.stats.protocol_errors += 1
                    break
                if frame is None:
                    break
                busy_reason = None
                if frame.type in (protocol.MSG_LOOKUP, protocol.MSG_UPDATE):
                    if self.draining:
                        busy_reason = "draining"
                    elif state["inflight"] >= window:
                        busy_reason = "window"
                    else:
                        state["inflight"] += 1
                await queue.put((frame, busy_reason))
        except asyncio.CancelledError:
            pass
        finally:
            await queue.put(None)
            try:
                await responder
            except asyncio.CancelledError:
                pass
            self.stats.connections_active -= 1
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond_loop(self, writer, queue, state: Dict) -> None:
        while True:
            item = await queue.get()
            if item is None:
                return
            frame, busy_reason = item
            if state["dead"]:
                continue  # keep consuming so the reader never blocks
            if busy_reason is not None:
                self.stats.busy_responses += 1
                response = protocol.encode_frame(
                    protocol.MSG_BUSY,
                    frame.request_id,
                    protocol.encode_text(busy_reason),
                )
            else:
                response = self._dispatch(frame)
                if frame.type in (protocol.MSG_LOOKUP, protocol.MSG_UPDATE):
                    state["inflight"] -= 1
            writer.write(response)
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                state["dead"] = True

    # -- request dispatch (synchronous on purpose) ----------------------

    def _dispatch(self, frame: Frame) -> bytes:
        self.stats.requests_total += 1
        try:
            if frame.type == protocol.MSG_LOOKUP:
                return self._do_lookup(frame)
            if frame.type == protocol.MSG_UPDATE:
                return self._do_update(frame)
            self.stats.admin_requests += 1
            if frame.type == protocol.MSG_STATS:
                return self._admin_ok(frame, self._stats_snapshot())
            if frame.type == protocol.MSG_HEALTH:
                return self._admin_ok(frame, self._health_snapshot())
            if frame.type == protocol.MSG_CHECKPOINT:
                return self._do_checkpoint(frame)
            if frame.type == protocol.MSG_FINGERPRINT:
                return self._admin_ok(
                    frame,
                    {
                        "fingerprint": self.shards.fingerprint(),
                        "shards": self.shards.shard_fingerprints(),
                    },
                )
            if frame.type == protocol.MSG_DRAIN:
                self._request_shutdown()
                return self._admin_ok(frame, {"draining": True})
            return self._error(frame, f"unknown request type {frame.type:#x}")
        except ProtocolError as exc:
            self.stats.protocol_errors += 1
            return self._error(frame, str(exc))

    def _do_lookup(self, frame: Frame) -> bytes:
        addresses = protocol.decode_addresses(frame.payload)
        self.stats.lookup_requests += 1
        self.stats.lookups_total += len(addresses)
        hops = self.shards.lookup(addresses)
        return protocol.encode_frame(
            protocol.MSG_LOOKUP_OK, frame.request_id, protocol.encode_hops(hops)
        )

    def _do_update(self, frame: Frame) -> bytes:
        messages = protocol.decode_updates(frame.payload)
        self.stats.update_requests += 1
        self.stats.updates_total += len(messages)
        ack = self.shards.update(messages, self.config.pump_budget)
        self.stats.updates_accepted += ack.accepted
        self.stats.updates_shed += ack.shed
        return protocol.encode_frame(
            protocol.MSG_UPDATE_OK,
            frame.request_id,
            protocol.encode_update_ack(ack),
        )

    def _do_checkpoint(self, frame: Frame) -> bytes:
        if not self.shards.durable:
            return self._error(frame, "server runs without a journal")
        return self._admin_ok(frame, {"checkpoints": self.shards.checkpoint()})

    def _stats_snapshot(self) -> Dict[str, object]:
        return {
            "serve": self.stats.as_dict(),
            "shards": self.shards.stats(),
            "draining": self.draining,
        }

    def _health_snapshot(self) -> Dict[str, object]:
        return {
            "status": "draining" if self.draining else "ok",
            "shards": len(self.shards.workers),
            "durable": self.shards.durable,
            "port": self.port,
        }

    @staticmethod
    def _admin_ok(frame: Frame, data: Dict[str, object]) -> bytes:
        return protocol.encode_frame(
            protocol.MSG_ADMIN_OK, frame.request_id, protocol.encode_json(data)
        )

    @staticmethod
    def _error(frame: Frame, message: str) -> bytes:
        return protocol.encode_frame(
            protocol.MSG_ERROR, frame.request_id, protocol.encode_text(message)
        )


class ServerThread:
    """A :class:`ClueServer` on a background thread (tests and benches).

    The asyncio loop lives entirely on the thread; :meth:`start` blocks
    until the port is bound, :meth:`stop` runs the same graceful drain
    SIGTERM would and joins the thread.
    """

    def __init__(self, shards: ShardSet, config: Optional[ServeConfig] = None):
        self.server = ClueServer(shards, config)
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.exit_code: Optional[int] = None

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        await self.server.start(install_signal_handlers=False)
        self._ready.set()
        await self.server.wait_stopped()
        self.exit_code = 0

    def start(self) -> int:
        """Start serving; returns the bound port."""
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server thread failed to start")
        assert self.server.port is not None
        return self.server.port

    def stop(self, timeout: float = 30.0) -> int:
        """Graceful drain, then join; returns the exit code (0)."""
        assert self._loop is not None
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(), self._loop
        )
        future.result(timeout=timeout)
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError("server thread failed to stop")
        assert self.exit_code is not None
        return self.exit_code

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        if self._thread.is_alive():
            self.stop()
