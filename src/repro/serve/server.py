"""The asyncio serving plane: lookups and durable updates over TCP.

One event loop owns every shard (python's GIL would serialise the CPU
work anyway; a single loop keeps the update path deterministic, which
the crash-consistency contract needs).  Each connection gets a bounded
inflight window: requests beyond it are answered ``MSG_BUSY`` instead of
queueing without limit — the same shed-don't-stall philosophy as the
PR 1 update-storm backpressure, applied one layer up.  Responses always
leave in request order, BUSY included, so a pipelining client can match
them positionally.

Replication (DESIGN.md §12): a primary started with ``replicate_to``
ships every committed journal batch to a backup through a
:class:`~repro.serve.replicate.JournalShipper`; a server started with
``backup_dir`` refuses the data plane (``BUSY "backup"``) and feeds a
:class:`~repro.serve.replicate.BackupReplica` from incoming
``MSG_REPLICATE`` frames instead.  The backup promotes itself — and
starts serving as an ordinary primary — when the replication feed hits
EOF (the primary died), when the heartbeat goes silent past
``heartbeat_timeout``, or when an admin sends ``MSG_FAILOVER``.

Graceful drain (SIGTERM or an admin DRAIN request):

1. stop accepting connections;
2. answer BUSY to newly arriving data-plane requests, finish everything
   already admitted to a window, and read each connection to EOF (a
   grace period bounds how long a silent client can hold the process);
3. flush every shard — queued updates, deferred storm diffs, a final
   checkpoint, journal close — and ship the trailing records to the
   backup, so a planned drain hands over a fully caught-up replica;
4. exit 0.

Nothing admitted is dropped: every request is acked or explicitly
refused, which the serve-smoke CI job asserts.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import signal
import threading
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Optional, Set

from repro.serve import protocol
from repro.serve.protocol import Frame, ProtocolError
from repro.serve.replicate import (
    ROLE_FOLLOWING,
    ROLE_PRIMARY,
    BackupReplica,
    JournalShipper,
    ReplicationConfig,
    ReplicationError,
)
from repro.serve.reshard import ReshardCoordinator, ReshardError, choose_reshard
from repro.serve.shard import ShardSet
from repro.serve.stats import ServeStats


@dataclass
class ServeConfig:
    """Network-layer knobs (the CLUE knobs live in :class:`SystemConfig`)."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Unanswered data-plane requests one connection may have queued;
    #: the next one is answered BUSY ("window").
    inflight_window: int = 8
    #: Seconds drain waits for clients to close before force-closing.
    drain_grace: float = 5.0
    #: Scheduler pump budget per update batch (None = the batch size);
    #: small budgets let the queue back up, holding storm mode open.
    pump_budget: Optional[int] = None
    #: File to write the bound port to (ephemeral-port discovery).
    port_file: Optional[str] = None
    #: ``host:port`` of a backup to ship committed journal records to.
    replicate_to: Optional[str] = None
    #: ``primary`` or ``quorum`` — when a client ack claims replication.
    ack_mode: str = "primary"
    #: Ship control fingerprints for continuous divergence checks; turn
    #: off when un-journaled chip faults are armed on the primary.
    ship_fingerprints: bool = True
    #: Start as a backup replica journaling epochs under this directory
    #: (mutually exclusive with serving a shard set from the start).
    backup_dir: Optional[str] = None
    #: Backup: promote automatically on feed EOF / heartbeat timeout.
    auto_promote: bool = True
    #: Primary: seconds between replication heartbeats.
    heartbeat_interval: float = 1.0
    #: Backup: seconds of feed silence before the watchdog promotes.
    heartbeat_timeout: float = 5.0
    #: Backup-side persistence cadence (mirrors ShardSet.build knobs).
    backup_checkpoint_every: int = 0
    backup_sync_interval: int = 64


class FrameServer:
    """The connection/backpressure machinery every serving role shares.

    Subclasses implement :meth:`_dispatch` — which may return encoded
    response ``bytes`` directly *or* a coroutine resolving to them (the
    multi-process front awaits worker RPCs mid-dispatch; responses still
    leave each connection strictly in request order because the respond
    loop awaits inline) — plus optional hooks:

    * :meth:`_before_bind` / :meth:`_after_bind` — resources around the
      listening socket (replication links, worker processes);
    * :meth:`_busy_reason` — why a data-plane frame is shed right now;
    * :meth:`_shed_response` — encode the shed verdict (BUSY/REDIRECT);
    * :meth:`_connection_lost` — per-connection teardown bookkeeping;
    * :meth:`_drain_resources` — flush owned state during shutdown.
    """

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self.stats = ServeStats()
        self.draining = False
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: Set[asyncio.Task] = set()
        self._stopped: Optional[asyncio.Event] = None
        self._shutdown_task: Optional[asyncio.Task] = None
        self._background: Set[asyncio.Task] = set()

    # -- lifecycle ------------------------------------------------------

    async def start(self, install_signal_handlers: bool = True) -> None:
        self._stopped = asyncio.Event()
        await self._before_bind()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.port_file:
            with open(self.config.port_file, "w", encoding="ascii") as handle:
                handle.write(f"{self.port}\n")
        self._after_bind()
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self._request_shutdown)
                except NotImplementedError:  # pragma: no cover - non-POSIX
                    pass

    async def _before_bind(self) -> None:
        """Bring up resources that must exist before accepting clients."""

    def _after_bind(self) -> None:
        """Spawn background tasks once the port is bound."""

    def _spawn(self, coro) -> None:
        task = asyncio.get_running_loop().create_task(coro)
        self._background.add(task)
        task.add_done_callback(self._background.discard)

    def _request_shutdown(self) -> None:
        if self._shutdown_task is None:
            self._shutdown_task = asyncio.get_running_loop().create_task(
                self.shutdown()
            )

    async def shutdown(self) -> None:
        """Graceful drain; idempotent."""
        if self.draining:
            return
        self.draining = True
        assert self._server is not None and self._stopped is not None
        self._server.close()
        await self._server.wait_closed()
        for task in list(self._background):
            task.cancel()
        if self._background:
            await asyncio.gather(*self._background, return_exceptions=True)
        if self._connections:
            _done, pending = await asyncio.wait(
                set(self._connections), timeout=self.config.drain_grace
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        await self._drain_resources()
        self._stopped.set()

    async def _drain_resources(self) -> None:
        """Flush whatever the role owns (shards, workers, shippers)."""

    async def run(self, install_signal_handlers: bool = True) -> int:
        """Start, serve until drained, return the process exit code."""
        await self.start(install_signal_handlers=install_signal_handlers)
        assert self._stopped is not None
        await self._stopped.wait()
        return 0

    async def wait_stopped(self) -> None:
        assert self._stopped is not None
        await self._stopped.wait()

    # -- connection handling --------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        self.stats.connections_total += 1
        self.stats.connections_active += 1
        window = self.config.inflight_window
        # The queue carries (frame, busy_reason) in arrival order; the
        # writer coroutine answers strictly in that order.  Its bound is
        # above the window so BUSY verdicts never stall the reader, yet
        # a client that stops reading responses still hits TCP
        # backpressure here instead of growing an unbounded buffer.
        queue: asyncio.Queue = asyncio.Queue(maxsize=window * 4 + 8)
        state = {"inflight": 0, "dead": False, "feed": False}
        responder = asyncio.create_task(self._respond_loop(writer, queue, state))
        try:
            while not state["dead"]:
                try:
                    frame = await protocol.read_frame_async(reader)
                except (ProtocolError, ConnectionError, OSError):
                    self.stats.protocol_errors += 1
                    break
                if frame is None:
                    break
                busy_reason = None
                if frame.type in (protocol.MSG_LOOKUP, protocol.MSG_UPDATE):
                    busy_reason = self._busy_reason(frame, state)
                    if busy_reason is None:
                        if state["inflight"] >= window:
                            busy_reason = "window"
                        else:
                            state["inflight"] += 1
                await queue.put((frame, busy_reason))
        except asyncio.CancelledError:
            pass
        finally:
            await queue.put(None)
            try:
                await responder
            except asyncio.CancelledError:
                pass
            self.stats.connections_active -= 1
            self._connections.discard(task)
            self._connection_lost(state)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _busy_reason(self, frame: Frame, state: Dict) -> Optional[str]:
        """Why a data-plane frame is shed before dispatch, or ``None``."""
        return "draining" if self.draining else None

    def _connection_lost(self, state: Dict) -> None:
        """Bookkeeping when a connection's reader loop finishes."""

    async def _respond_loop(self, writer, queue, state: Dict) -> None:
        while True:
            item = await queue.get()
            if item is None:
                return
            frame, busy_reason = item
            if state["dead"]:
                continue  # keep consuming so the reader never blocks
            if busy_reason is not None:
                response = self._shed_response(frame, busy_reason)
            else:
                response = self._dispatch(frame, state)
                if asyncio.iscoroutine(response):
                    response = await response
                if frame.type in (protocol.MSG_LOOKUP, protocol.MSG_UPDATE):
                    state["inflight"] -= 1
            writer.write(response)
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                state["dead"] = True

    def _shed_response(self, frame: Frame, busy_reason: str) -> bytes:
        self.stats.busy_responses += 1
        return protocol.encode_frame(
            protocol.MSG_BUSY,
            frame.request_id,
            protocol.encode_text(busy_reason),
        )

    def _dispatch(self, frame: Frame, state: Optional[Dict] = None):
        """Answer one admitted frame; bytes or a coroutine of bytes."""
        raise NotImplementedError

    @staticmethod
    def _admin_ok(frame: Frame, data: Dict[str, object]) -> bytes:
        return protocol.encode_frame(
            protocol.MSG_ADMIN_OK, frame.request_id, protocol.encode_json(data)
        )

    @staticmethod
    def _error(frame: Frame, message: str) -> bytes:
        return protocol.encode_frame(
            protocol.MSG_ERROR, frame.request_id, protocol.encode_text(message)
        )


class ClueServer(FrameServer):
    """Serves one :class:`ShardSet` until told to drain.

    ``shards`` may be ``None`` only for a backup (``backup_dir`` set):
    the shard set then arrives over the wire with the bootstrap frame
    and becomes servable at promotion.
    """

    def __init__(
        self,
        shards: Optional[ShardSet],
        config: Optional[ServeConfig] = None,
    ):
        super().__init__(config)
        self.shards = shards
        self.replica: Optional[BackupReplica] = None
        self.shipper: Optional[JournalShipper] = None
        #: Live migration controller (one at a time), and the snapshot of
        #: the last finished/aborted one for the status RPC.
        self.coordinator: Optional[ReshardCoordinator] = None
        self.last_reshard: Optional[Dict[str, object]] = None
        #: True only inside the optional pre-cutover pause: data-plane
        #: requests are answered MSG_REDIRECT instead of served.
        self.redirecting = False
        if self.config.backup_dir is not None:
            if shards is not None:
                raise ValueError("a backup bootstraps over the wire; "
                                 "do not pass shards")
            if self.config.replicate_to is not None:
                raise ValueError("chained replication is not supported")
            self.replica = BackupReplica(
                Path(self.config.backup_dir),
                checkpoint_every=self.config.backup_checkpoint_every,
                sync_interval=self.config.backup_sync_interval,
            )
        elif shards is None:
            raise ValueError("a server needs shards unless it is a backup")
        self._live_feeds: Set[int] = set()

    @property
    def role(self) -> str:
        """``primary`` | ``syncing`` | ``following`` | ``promoting``."""
        if self.replica is not None and self.replica.role != ROLE_PRIMARY:
            return self.replica.role
        return ROLE_PRIMARY

    # -- lifecycle hooks ------------------------------------------------

    async def _before_bind(self) -> None:
        if self.config.replicate_to is not None:
            assert self.shards is not None
            host, _, port = self.config.replicate_to.rpartition(":")
            self.shipper = JournalShipper(
                host or "127.0.0.1",
                int(port),
                self.shards,
                ReplicationConfig(
                    ack_mode=self.config.ack_mode,
                    ship_fingerprints=self.config.ship_fingerprints,
                ),
            )
            # The first connect must succeed: starting a "replicated"
            # service with no backup listening is an operator error.
            self.shipper.connect()

    def _after_bind(self) -> None:
        if self.shipper is not None:
            self._spawn(self._heartbeat_loop())
        if self.replica is not None and self.config.auto_promote:
            self._spawn(self._watchdog_loop())

    async def _drain_resources(self) -> None:
        if self.shards is not None:
            self.shards.drain()
        if self.shipper is not None:
            # The drain wrote trailing records (queue flush, final
            # checkpoint); hand the backup a fully caught-up journal.
            self.shipper.ship()
            self.shipper.close()

    # -- replication background tasks -----------------------------------

    async def _heartbeat_loop(self) -> None:
        """Primary: keep the replication link warm and acks drained."""
        while not self.draining:
            await asyncio.sleep(self.config.heartbeat_interval)
            if self.shipper is not None and not self.draining:
                self.shipper.heartbeat()

    async def _watchdog_loop(self) -> None:
        """Backup: promote when the feed goes silent too long."""
        timeout = self.config.heartbeat_timeout
        while not self.draining:
            await asyncio.sleep(max(0.05, min(1.0, timeout / 4)))
            replica = self.replica
            if replica is None or replica.role != ROLE_FOLLOWING:
                continue
            if time.monotonic() - replica.last_feed > timeout:
                self._try_promote("heartbeat timeout")

    def _try_promote(self, reason: str) -> Optional[Dict[str, object]]:
        """Promote if still eligible; never raises (watchdog/EOF path)."""
        replica = self.replica
        if (
            replica is None
            or replica.role != ROLE_FOLLOWING
            or self.draining
        ):
            return None
        try:
            return self._promote(reason)
        except ReplicationError as exc:
            print(f"promotion refused ({reason}): {exc}", flush=True)
            return None

    def _promote(self, reason: str) -> Dict[str, object]:
        assert self.replica is not None
        try:
            report = self.replica.promote(reason)
        except ReplicationError:
            self.stats.replication_errors += 1
            raise
        self.shards = self.replica.shard_set
        self.stats.promotions += 1
        print(
            f"promoted to primary ({reason}): epoch {report.epoch}, "
            f"watermarks {report.watermarks}",
            flush=True,
        )
        return report.as_dict()

    # -- connection hooks -----------------------------------------------

    def _busy_reason(self, frame: Frame, state: Dict) -> Optional[str]:
        if self.draining:
            return "draining"
        if self.role != ROLE_PRIMARY:
            # A backup owns no address range yet; shed with a reason the
            # client can turn into failover.
            return "backup"
        if self.redirecting:
            # Mid-cutover pause: shed with an epoch-carrying redirect so
            # the client refreshes and retries.
            return "resharding"
        return None

    def _shed_response(self, frame: Frame, busy_reason: str) -> bytes:
        if busy_reason == "resharding":
            self.stats.redirect_responses += 1
            return protocol.encode_frame(
                protocol.MSG_REDIRECT,
                frame.request_id,
                protocol.encode_redirect(self._redirect()),
            )
        return super()._shed_response(frame, busy_reason)

    def _connection_lost(self, state: Dict) -> None:
        if state["feed"]:
            self._live_feeds.discard(id(state))
            if not self._live_feeds and self.config.auto_promote:
                # The primary's replication connection died (SIGKILL
                # closes the socket); take over its address range.
                self._try_promote("replication feed lost")

    # -- request dispatch (synchronous on purpose) ----------------------

    def _dispatch(self, frame: Frame, state: Optional[Dict] = None) -> bytes:
        self.stats.requests_total += 1
        try:
            if frame.type == protocol.MSG_LOOKUP:
                return self._do_lookup(frame)
            if frame.type == protocol.MSG_UPDATE:
                return self._do_update(frame)
            if frame.type == protocol.MSG_REPLICATE:
                return self._do_replicate(frame, state)
            self.stats.admin_requests += 1
            if frame.type == protocol.MSG_STATS:
                return self._admin_ok(frame, self._stats_snapshot())
            if frame.type == protocol.MSG_HEALTH:
                return self._admin_ok(frame, self._health_snapshot())
            if frame.type == protocol.MSG_CHECKPOINT:
                return self._do_checkpoint(frame)
            if frame.type == protocol.MSG_FINGERPRINT:
                return self._do_fingerprint(frame)
            if frame.type == protocol.MSG_FAILOVER:
                return self._do_failover(frame)
            if frame.type == protocol.MSG_FLUSH:
                return self._do_flush(frame)
            if frame.type == protocol.MSG_RESHARD:
                return self._do_reshard(frame)
            if frame.type == protocol.MSG_DRAIN:
                self._request_shutdown()
                return self._admin_ok(frame, {"draining": True})
            return self._error(frame, f"unknown request type {frame.type:#x}")
        except ProtocolError as exc:
            self.stats.protocol_errors += 1
            return self._error(frame, str(exc))

    def _do_lookup(self, frame: Frame) -> bytes:
        assert self.shards is not None  # data plane is shed for backups
        addresses = protocol.decode_addresses(frame.payload)
        self.stats.lookup_requests += 1
        self.stats.lookups_total += len(addresses)
        hops = self.shards.lookup(addresses)
        return protocol.encode_frame(
            protocol.MSG_LOOKUP_OK, frame.request_id, protocol.encode_hops(hops)
        )

    def _do_update(self, frame: Frame) -> bytes:
        assert self.shards is not None
        messages = protocol.decode_updates(frame.payload)
        self.stats.update_requests += 1
        self.stats.updates_total += len(messages)
        ack = self.shards.update(messages, self.config.pump_budget)
        if self.shipper is not None:
            # Post-fsync, pre-client-ack: the watermark ordering the
            # protocol promises.  ship() returns the quorum verdict.
            replicated = self.shipper.ship()
            if self.config.ack_mode == "quorum" and replicated and ack.durable:
                ack = replace(ack, replicated=True)
        self.stats.updates_accepted += ack.accepted
        self.stats.updates_shed += ack.shed
        return protocol.encode_frame(
            protocol.MSG_UPDATE_OK,
            frame.request_id,
            protocol.encode_update_ack(ack),
        )

    def _do_replicate(self, frame: Frame, state: Optional[Dict]) -> bytes:
        self.stats.replicate_requests += 1
        if self.replica is None:
            return self._error(frame, "not a backup (start with --backup)")
        if self.draining:
            return self._error(frame, "draining")
        try:
            data = protocol.decode_replicate(frame.payload)
            if (
                data["kind"] == protocol.REPLICATE_BOOTSTRAP
                and self.replica.role == ROLE_PRIMARY
            ):
                raise ReplicationError(
                    "already promoted to primary; refusing demotion"
                )
            ack = self.replica.handle(data)
            if data["kind"] == protocol.REPLICATE_BOOTSTRAP and state is not None:
                state["feed"] = True
                self._live_feeds.add(id(state))
        except (ProtocolError, ReplicationError) as exc:
            self.stats.replication_errors += 1
            return self._error(frame, str(exc))
        return protocol.encode_frame(
            protocol.MSG_REPLICATE_OK,
            frame.request_id,
            protocol.encode_replicate_ack(ack),
        )

    def _do_failover(self, frame: Frame) -> bytes:
        if self.replica is None:
            return self._error(frame, "not a backup")
        if self.replica.role == ROLE_PRIMARY:
            return self._admin_ok(frame, {"promoted": False, "role": "primary"})
        try:
            report = self._promote("admin failover")
        except ReplicationError as exc:
            return self._error(frame, f"promotion refused: {exc}")
        return self._admin_ok(frame, {"promoted": True, **report})

    def _do_flush(self, frame: Frame) -> bytes:
        """Quiesce every shard without draining the server.

        The campaign oracles call this before differential checks: after
        the ack the engine state is a pure function of the acked update
        stream, yet the server keeps serving — unlike MSG_DRAIN, which
        is terminal.
        """
        if self.shards is None:
            return self._error(frame, "no shards yet (backup is syncing)")
        applied = self.shards.flush()
        if self.shipper is not None:
            self.shipper.ship()
        return self._admin_ok(frame, {"flushed": applied})

    # -- live resharding (DESIGN.md §14) --------------------------------

    def _do_reshard(self, frame: Frame) -> bytes:
        """Start (or inspect) an online shard split/merge.

        The RPC only *launches* the migration: the staged state machine
        runs as a background task interleaved with traffic, and the
        client polls ``action: "status"`` until the stage reaches
        ``done`` or ``rolled-back``.
        """
        request = protocol.decode_json(frame.payload)
        if not isinstance(request, dict):
            return self._error(frame, "reshard payload is not a JSON object")
        action = str(request.get("action", "status"))
        if action == "status":
            return self._admin_ok(frame, self._reshard_snapshot())
        if action not in ("split", "merge", "auto"):
            return self._error(frame, f"unknown reshard action {action!r}")
        if self.draining:
            return self._error(frame, "draining")
        if self.role != ROLE_PRIMARY or self.shards is None:
            return self._error(frame, "only a serving primary can reshard")
        if not self.shards.durable:
            return self._error(
                frame, "resharding needs journals (serve with --journal)"
            )
        if self.shipper is not None:
            # Both replication and reshard COPY own the managers' single
            # shipping buffer; running them together would corrupt the
            # backup's feed.  Detach the backup first.
            return self._error(
                frame, "cannot reshard while replicating to a backup"
            )
        if self.coordinator is not None:
            return self._error(frame, "a reshard is already in progress")
        shard = int(request.get("shard", -1))
        if action == "auto":
            decision = choose_reshard(self.shards)
            if decision is None:
                return self._admin_ok(
                    frame, {"started": False, "reason": "load is balanced"}
                )
            action, shard = decision
        at = request.get("at")
        try:
            coordinator = ReshardCoordinator(
                self.shards,
                action,
                shard,
                at=None if at is None else int(at),
                reason=str(request.get("reason", "admin request")),
            )
        except ReshardError as exc:
            self.stats.reshard_errors += 1
            return self._error(frame, str(exc))
        self.coordinator = coordinator
        self._spawn(
            self._run_reshard(
                coordinator,
                stage_delay=float(request.get("stage_delay", 0.0)),
                cutover_pause=float(request.get("cutover_pause", 0.0)),
                min_catchup_rounds=int(request.get("min_catchup_rounds", 1)),
                catchup_settle=int(request.get("catchup_settle", 256)),
            )
        )
        return self._admin_ok(
            frame,
            {
                "started": True,
                "action": action,
                "shard": shard,
                "epoch_from": coordinator.state.epoch_from,
                "epoch_to": coordinator.state.epoch_to,
                "new_boundaries": list(coordinator.state.new_boundaries),
            },
        )

    async def _run_reshard(
        self,
        coordinator: ReshardCoordinator,
        stage_delay: float,
        cutover_pause: float,
        min_catchup_rounds: int,
        catchup_settle: int,
    ) -> None:
        """Drive the migration stages, yielding to traffic between them.

        ``stage_delay`` widens each stage so chaos drills can observe it
        in ``reshard.json`` and kill the process inside a chosen window;
        production runs use 0 and converge as fast as catch-up drains.
        Every synchronous stretch (copy, a catch-up round, the cutover
        block) runs without interleaving — the event loop guarantees it —
        so the migration never sees a half-applied batch.
        """
        old_set = coordinator.shards
        try:
            coordinator.prepare()
            if stage_delay:
                await asyncio.sleep(stage_delay)
            coordinator.copy()
            if stage_delay:
                await asyncio.sleep(stage_delay)
            coordinator.begin_catchup()
            rounds = 0
            while True:
                applied = coordinator.catchup_round()
                rounds += 1
                # Live traffic never quiesces, so waiting for an empty
                # round would spin forever: cut over once the per-round
                # backlog is small enough to absorb synchronously —
                # cutover() drains the final delta without interleaving.
                if rounds >= min_catchup_rounds and applied <= catchup_settle:
                    break
                await asyncio.sleep(max(0.005, stage_delay / 4))
            if cutover_pause:
                # Shed the data plane with redirects while the drill's
                # kill window is open; cutover() still sweeps anything
                # journaled before the pause began.
                self.redirecting = True
                await asyncio.sleep(cutover_pause)
            new_set = coordinator.cutover()
            self.shards = new_set
            self.redirecting = False
            if stage_delay:
                # Stage file says "cutover", new epoch is serving, old
                # managers still open: the roll-forward kill window.
                await asyncio.sleep(stage_delay)
            coordinator.retire()
            self.stats.reshards += 1
            self.last_reshard = coordinator.snapshot()
            print(
                f"resharded ({coordinator.action}): epoch "
                f"{old_set.epoch} -> {new_set.epoch}, boundaries "
                f"{new_set.router.boundaries}",
                flush=True,
            )
        except asyncio.CancelledError:
            # Server drain cancelled us pre-cutover; roll back cleanly.
            self.redirecting = False
            if self.shards is old_set:
                coordinator.abort("cancelled by drain")
                self.stats.reshard_errors += 1
                self.last_reshard = coordinator.snapshot()
            raise
        except Exception as exc:  # noqa: BLE001 - must never kill the loop
            self.stats.reshard_errors += 1
            self.redirecting = False
            try:
                coordinator.abort(str(exc))
            except Exception:  # noqa: BLE001 - best-effort rollback
                pass
            self.last_reshard = coordinator.snapshot()
            print(f"reshard failed: {exc}", flush=True)
        finally:
            self.coordinator = None

    def _reshard_snapshot(self) -> Dict[str, object]:
        snapshot: Dict[str, object] = {
            "epoch": self.shards.epoch if self.shards is not None else 0,
            "in_progress": self.coordinator is not None,
            "redirecting": self.redirecting,
        }
        if self.coordinator is not None:
            snapshot["reshard"] = self.coordinator.snapshot()
        elif self.last_reshard is not None:
            snapshot["reshard"] = self.last_reshard
        return snapshot

    def _redirect(self) -> protocol.Redirect:
        epoch = self.shards.epoch if self.shards is not None else 0
        if self.coordinator is not None:
            epoch = self.coordinator.state.epoch_to
        return protocol.Redirect(
            reason="resharding",
            epoch=epoch,
            replicas=tuple(
                (str(host), int(port), str(role))
                for host, port, role in self._replica_map()
            ),
        )

    def _do_checkpoint(self, frame: Frame) -> bytes:
        if self.shards is None or not self.shards.durable:
            return self._error(frame, "server runs without a journal")
        return self._admin_ok(frame, {"checkpoints": self.shards.checkpoint()})

    def _do_fingerprint(self, frame: Frame) -> bytes:
        if self.shards is None:
            return self._error(frame, "no shards yet (backup is syncing)")
        return self._admin_ok(
            frame,
            {
                "fingerprint": self.shards.fingerprint(),
                "shards": self.shards.shard_fingerprints(),
            },
        )

    def _stats_snapshot(self) -> Dict[str, object]:
        return {
            "serve": self.stats.as_dict(),
            "shards": self.shards.stats() if self.shards is not None else [],
            "draining": self.draining,
        }

    def _health_snapshot(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "status": "draining" if self.draining else "ok",
            "role": self.role,
            "shards": len(self.shards.workers) if self.shards is not None else 0,
            "durable": self.shards.durable if self.shards is not None else False,
            "epoch": self.shards.epoch if self.shards is not None else 0,
            "port": self.port,
            "replicas": self._replica_map(),
        }
        if self.coordinator is not None or self.last_reshard is not None:
            data["reshard"] = self._reshard_snapshot()
        if self.shipper is not None:
            data["replication"] = self.shipper.snapshot()
        elif self.replica is not None:
            data["replication"] = self.replica.snapshot()
        return data

    def _replica_map(self) -> list:
        """``[host, port, role]`` rows a client can fail over across."""
        entries = [[self.config.host, self.port, self.role]]
        if self.shipper is not None:
            entries.append(
                [self.shipper.host, self.shipper.port,
                 "backup" if self.shipper.alive else "dead"]
            )
        return entries


class ServerThread:
    """A :class:`FrameServer` on a background thread (tests and benches).

    The asyncio loop lives entirely on the thread; :meth:`start` blocks
    until the port is bound, :meth:`stop` runs the same graceful drain
    SIGTERM would and joins the thread.  By default it builds a
    :class:`ClueServer` over ``shards``; pass ``server=`` to host any
    prebuilt :class:`FrameServer` (the multi-process front, a backup).
    """

    def __init__(
        self,
        shards: Optional[ShardSet] = None,
        config: Optional[ServeConfig] = None,
        *,
        server: Optional[FrameServer] = None,
    ):
        self.server = server if server is not None else ClueServer(shards, config)
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.exit_code: Optional[int] = None

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        try:
            await self.server.start(install_signal_handlers=False)
        except BaseException as exc:  # surface to start() instead of dying
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self.server.wait_stopped()
        self.exit_code = 0

    def start(self) -> int:
        """Start serving; returns the bound port."""
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server thread failed to start")
        if self._startup_error is not None:
            raise self._startup_error
        assert self.server.port is not None
        return self.server.port

    def stop(self, timeout: float = 30.0) -> int:
        """Graceful drain, then join; returns the exit code (0)."""
        assert self._loop is not None
        coro = self.server.shutdown()
        try:
            future = asyncio.run_coroutine_threadsafe(coro, self._loop)
            future.result(timeout=timeout)
        except (RuntimeError, concurrent.futures.CancelledError):
            # The loop already finished: an admin drain (or SIGTERM)
            # stopped the server before we asked.  Just join below.
            coro.close()
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError("server thread failed to stop")
        assert self.exit_code is not None
        return self.exit_code

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        if self._thread.is_alive():
            self.stop()
