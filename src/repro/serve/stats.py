"""Serving-plane counters (the layer above :class:`EngineStats`).

These count *requests*, not packets: the engine's own statistics keep
accumulating inside each shard's :class:`ClueSystem` and travel in the
same admin STATS snapshot, so a client can reconcile the two layers
(``lookups_total`` here vs ``completions`` down in the engine).

In the multi-process serving plane each worker process accumulates its
own :class:`ServeStats`; the parent front collects the per-worker
snapshots over the control channel and folds them with :meth:`merge`, so
``serialize → ship → merge`` must round-trip exactly — that is what
:meth:`from_dict` exists for, and what the aggregation tests pin down.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Dict, Iterable, Mapping


@dataclass
class ServeStats:
    """Counters accumulated by one serving process (front or worker)."""

    connections_total: int = 0
    connections_active: int = 0
    requests_total: int = 0
    lookup_requests: int = 0
    lookups_total: int = 0
    update_requests: int = 0
    updates_total: int = 0
    updates_accepted: int = 0
    updates_shed: int = 0
    admin_requests: int = 0
    busy_responses: int = 0
    protocol_errors: int = 0
    replicate_requests: int = 0
    replication_errors: int = 0
    promotions: int = 0
    redirect_responses: int = 0
    reshards: int = 0
    reshard_errors: int = 0
    #: Shard worker processes that died unexpectedly (parent front only).
    worker_crashes: int = 0
    #: Crashed workers respawned from their journal (parent front only).
    worker_restarts: int = 0

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ServeStats":
        """Rebuild a snapshot shipped over the control channel.

        Unknown keys are ignored and missing ones default to zero, so a
        parent and worker from adjacent builds can still aggregate.
        """
        known = {field.name for field in fields(cls)}
        return cls(
            **{key: int(value) for key, value in data.items() if key in known}
        )

    def merge(self, other: "ServeStats") -> "ServeStats":
        """Fold another snapshot into this one (all counters add)."""
        for field in fields(self):
            setattr(
                self,
                field.name,
                getattr(self, field.name) + getattr(other, field.name),
            )
        return self

    @classmethod
    def merged(cls, snapshots: Iterable[Mapping[str, object]]) -> "ServeStats":
        """One aggregate over serialized per-worker snapshots."""
        total = cls()
        for snapshot in snapshots:
            total.merge(cls.from_dict(snapshot))
        return total
