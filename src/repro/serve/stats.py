"""Serving-plane counters (the layer above :class:`EngineStats`).

These count *requests*, not packets: the engine's own statistics keep
accumulating inside each shard's :class:`ClueSystem` and travel in the
same admin STATS snapshot, so a client can reconcile the two layers
(``lookups_total`` here vs ``completions`` down in the engine).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict


@dataclass
class ServeStats:
    """Counters accumulated by one :class:`~repro.serve.server.ClueServer`."""

    connections_total: int = 0
    connections_active: int = 0
    requests_total: int = 0
    lookup_requests: int = 0
    lookups_total: int = 0
    update_requests: int = 0
    updates_total: int = 0
    updates_accepted: int = 0
    updates_shed: int = 0
    admin_requests: int = 0
    busy_responses: int = 0
    protocol_errors: int = 0
    replicate_requests: int = 0
    replication_errors: int = 0
    promotions: int = 0
    redirect_responses: int = 0
    reshards: int = 0
    reshard_errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)
