"""Shard routing: which worker owns which slice of the address space.

The serving plane scales the same way the paper scales chips: split the
address space into contiguous ranges and give each worker one range.  The
boundaries come from even-partitioning the ONRTC-compressed *full* table
(compression makes the entries disjoint, which is what even partitioning
requires), so shards hold near-equal TCAM populations rather than
near-equal address spans.

Raw routes are then replicated to every shard whose range they overlap —
a wide covering route can span several shards, and each shard must hold
it or lookups homed there would miss.  Within its own range every shard
therefore answers exactly what the unsharded system would: for any
address, all routes containing that address live in its home shard, so
the shard-local longest match *is* the global longest match.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.compress.labels import CompressionMode
from repro.compress.onrtc import compress
from repro.net.prefix import Prefix
from repro.partition.even import even_partition
from repro.partition.index_logic import RangeIndex
from repro.trie.trie import BinaryTrie

Route = Tuple[Prefix, int]


class ShardRouter:
    """Maps addresses and prefixes to shard indices.

    ``epoch`` versions the topology: every reshard (split/merge) installs
    a new router under ``epoch + 1``, and a request that reaches a server
    mid-cutover is answered with an epoch-carrying ``MSG_REDIRECT`` so
    clients refresh their route map instead of failing.
    """

    def __init__(self, boundaries: Sequence[int], epoch: int = 1) -> None:
        if epoch < 1:
            raise ValueError(f"topology epochs start at 1, not {epoch}")
        self.index = RangeIndex(boundaries)
        self.epoch = epoch

    @property
    def boundaries(self) -> List[int]:
        return self.index.boundaries

    @property
    def shard_count(self) -> int:
        return len(self.index.boundaries)

    def shard_of(self, address: int) -> int:
        """The home shard of one destination address."""
        return self.index.home_of(address)

    def shards_covering(self, prefix: Prefix) -> range:
        """Every shard whose address range the prefix overlaps."""
        return range(
            self.index.home_of(prefix.network),
            self.index.home_of(prefix.broadcast) + 1,
        )


@dataclass
class ReplicaEndpoint:
    """One server of a replica pair, as a client sees it."""

    host: str
    port: int
    #: ``primary`` | ``backup`` | ``syncing`` | ``following`` |
    #: ``promoting`` | ``unknown`` | ``dead`` — updated from health
    #: probes; ``unknown`` endpoints are still worth probing.
    role: str = "unknown"

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"


@dataclass
class ReplicaMap:
    """Client-side replica topology: which endpoints may own the range.

    Pure bookkeeping — probing is the client's job (it owns sockets);
    the map just remembers the last role each endpoint reported so
    failover tries the most likely primary first.
    """

    endpoints: List[ReplicaEndpoint] = field(default_factory=list)

    @classmethod
    def parse(cls, spec: str) -> "ReplicaMap":
        """``host:port,host:port,...`` (host defaults to 127.0.0.1)."""
        endpoints = []
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            host, _, port = part.rpartition(":")
            endpoints.append(ReplicaEndpoint(host or "127.0.0.1", int(port)))
        if not endpoints:
            raise ValueError(f"no endpoints in replica spec {spec!r}")
        return cls(endpoints)

    def note_role(self, host: str, port: int, role: str) -> None:
        for endpoint in self.endpoints:
            if endpoint.host == host and endpoint.port == port:
                endpoint.role = role
                return
        self.endpoints.append(ReplicaEndpoint(host, port, role))

    def primary(self) -> Optional[ReplicaEndpoint]:
        """The endpoint that last reported itself primary, if any."""
        for endpoint in self.endpoints:
            if endpoint.role == "primary":
                return endpoint
        return None

    def candidates(self) -> List[ReplicaEndpoint]:
        """Probe order: known primary first, dead endpoints last."""
        rank = {"primary": 0, "promoting": 1, "following": 2,
                "backup": 2, "syncing": 3, "unknown": 1, "dead": 4}
        return sorted(
            self.endpoints, key=lambda e: rank.get(e.role, 1)
        )


@dataclass
class ShardPlan:
    """One computed sharding: boundaries plus each shard's route subset."""

    router: ShardRouter
    routes_per_shard: List[List[Route]]

    @property
    def replicated_routes(self) -> int:
        """Extra copies created by boundary-spanning routes."""
        total = sum(len(routes) for routes in self.routes_per_shard)
        distinct = len(
            {prefix for routes in self.routes_per_shard for prefix, _ in routes}
        )
        return total - distinct


def plan_shards(
    routes: Sequence[Route],
    shard_count: int,
    mode: CompressionMode = CompressionMode.DONT_CARE,
) -> ShardPlan:
    """Split a routing table into ``shard_count`` range shards.

    Boundaries are derived from the compressed table (disjoint, so the
    even split is exact); the *raw* routes are what each shard receives —
    every shard then runs its own full CLUE pipeline (compression,
    partitioning, DRed) over its subset.
    """
    if shard_count < 1:
        raise ValueError("need at least one shard")
    routes = list(routes)
    if not routes:
        raise ValueError("cannot shard an empty routing table")
    if shard_count == 1:
        return ShardPlan(ShardRouter([0]), [routes])
    compressed = sorted(
        compress(BinaryTrie.from_routes(routes), mode).items(),
        key=lambda route: route[0].sort_key(),
    )
    if shard_count > len(compressed):
        raise ValueError(
            f"{shard_count} shards over {len(compressed)} compressed "
            f"entries; use fewer shards or a bigger table"
        )
    result = even_partition(compressed, shard_count)
    router = ShardRouter(RangeIndex.from_partition(result).boundaries)
    routes_per_shard: List[List[Route]] = [[] for _ in range(shard_count)]
    for route in routes:
        for shard in router.shards_covering(route[0]):
            routes_per_shard[shard].append(route)
    for shard, subset in enumerate(routes_per_shard):
        if not subset:
            raise ValueError(
                f"shard {shard} received no routes; the even partition "
                f"should make this impossible"
            )
    return ShardPlan(router, routes_per_shard)
