"""Cluster chaos campaign: kill real replica processes, prove the invariants.

``repro-clue chaos`` runs a matrix of failure scenarios against *real*
server processes (``python -m repro.cli serve``) — SIGKILL semantics
only exist at the process level, so unlike the in-process crash drills
this module spawns primaries and backups as subprocesses, composes the
existing :class:`~repro.faults.schedule.FaultSchedule` machinery with
the new process-level kill events, and drives acked update traffic
through an :class:`~repro.serve.client.HAClient` across each kill.

After every scenario three standing invariants are asserted on the
survivor:

1. **No acked update lost** — every batch the client got an ack for is
   present in the survivor's forwarding state.  The campaign runs with
   ``ack_mode=quorum``, where an ack means "durable on both replicas";
   the driver retries unacked batches through failover (updates are
   idempotent at the route level), so after the run the acked set is
   exactly the applied set.
2. **Shard-local LPM == global LPM** — sampled covered addresses answer
   identically on the sharded survivor and a single global reference
   trie built from the initial RIB plus every acked batch.
3. **Byte-identical replay** — the survivor's live fingerprint equals
   the fingerprint of a clean :meth:`ShardSet.restore` over a copy of
   its own state directory: the journaled offer sequence alone
   reproduces the survivor byte for byte.

The scenario matrix: SIGKILL the primary mid-storm (with chip faults
armed), SIGKILL the backup during promotion (then restore it from its
epoch journal), backup death during catch-up (re-bootstrap a fresh
backup, then fail over onto it), and three live-resharding drills
(DESIGN.md §14) that split a shard under load and SIGKILL the server
mid-COPY, mid-CATCHUP, or mid-CUTOVER — restart must roll the journaled
migration back (pre-commit) or forward (post-commit), and the same
three invariants must hold across the topology-epoch boundary.
"""

from __future__ import annotations

import os
import re
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.faults.schedule import FaultSchedule
from repro.net.prefix import Prefix
from repro.serve.client import (
    FailoverError,
    HAClient,
    ServeClient,
    ServeClientError,
    ServerBusyError,
)
from repro.serve.replicate import latest_epoch_dir
from repro.serve.reshard import read_state
from repro.serve.router import ReplicaMap
from repro.serve.shard import ShardSet
from repro.trie.trie import BinaryTrie
from repro.workload.ribgen import RibParameters, generate_rib
from repro.workload.traces import save_faults, save_table
from repro.workload.trafficgen import TrafficGenerator
from repro.workload.updategen import UpdateGenerator, UpdateKind, UpdateMessage

Route = Tuple[Prefix, int]

#: Every spawned server binds port 0; the bound port is read from this
#: startup line — no fixed ports anywhere, so parallel campaigns never
#: collide.  The multi-process supervisor shares the same handshake.
from repro.serve.procs import STARTUP_RE  # noqa: E402 (re-export)


class ChaosError(Exception):
    """A scenario could not run or an invariant did not hold."""


@dataclass
class ChaosConfig:
    """Campaign knobs; ``--quick`` shrinks everything for CI smoke."""

    quick: bool = False
    seed: int = 7
    rib_size: int = 500
    shards: int = 2
    chips: int = 2
    batches: int = 24
    batch_size: int = 24
    lookup_probes: int = 4
    sample_addresses: int = 384
    heartbeat_timeout: float = 2.0
    startup_timeout: float = 60.0
    workdir: Optional[Path] = None

    def __post_init__(self) -> None:
        if self.quick:
            self.rib_size = min(self.rib_size, 300)
            self.batches = min(self.batches, 10)
            self.batch_size = min(self.batch_size, 16)
            self.sample_addresses = min(self.sample_addresses, 192)


@dataclass
class ScenarioResult:
    """One scenario's verdict plus the evidence behind it."""

    name: str
    ok: bool
    acked_batches: int = 0
    acked_updates: int = 0
    failovers: int = 0
    checked_addresses: int = 0
    skipped_addresses: int = 0
    fingerprint_match: bool = False
    detail: str = ""
    #: Per-range ``{shard, range, lookup_hits, update_hits}`` rows from
    #: the survivor — the load-accounting view reshard decisions run on.
    shard_loads: List[Dict[str, object]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "ok": self.ok,
            "acked_batches": self.acked_batches,
            "acked_updates": self.acked_updates,
            "failovers": self.failovers,
            "checked_addresses": self.checked_addresses,
            "skipped_addresses": self.skipped_addresses,
            "fingerprint_match": self.fingerprint_match,
            "detail": self.detail,
            "shard_loads": self.shard_loads,
        }


class ServerProcess:
    """One ``repro-clue serve`` subprocess with its stdout captured.

    The server binds port 0; a reader thread captures every output line
    (so the pipe never fills) and parses the bound port out of the
    startup line.
    """

    def __init__(self, name: str, cli_args: Sequence[str]) -> None:
        self.name = name
        env = dict(os.environ)
        src_root = Path(__file__).resolve().parents[2]
        env["PYTHONPATH"] = (
            str(src_root) + os.pathsep + env.get("PYTHONPATH", "")
        )
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", *cli_args],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        # Everything past the Popen must not leak the child: a failure
        # here would leave a live server no teardown path knows about.
        try:
            self.lines: List[str] = []
            self.port: Optional[int] = None
            self._port_ready = threading.Event()
            self._reader = threading.Thread(target=self._pump, daemon=True)
            self._reader.start()
        except BaseException:
            self.proc.kill()
            self.proc.wait()
            raise

    def _pump(self) -> None:
        assert self.proc.stdout is not None
        for line in self.proc.stdout:
            self.lines.append(line.rstrip("\n"))
            if self.port is None:
                match = STARTUP_RE.search(line)
                if match:
                    self.port = int(match.group(1))
                    self._port_ready.set()
        self._port_ready.set()  # EOF: unblock waiters either way

    def wait_port(self, timeout: float) -> int:
        if not self._port_ready.wait(timeout) or self.port is None:
            self.kill()
            raise ChaosError(
                f"{self.name} never reported its port; output:\n"
                + "\n".join(self.lines[-20:])
            )
        return self.port

    @property
    def alive(self) -> bool:
        return self.proc.poll() is None

    def kill(self) -> None:
        """SIGKILL — the process gets no chance to flush or ack."""
        if self.alive:
            self.proc.kill()
        self.proc.wait()

    def tail(self, count: int = 12) -> str:
        return "\n".join(self.lines[-count:])


# -- reference model -----------------------------------------------------


def apply_to_reference(trie: BinaryTrie, batch: Sequence[UpdateMessage]) -> None:
    """Mirror one acked batch onto the global reference trie."""
    for message in batch:
        if message.kind is UpdateKind.ANNOUNCE:
            assert message.next_hop is not None
            trie.insert(message.prefix, message.next_hop)
        else:
            trie.remove_route(message.prefix)


class Cluster:
    """Shared per-cell state: workdir, RIB, stream, reference.

    Public since the campaign runner reuses it: one :class:`Cluster` is
    one HA cell's worth of subprocess state — spawn helpers, the acked
    update stream, the reference trie it is mirrored onto, and a
    teardown that reaps every child even when individual kills fail.
    Use it as a context manager so no code path can leak processes.

    ``generator``/``backend`` parameterize what the chaos scenarios
    hard-coded: the campaign drives profile-built update streams against
    any lookup backend, the scenarios keep their original defaults.
    """

    def __init__(
        self,
        config: ChaosConfig,
        name: str,
        root: Path,
        generator: Optional[UpdateGenerator] = None,
        backend: str = "fast",
    ) -> None:
        self.config = config
        self.name = name
        self.backend = backend
        self.dir = root / name
        self.dir.mkdir(parents=True)
        self.routes: List[Route] = generate_rib(
            config.seed, RibParameters(size=config.rib_size)
        )
        self.table = self.dir / "table.txt"
        save_table(self.routes, self.table)
        self.generator = generator or UpdateGenerator(
            self.routes, seed=config.seed + 1
        )
        self.reference = BinaryTrie.from_routes(self.routes)
        self.acked_batches = 0
        self.acked_updates = 0
        self.procs: List[ServerProcess] = []

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()

    # -- spawning -------------------------------------------------------

    def spawn_backup(self, label: str, port: int = 0) -> ServerProcess:
        proc = ServerProcess(
            f"{self.name}/{label}",
            [
                "serve",
                "--backup", str(self.dir / label),
                "--host", "127.0.0.1",
                "--port", str(port),
                "--heartbeat-timeout", str(self.config.heartbeat_timeout),
                "--sync-every", "4",
            ],
        )
        self.procs.append(proc)
        proc.wait_port(self.config.startup_timeout)
        return proc

    def _engine_flags(self) -> List[str]:
        # The restore path rebuilds with an explicit config, so every
        # spawn must agree on the engine geometry and lookup backend.
        return [
            "--chips", str(self.config.chips),
            "--dred", "128",
            "--queue", "128",
            "--update-queue", "1024",
            "--backend", self.backend,
        ]

    def spawn_primary(
        self,
        label: str,
        backup_port: int,
        faults: Optional[Path] = None,
    ) -> ServerProcess:
        args = [
            "serve",
            "--table", str(self.table),
            "--host", "127.0.0.1",
            "--port", "0",
            "--shards", str(self.config.shards),
            *self._engine_flags(),
            "--journal", str(self.dir / label),
            "--sync-every", "4",
            "--replicate-to", f"127.0.0.1:{backup_port}",
            "--ack-mode", "quorum",
            "--heartbeat-interval", "0.2",
        ]
        if faults is not None:
            args += ["--faults", str(faults)]
        proc = ServerProcess(f"{self.name}/{label}", args)
        self.procs.append(proc)
        proc.wait_port(self.config.startup_timeout)
        return proc

    def spawn_solo(self, label: str, port: int = 0) -> ServerProcess:
        """A standalone durable primary (no replication) — the reshard
        drills' single server, journaling under ``dir/label``."""
        proc = ServerProcess(
            f"{self.name}/{label}",
            [
                "serve",
                "--table", str(self.table),
                "--host", "127.0.0.1",
                "--port", str(port),
                "--shards", str(self.config.shards),
                *self._engine_flags(),
                "--journal", str(self.dir / label),
                "--sync-every", "4",
            ],
        )
        self.procs.append(proc)
        proc.wait_port(self.config.startup_timeout)
        return proc

    def spawn_restored(self, label: str, state_dir: Path) -> ServerProcess:
        proc = ServerProcess(
            f"{self.name}/{label}",
            [
                "serve",
                "--restore",
                "--journal", str(state_dir),
                "--host", "127.0.0.1",
                "--port", "0",
                *self._engine_flags(),
                "--sync-every", "4",
            ],
        )
        self.procs.append(proc)
        proc.wait_port(self.config.startup_timeout)
        return proc

    def ha_client(self, *ports: int) -> HAClient:
        replicas = ReplicaMap.parse(
            ",".join(f"127.0.0.1:{port}" for port in ports)
        )
        return HAClient(replicas, timeout=15.0)

    # -- driving --------------------------------------------------------

    def drive(
        self,
        client: HAClient,
        batches: int,
        on_batch: Optional[Callable[[int], None]] = None,
        lookups_every: int = 0,
        lookups_until: Optional[int] = None,
    ) -> None:
        """Send ``batches`` acked update batches, mirroring each ack.

        ``on_batch`` fires *before* batch ``i`` is sent (the kill hook);
        ``lookups_every`` interleaves lookup probes so armed chip-fault
        schedules actually advance engine cycles; ``lookups_until``
        stops the probes at that batch — probes that would land on the
        failed-over survivor are skipped, because lookups legitimately
        mutate its DRed LRU outside the journal and would (correctly)
        break the byte-identical replay check.  Every batch is retried
        through failover until acked, so the reference and the cluster
        agree batch for batch.
        """
        probe = TrafficGenerator(self.routes, seed=self.config.seed + 2)
        for index in range(batches):
            if on_batch is not None:
                on_batch(index)
            if (
                lookups_every
                and index % lookups_every == 0
                and (lookups_until is None or index < lookups_until)
            ):
                try:
                    client.lookup(probe.take(32))
                except FailoverError:
                    pass  # probes are best-effort; updates are the contract
            batch = self.generator.take(self.config.batch_size)
            ack = client.update(batch)
            if ack.shed:
                raise ChaosError(
                    f"{self.name}: driver overran the update queue "
                    f"({ack.shed} shed) — enlarge --update-queue"
                )
            apply_to_reference(self.reference, batch)
            self.acked_batches += 1
            self.acked_updates += len(batch)

    # -- teardown -------------------------------------------------------

    def shutdown(self) -> None:
        """Reap every spawned process; one bad kill never strands the rest."""
        errors = []
        for proc in self.procs:
            try:
                proc.kill()
            except OSError as exc:  # pragma: no cover - kernel races only
                errors.append(f"{proc.name}: {exc}")
        if errors:
            raise ChaosError(
                "failed to reap subprocess(es): " + "; ".join(errors)
            )


#: Backwards-compatible alias (the class was private before the campaign
#: runner started reusing it).
_Cluster = Cluster


# -- invariant verification ----------------------------------------------


def verify_survivor(
    cluster: _Cluster,
    port: int,
    state_dir: Path,
    uncertain: Sequence[Prefix] = (),
) -> Tuple[int, int, bool]:
    """Assert the three standing invariants against one survivor.

    Returns ``(checked, skipped, fingerprint_match)``; raises
    :class:`ChaosError` on any violation.  Order matters: the
    fingerprint is fetched *before* any verification lookup, because
    lookups legitimately mutate DRed (the LRU is forwarding state).
    """
    config = cluster.config
    client = ServeClient("127.0.0.1", port, timeout=30.0)
    try:
        health = client.health()
        if health.get("role") != "primary" or health.get("status") != "ok":
            raise ChaosError(
                f"{cluster.name}: survivor on port {port} is "
                f"{health.get('role')}/{health.get('status')}, not a "
                f"serving primary"
            )
        live_fingerprint = client.fingerprint()

        # Invariant 3: byte-identical replay of the survivor's own
        # journaled offer sequence.
        replay_dir = cluster.dir / "replay-copy"
        if replay_dir.exists():
            shutil.rmtree(replay_dir)
        shutil.copytree(state_dir, replay_dir)
        restored, _reports = ShardSet.restore(replay_dir)
        replay_fingerprint = restored.fingerprint()
        for worker in restored.workers:
            if worker.manager is not None:
                worker.manager.close()
        if replay_fingerprint != live_fingerprint:
            raise ChaosError(
                f"{cluster.name}: survivor fingerprint "
                f"{live_fingerprint[:16]}… != clean replay "
                f"{replay_fingerprint[:16]}… — the journal does not "
                f"reproduce the survivor"
            )

        # Invariants 1+2: sampled covered addresses must answer exactly
        # what the global reference trie (initial RIB + acked batches)
        # answers.  Addresses under a prefix whose batch was sent but
        # never acked are skipped — their state is legitimately
        # indeterminate under at-least-once delivery.
        routes = list(cluster.reference.routes())
        checked = skipped = 0
        if routes:
            sampler = TrafficGenerator(routes, seed=config.seed + 3)
            addresses = sampler.take(config.sample_addresses)
            for start in range(0, len(addresses), 256):
                chunk = addresses[start:start + 256]
                hops = client.lookup(chunk)
                for address, hop in zip(chunk, hops):
                    expected = cluster.reference.lookup(address)
                    if expected is None or any(
                        p.network <= address <= p.broadcast
                        for p in uncertain
                    ):
                        skipped += 1
                        continue
                    if hop != expected:
                        raise ChaosError(
                            f"{cluster.name}: address {address:#010x} "
                            f"answers {hop}, reference says {expected} — "
                            f"an acked update was lost or shard-local "
                            f"LPM diverged from global LPM"
                        )
                    checked += 1
        return checked, skipped, True
    finally:
        client.close()


# -- generic kill-primary cell -------------------------------------------


def run_cell(
    config: ChaosConfig,
    root: Path,
    name: str,
    schedule: FaultSchedule,
    generator: Optional[UpdateGenerator] = None,
    backend: str = "fast",
) -> ScenarioResult:
    """One generic kill-primary HA cell; the campaign runner's executor.

    Spawns a backup + quorum-replicating primary, arms the schedule's
    engine-level events on the primary, drives acked update batches
    (``generator`` overrides the default stream — that is how campaign
    workload profiles plug in), SIGKILLs the primary at the batch index
    of the schedule's ``kill-primary`` event, rides the failover, and
    asserts the three standing invariants against the backup survivor.

    The schedule *must* contain a ``kill-primary`` event: only a backup
    that never served lookups can pass the byte-identical replay check
    (a primary's DRed LRU is legitimately mutated outside the journal),
    so a no-kill HA cell would be structurally unverifiable.
    """
    kills = {e.cycle: e.kind for e in schedule.process_kills()}
    if not kills:
        raise ChaosError(
            f"{name}: an HA cell needs a kill-primary event — the backup "
            f"must be the survivor for replay verification to apply"
        )
    if any(kind.value == "kill-backup" for kind in kills.values()):
        raise ChaosError(
            f"{name}: kill-backup needs a bespoke scenario "
            f"(re-bootstrap choreography); run_cell only kills primaries"
        )
    kill_at = min(kills)
    with Cluster(
        config, name, root, generator=generator, backend=backend
    ) as cluster:
        engine_events = schedule.engine_only()
        faults_file: Optional[Path] = None
        if engine_events.events:
            faults_file = cluster.dir / "faults.txt"
            save_faults(engine_events, faults_file)

        backup = cluster.spawn_backup("backup")
        primary = cluster.spawn_primary(
            "primary", backup.port, faults=faults_file
        )
        client = cluster.ha_client(primary.port, backup.port)

        def on_batch(index: int) -> None:
            if index in kills:
                # Fire mid-batch: the kill lands while the next update
                # is in flight, exercising retry-after-partial-commit.
                threading.Timer(0.02, primary.kill).start()

        cluster.drive(
            client,
            config.batches,
            on_batch=on_batch,
            lookups_every=3,
            lookups_until=kill_at,
        )
        failovers = client.failovers
        client.close()
        if primary.alive:
            raise ChaosError("primary survived its SIGKILL")

        epoch = latest_epoch_dir(cluster.dir / "backup")
        if epoch is None:
            raise ChaosError("backup never bootstrapped an epoch")
        checked, skipped, fp_ok = verify_survivor(
            cluster, backup.port, epoch
        )
        return ScenarioResult(
            name=cluster.name,
            ok=True,
            acked_batches=cluster.acked_batches,
            acked_updates=cluster.acked_updates,
            failovers=failovers,
            checked_addresses=checked,
            skipped_addresses=skipped,
            fingerprint_match=fp_ok,
        )


# -- reshard drills (DESIGN.md §14) --------------------------------------

#: Stages a reshard drill may SIGKILL the server in.  ``copy`` and
#: ``catchup`` land before the cutover commit (restart must roll back);
#: ``cutover`` lands after it (restart must roll forward).
RESHARD_KILL_STAGES = ("copy", "catchup", "cutover")


def run_reshard_cell(
    config: ChaosConfig,
    root: Path,
    name: str,
    kill_stage: str,
    generator: Optional[UpdateGenerator] = None,
    backend: str = "fast",
) -> ScenarioResult:
    """Split a shard under live load, SIGKILL mid-``kill_stage``, restart.

    One standalone durable primary splits shard 0 while acked update
    traffic flows; a watcher thread polls the journaled ``reshard.json``
    and SIGKILLs the server the moment it enters ``kill_stage``.  The
    restarted server resolves the migration journal — rollback for
    ``copy``/``catchup``, roll-forward for ``cutover`` — and a rolled
    back drill re-issues the split, so **every** run ends in the
    post-migration topology.  A batch whose ack died with the kill is
    re-sent verbatim after restart (at-least-once; idempotent at the
    route level), keeping the reference trie exactly the acked set.
    Then the three standing invariants are asserted across the epoch
    boundary, plus the topology itself (epoch bumped, one more shard).
    """
    if kill_stage not in RESHARD_KILL_STAGES:
        raise ChaosError(
            f"{name}: unknown reshard kill stage {kill_stage!r}; "
            f"pick from {RESHARD_KILL_STAGES}"
        )
    with Cluster(
        config, name, root, generator=generator, backend=backend
    ) as cluster:
        primary = cluster.spawn_solo("primary")
        state_dir = cluster.dir / "primary"
        old_shards = config.shards

        killed = threading.Event()

        def watch_and_kill() -> None:
            deadline = time.monotonic() + config.startup_timeout
            while time.monotonic() < deadline and primary.alive:
                state = read_state(state_dir)
                if state is not None and state.stage == kill_stage:
                    primary.kill()
                    killed.set()
                    return
                time.sleep(0.005)

        # Enough failover budget to ride the 0.4s cutover pause via
        # redirect-retry, little enough that a real kill surfaces fast.
        client = HAClient(
            ReplicaMap.parse(f"127.0.0.1:{primary.port}"),
            timeout=15.0,
            failover_attempts=6,
            failover_backoff=0.05,
        )
        probe = TrafficGenerator(cluster.routes, seed=config.seed + 2)

        def send_acked(target: HAClient, batch: List[UpdateMessage]) -> bool:
            """Ack-and-mirror; False means the server died under us."""
            try:
                ack = target.update(batch)
            except (ServeClientError, ServerBusyError, OSError):
                return False
            if ack.shed:
                raise ChaosError(
                    f"{cluster.name}: driver overran the update queue "
                    f"({ack.shed} shed) — enlarge --update-queue"
                )
            apply_to_reference(cluster.reference, batch)
            cluster.acked_batches += 1
            cluster.acked_updates += len(batch)
            return True

        # Warm traffic before the migration starts, so the split has
        # journaled history beneath it.
        warm = max(2, config.batches // 4)
        for _ in range(warm):
            if not send_acked(client, cluster.generator.take(config.batch_size)):
                raise ChaosError(f"{cluster.name}: server died during warmup")

        admin = ServeClient("127.0.0.1", primary.port, timeout=15.0)
        started = admin.reshard(
            {
                "action": "split",
                "shard": 0,
                # Linger in every stage so the watcher reliably observes
                # the target one; force real catch-up rounds so traffic
                # genuinely interleaves with the migration.
                "stage_delay": 0.6,
                "cutover_pause": 0.4,
                "min_catchup_rounds": 4,
            }
        )
        if not started.get("started"):
            raise ChaosError(f"{cluster.name}: reshard refused: {started}")
        admin.close()
        watcher = threading.Thread(target=watch_and_kill, daemon=True)
        watcher.start()

        # Live load across the migration: updates are the acked contract,
        # lookup probes keep DRed exercised (that state dies with the
        # kill, so it cannot disturb the replay check).
        unacked: Optional[List[UpdateMessage]] = None
        deadline = time.monotonic() + config.startup_timeout
        while not killed.is_set():
            if time.monotonic() > deadline:
                break
            try:
                client.lookup(probe.take(16))
            except (ServeClientError, ServerBusyError, OSError):
                pass
            batch = cluster.generator.take(config.batch_size)
            if not send_acked(client, batch):
                # The kill landed with this batch in flight; its ack is
                # unknown, so it must be re-sent after restart.
                unacked = batch
                break
            time.sleep(0.01)
        watcher.join(timeout=config.startup_timeout)
        client.close()
        if not killed.is_set():
            raise ChaosError(
                f"{cluster.name}: never observed reshard stage "
                f"{kill_stage!r}; server output:\n{primary.tail()}"
            )
        if primary.alive:
            raise ChaosError(f"{cluster.name}: primary survived its SIGKILL")

        # Restart on the same state; ShardSet.restore resolves the
        # migration journal (rollback or roll-forward).
        restored = cluster.spawn_restored("restored", state_dir)
        rclient = HAClient(
            ReplicaMap.parse(f"127.0.0.1:{restored.port}"),
            timeout=15.0,
            failover_backoff=0.05,
        )
        if unacked is not None and not send_acked(rclient, unacked):
            raise ChaosError(
                f"{cluster.name}: restarted server refused the re-sent "
                f"in-flight batch"
            )

        admin = ServeClient("127.0.0.1", restored.port, timeout=15.0)
        epoch_after_restart = int(admin.health().get("epoch", 0))
        rolled_back = epoch_after_restart == 1
        if kill_stage == "cutover" and rolled_back:
            raise ChaosError(
                f"{cluster.name}: kill landed after the cutover commit "
                f"but restart rolled the migration back"
            )
        if rolled_back:
            # Pre-commit kill: the old topology serves; re-issue the
            # split (no drill delays this time) and wait it out.
            out = admin.reshard({"action": "split", "shard": 0})
            if not out.get("started"):
                raise ChaosError(
                    f"{cluster.name}: re-issued reshard refused: {out}"
                )
            status: Dict[str, object] = {}
            wait_deadline = time.monotonic() + config.startup_timeout
            while time.monotonic() < wait_deadline:
                status = admin.reshard({"action": "status"})
                if not status.get("in_progress"):
                    break
                time.sleep(0.05)
            stage = (status.get("reshard") or {}).get("stage")
            if stage != "done":
                raise ChaosError(
                    f"{cluster.name}: re-issued reshard ended at stage "
                    f"{stage!r}, not done"
                )

        # Post-migration traffic — updates only: every lookup from here
        # would mutate the survivor's DRed outside the journal and
        # (correctly) break the byte-identical replay check.
        for _ in range(max(2, config.batches // 4)):
            if not send_acked(rclient, cluster.generator.take(config.batch_size)):
                raise ChaosError(
                    f"{cluster.name}: restarted server died during "
                    f"post-migration traffic"
                )
        rclient.close()

        health = admin.health()
        shard_loads = shard_load_rows(admin.stats().get("shards", []))
        admin.close()
        if int(health.get("epoch", 0)) != 2:
            raise ChaosError(
                f"{cluster.name}: expected topology epoch 2 after the "
                f"drill, found {health.get('epoch')}"
            )
        if int(health.get("shards", 0)) != old_shards + 1:
            raise ChaosError(
                f"{cluster.name}: expected {old_shards + 1} shards after "
                f"the split, found {health.get('shards')}"
            )

        checked, skipped, fp_ok = verify_survivor(
            cluster, restored.port, state_dir
        )
        return ScenarioResult(
            name=cluster.name,
            ok=True,
            acked_batches=cluster.acked_batches,
            acked_updates=cluster.acked_updates,
            failovers=1,  # the restart is the drill's one failover
            checked_addresses=checked,
            skipped_addresses=skipped,
            fingerprint_match=fp_ok,
            shard_loads=shard_loads,
        )


def shard_load_rows(rows: Sequence[Dict]) -> List[Dict[str, object]]:
    """Prune full shard reports down to the per-range load view."""
    return [
        {
            "shard": row.get("shard", index),
            "range": row.get("range"),
            "lookup_hits": row.get("lookup_hits", 0),
            "update_hits": row.get("update_hits", 0),
        }
        for index, row in enumerate(rows)
    ]


# -- scenarios -----------------------------------------------------------


def _scenario_kill_primary_mid_storm(
    config: ChaosConfig, root: Path
) -> ScenarioResult:
    """SIGKILL the primary while an update storm (and chip faults) rage."""
    kill_at = max(2, config.batches // 2)
    # Compose engine faults with the process kill in ONE schedule —
    # the runner executes the kill, the primary arms the rest.
    schedule = (
        FaultSchedule(seed=config.seed)
        .chip_down(40, 0)
        .chip_up(300, 0)
        .corrupt(120, config.chips - 1)
        .stall(200, config.chips - 1, 16)
        .kill_primary(kill_at)
    )
    return run_cell(config, root, "kill-primary-mid-storm", schedule)


def _scenario_kill_during_promotion(
    config: ChaosConfig, root: Path
) -> ScenarioResult:
    """Kill the primary, then kill the backup while it promotes; the
    backup's epoch journal must restore to a serving primary with every
    acked update intact."""
    cluster = Cluster(config, "kill-during-promotion", root)
    try:
        backup = cluster.spawn_backup("backup")
        primary = cluster.spawn_primary("primary", backup.port)
        client = cluster.ha_client(primary.port, backup.port)
        cluster.drive(client, config.batches)
        client.close()

        primary.kill()
        # Feed EOF triggers promotion immediately; SIGKILL lands while
        # it is (or just finished) promoting — either way the *local*
        # epoch journal is all that survives.
        time.sleep(0.2)
        backup.kill()

        epoch = latest_epoch_dir(cluster.dir / "backup")
        if epoch is None:
            raise ChaosError("backup never bootstrapped an epoch")
        restored = cluster.spawn_restored("restored", epoch)
        checked, skipped, fp_ok = verify_survivor(
            cluster, restored.port, epoch
        )
        return ScenarioResult(
            name=cluster.name,
            ok=True,
            acked_batches=cluster.acked_batches,
            acked_updates=cluster.acked_updates,
            checked_addresses=checked,
            skipped_addresses=skipped,
            fingerprint_match=fp_ok,
        )
    finally:
        cluster.shutdown()


def _scenario_backup_death_during_catchup(
    config: ChaosConfig, root: Path
) -> ScenarioResult:
    """Kill the backup mid-stream, re-bootstrap a fresh one on the same
    port, wait for catch-up, then kill the primary and fail over."""
    cluster = Cluster(config, "backup-death-during-catchup", root)
    try:
        phase = max(2, config.batches // 4)
        backup1 = cluster.spawn_backup("backup1")
        primary = cluster.spawn_primary("primary", backup1.port)
        client = cluster.ha_client(primary.port, backup1.port)

        cluster.drive(client, phase)
        backup1.kill()  # catch-up link dies; primary keeps serving
        cluster.drive(client, phase)
        client.close()

        # A fresh backup takes over the dead one's address (that is the
        # endpoint the primary redials); its bootstrap snapshot carries
        # everything acked while no backup was alive.
        backup2 = cluster.spawn_backup("backup2", port=backup1.port)
        _await_replication(primary.port, timeout=30.0)
        client = cluster.ha_client(primary.port, backup2.port)
        cluster.drive(client, phase)

        primary.kill()
        cluster.drive(client, phase)  # rides the failover onto backup2
        failovers = client.failovers
        client.close()

        epoch = latest_epoch_dir(cluster.dir / "backup2")
        if epoch is None:
            raise ChaosError("backup2 never bootstrapped an epoch")
        checked, skipped, fp_ok = verify_survivor(
            cluster, backup2.port, epoch
        )
        return ScenarioResult(
            name=cluster.name,
            ok=True,
            acked_batches=cluster.acked_batches,
            acked_updates=cluster.acked_updates,
            failovers=failovers,
            checked_addresses=checked,
            skipped_addresses=skipped,
            fingerprint_match=fp_ok,
        )
    finally:
        cluster.shutdown()


def _scenario_reshard_split_copy_kill(
    config: ChaosConfig, root: Path
) -> ScenarioResult:
    """SIGKILL mid-COPY: restart must roll the migration back, then the
    re-issued split completes on the recovered topology."""
    return run_reshard_cell(config, root, "reshard-split-copy-kill", "copy")


def _scenario_reshard_split_catchup_kill(
    config: ChaosConfig, root: Path
) -> ScenarioResult:
    """SIGKILL mid-CATCHUP (live deltas streaming): still pre-commit, so
    restart rolls back and the re-issued split completes."""
    return run_reshard_cell(
        config, root, "reshard-split-catchup-kill", "catchup"
    )


def _scenario_reshard_split_cutover_kill(
    config: ChaosConfig, root: Path
) -> ScenarioResult:
    """SIGKILL after the cutover commit but before RETIRE: restart must
    roll *forward* into the new epoch."""
    return run_reshard_cell(
        config, root, "reshard-split-cutover-kill", "cutover"
    )


def _await_replication(primary_port: int, timeout: float) -> None:
    """Poll the primary's health until its shipper is caught up."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        with ServeClient("127.0.0.1", primary_port, timeout=10.0) as client:
            replication = client.health().get("replication") or {}
        if replication.get("alive") and (
            replication.get("acked") == replication.get("shipped")
        ):
            return
        time.sleep(0.25)
    raise ChaosError(
        f"primary on port {primary_port} never re-established replication"
    )


SCENARIOS = {
    "kill-primary-mid-storm": _scenario_kill_primary_mid_storm,
    "kill-during-promotion": _scenario_kill_during_promotion,
    "backup-death-during-catchup": _scenario_backup_death_during_catchup,
    "reshard-split-copy-kill": _scenario_reshard_split_copy_kill,
    "reshard-split-catchup-kill": _scenario_reshard_split_catchup_kill,
    "reshard-split-cutover-kill": _scenario_reshard_split_cutover_kill,
}


def run_campaign(
    config: Optional[ChaosConfig] = None,
    scenarios: Optional[Sequence[str]] = None,
    log: Callable[[str], None] = print,
) -> List[ScenarioResult]:
    """Run the scenario matrix; returns one result per scenario.

    A scenario failure (invariant violation or setup error) is captured
    in its result, not raised — the campaign always completes so CI can
    report every scenario's verdict at once.
    """
    config = config or ChaosConfig()
    names = list(scenarios) if scenarios else list(SCENARIOS)
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        raise ValueError(
            f"unknown scenario(s) {unknown}; pick from {sorted(SCENARIOS)}"
        )
    owns_workdir = config.workdir is None
    root = Path(
        config.workdir
        if config.workdir is not None
        else tempfile.mkdtemp(prefix="repro-chaos-")
    )
    results: List[ScenarioResult] = []
    try:
        for name in names:
            log(f"chaos: {name} ...")
            started = time.monotonic()
            try:
                result = SCENARIOS[name](config, root)
            except (ChaosError, Exception) as exc:  # noqa: BLE001
                result = ScenarioResult(
                    name=name, ok=False, detail=f"{type(exc).__name__}: {exc}"
                )
            elapsed = time.monotonic() - started
            verdict = "ok" if result.ok else f"FAIL ({result.detail})"
            log(
                f"chaos: {name}: {verdict} — {result.acked_batches} acked "
                f"batches, {result.failovers} failover(s), "
                f"{result.checked_addresses} addresses checked "
                f"[{elapsed:.1f}s]"
            )
            results.append(result)
    finally:
        if owns_workdir:
            shutil.rmtree(root, ignore_errors=True)
    return results
