"""Pure-python blocking client for the serving plane.

The simple methods (:meth:`lookup`, :meth:`update`, the admin calls) are
strict request/response.  For pipelining — several requests in flight on
one connection — use the raw primitives :meth:`send` / :meth:`recv`:
the server answers strictly in request order, so responses match up
positionally (that is what the load generator does).

``MSG_BUSY`` surfaces as :class:`ServerBusyError`: the server refused
the request — inflight window exceeded, a drain in progress, or the
endpoint is a backup that owns no address range — and retrying later
(or elsewhere) is the client's job, mirroring how shed BGP updates rely
on re-advertisement.

Two failure-handling layers:

* :class:`ServeClient` never blocks forever: connects and reads both
  time out, and connect retries with bounded exponential backoff.
* :class:`HAClient` wraps a :class:`~repro.serve.router.ReplicaMap` and
  retries redirectable failures (``BUSY "draining"``/``"backup"``,
  timeouts, connection loss) against whichever replica currently claims
  the primary role.  Updates are safe to resend: the trie treats a
  duplicate announce as a no-op modify and a duplicate withdraw as a
  no-op, so at-least-once delivery never corrupts state.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Callable, Dict, List, Optional, Sequence, TypeVar, Union

from repro.serve import protocol
from repro.serve.protocol import Frame, ProtocolError, Redirect, UpdateAck
from repro.serve.router import ReplicaEndpoint, ReplicaMap
from repro.workload.updategen import UpdateMessage

T = TypeVar("T")


class ServeClientError(Exception):
    """The server answered MSG_ERROR."""


class ServeTimeoutError(ServeClientError):
    """The server did not answer within the read timeout."""


class ServerBusyError(Exception):
    """The server refused the request (backpressure, drain, or backup)."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class ReshardRedirect(ServerBusyError):
    """The server answered ``MSG_REDIRECT``: the topology is changing.

    Carries the epoch the server is moving to and its replica rows so an
    :class:`HAClient` can refresh its map before retrying — for the
    in-place reshard the rows point back at the same endpoint, and the
    retry lands once the cutover pause closes.
    """

    def __init__(self, redirect: Redirect) -> None:
        super().__init__(redirect.reason)
        self.redirect = redirect


class FailoverError(ServeClientError):
    """No replica accepted the request within the failover budget."""


class ServeClient:
    """One TCP connection to a :class:`~repro.serve.server.ClueServer`.

    ``timeout`` bounds every read (a dead server surfaces as
    :class:`ServeTimeoutError` instead of a hung client); ``connect``
    retries ``connect_attempts`` times with exponential backoff starting
    at ``connect_backoff`` seconds, so a briefly-restarting server does
    not fail the first request after failover.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = 30.0,
        connect_timeout: float = 5.0,
        connect_attempts: int = 3,
        connect_backoff: float = 0.05,
    ) -> None:
        if connect_attempts < 1:
            raise ValueError("need at least one connect attempt")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.connect_attempts = connect_attempts
        self.connect_backoff = connect_backoff
        self._sock: Optional[socket.socket] = None
        self._next_request_id = 0
        self._connect()

    def _connect(self) -> None:
        backoff = self.connect_backoff
        last_error: Optional[OSError] = None
        for attempt in range(self.connect_attempts):
            if attempt:
                # Jittered exponential backoff: a fleet of clients cut
                # off by the same restart must not redial in lockstep.
                time.sleep(backoff * (0.5 + random.random()))
                backoff *= 2
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.connect_timeout
                )
            except OSError as exc:
                last_error = exc
                continue
            sock.settimeout(self.timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
            self._next_request_id = 0
            return
        assert last_error is not None
        raise last_error

    def reconnect(self) -> None:
        """Drop the connection (in-flight requests with it) and redial."""
        self.close()
        self._connect()

    # -- raw pipelining primitives --------------------------------------

    def send(self, msg_type: int, payload: bytes = b"") -> int:
        """Fire one request without waiting; returns its request id."""
        assert self._sock is not None
        request_id = self._next_request_id
        self._next_request_id = (request_id + 1) & 0xFFFFFFFF
        self._sock.sendall(protocol.encode_frame(msg_type, request_id, payload))
        return request_id

    def recv(self) -> Frame:
        """The next response frame, in request order."""
        assert self._sock is not None
        try:
            frame = protocol.read_frame_blocking(self._sock)
        except socket.timeout as exc:
            raise ServeTimeoutError(
                f"no response from {self.host}:{self.port} within "
                f"{self.timeout}s"
            ) from exc
        if frame is None:
            raise ProtocolError("server closed the connection")
        return frame

    # -- request/response -----------------------------------------------

    def _call(self, msg_type: int, payload: bytes = b"") -> Frame:
        request_id = self.send(msg_type, payload)
        frame = self.recv()
        if frame.request_id != request_id:
            raise ProtocolError(
                f"response for request {frame.request_id}, "
                f"expected {request_id}"
            )
        if frame.type == protocol.MSG_BUSY:
            raise ServerBusyError(protocol.decode_text(frame.payload))
        if frame.type == protocol.MSG_REDIRECT:
            raise ReshardRedirect(protocol.decode_redirect(frame.payload))
        if frame.type == protocol.MSG_ERROR:
            raise ServeClientError(protocol.decode_text(frame.payload))
        return frame

    def _admin(self, msg_type: int, payload: bytes = b"") -> Dict:
        frame = self._call(msg_type, payload)
        if frame.type != protocol.MSG_ADMIN_OK:
            raise ProtocolError(f"unexpected response type {frame.type:#x}")
        data = protocol.decode_json(frame.payload)
        if not isinstance(data, dict):
            raise ProtocolError("admin response is not a JSON object")
        return data

    def lookup(self, addresses: Sequence[int]) -> List[Optional[int]]:
        """Batched LPM; ``None`` per address means no matching route."""
        frame = self._call(
            protocol.MSG_LOOKUP, protocol.encode_addresses(addresses)
        )
        if frame.type != protocol.MSG_LOOKUP_OK:
            raise ProtocolError(f"unexpected response type {frame.type:#x}")
        hops = protocol.decode_hops(frame.payload)
        if len(hops) != len(addresses):
            raise ProtocolError(
                f"{len(hops)} hops for {len(addresses)} addresses"
            )
        return hops

    def update(self, messages: Sequence[UpdateMessage]) -> UpdateAck:
        """Send one update batch; the ack reports acceptance/durability."""
        frame = self._call(
            protocol.MSG_UPDATE, protocol.encode_updates(messages)
        )
        if frame.type != protocol.MSG_UPDATE_OK:
            raise ProtocolError(f"unexpected response type {frame.type:#x}")
        return protocol.decode_update_ack(frame.payload)

    # -- admin ----------------------------------------------------------

    def stats(self) -> Dict:
        return self._admin(protocol.MSG_STATS)

    def health(self) -> Dict:
        return self._admin(protocol.MSG_HEALTH)

    def checkpoint(self) -> Dict:
        return self._admin(protocol.MSG_CHECKPOINT)

    def fingerprint(self) -> str:
        return str(self._admin(protocol.MSG_FINGERPRINT)["fingerprint"])

    def topology(self) -> Dict:
        """Shard topology as advertised by the server's health snapshot.

        Returns ``{"shards", "epoch", "boundaries", "workers"}``; the
        last two are only present on a multi-process front, where
        ``workers`` carries each shard's directly dialable endpoint
        (host, port, alive, range) so a sharding-aware caller — the
        bench's parallel load generator, for one — can drive worker
        processes on their own ports.  Routing through this client
        stays unchanged either way.
        """
        health = self.health()
        return {
            key: health[key]
            for key in ("shards", "epoch", "boundaries", "workers")
            if key in health
        }

    def failover(self) -> Dict:
        """Tell a backup to promote itself right now (admin command)."""
        return self._admin(protocol.MSG_FAILOVER)

    def flush(self) -> Dict:
        """Quiesce every shard (apply all queued updates), keep serving."""
        return self._admin(protocol.MSG_FLUSH)

    def reshard(self, request: Dict) -> Dict:
        """Start or inspect a live shard split/merge.

        ``request`` mirrors the server's MSG_RESHARD contract:
        ``{"action": "split"|"merge"|"auto"|"status", "shard": i, ...}``
        with optional ``at``, ``stage_delay``, ``cutover_pause``.  A
        start request returns immediately; poll ``action: "status"``
        until the journaled stage reaches ``done`` or ``rolled-back``.
        """
        return self._admin(
            protocol.MSG_RESHARD, protocol.encode_json(dict(request))
        )

    def drain(self) -> Dict:
        """Ask the server to drain gracefully (same path as SIGTERM)."""
        return self._admin(protocol.MSG_DRAIN)

    # -- lifecycle ------------------------------------------------------

    def half_close(self) -> None:
        """Signal EOF to the server while still reading responses.

        The drain handshake: a client that half-closes lets the server
        finish every admitted request and then release the connection.
        """
        assert self._sock is not None
        self._sock.shutdown(socket.SHUT_WR)

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            self._sock.close()
        except OSError:
            pass
        self._sock = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


#: BUSY reasons that mean "this endpoint will not serve you" — retry
#: against another replica.  ``window`` is deliberately absent: the
#: primary is healthy, the client is just pushing too hard.
#: ``resharding`` arrives as MSG_REDIRECT rather than MSG_BUSY and is
#: retriable for a different reason: the *same* endpoint serves again
#: (under a new topology epoch) as soon as the cutover completes.
REDIRECT_REASONS = frozenset({"draining", "backup", "resharding"})


class HAClient:
    """Replica-aware client with transparent retry-on-redirect.

    Probes the :class:`ReplicaMap` for whichever endpoint currently
    reports ``role == "primary"`` and replays redirected or failed
    requests there — a promotion in progress shows up as a short burst
    of retries, not an error.  Zero acked updates are lost across a
    failover: only the *retry* of an unacked batch lands on the new
    primary, and replays are idempotent at the route level.
    """

    def __init__(
        self,
        replicas: Union[ReplicaMap, str, Sequence],
        timeout: Optional[float] = 10.0,
        failover_attempts: int = 20,
        failover_backoff: float = 0.25,
    ) -> None:
        if isinstance(replicas, str):
            replicas = ReplicaMap.parse(replicas)
        elif not isinstance(replicas, ReplicaMap):
            replicas = ReplicaMap(
                [ReplicaEndpoint(host, int(port)) for host, port in replicas]
            )
        self.replicas = replicas
        self.timeout = timeout
        self.failover_attempts = failover_attempts
        self.failover_backoff = failover_backoff
        self.failovers = 0
        self._client: Optional[ServeClient] = None

    # -- primary resolution ---------------------------------------------

    def _probe(self, endpoint) -> Optional[ServeClient]:
        """Health-check one endpoint; keep the connection if primary."""
        try:
            client = ServeClient(
                endpoint.host,
                endpoint.port,
                timeout=self.timeout,
                connect_timeout=min(2.0, self.timeout or 2.0),
                connect_attempts=1,
            )
        except OSError:
            self.replicas.note_role(endpoint.host, endpoint.port, "dead")
            return None
        try:
            health = client.health()
        except (ServeClientError, ProtocolError, ConnectionError, OSError):
            client.close()
            self.replicas.note_role(endpoint.host, endpoint.port, "dead")
            return None
        role = str(health.get("role", "primary"))
        status = str(health.get("status", "ok"))
        self.replicas.note_role(endpoint.host, endpoint.port, role)
        # Learn endpoints the server knows about (its own backup).
        for row in health.get("replicas", []) or []:
            try:
                host, port, peer_role = row
                self.replicas.note_role(str(host), int(port), str(peer_role))
            except (TypeError, ValueError):
                continue
        if role == "primary" and status == "ok":
            return client
        client.close()
        return None

    def connect(self) -> ServeClient:
        """The connection to the current primary, (re)establishing it."""
        if self._client is not None:
            return self._client
        for endpoint in self.replicas.candidates():
            client = self._probe(endpoint)
            if client is not None:
                self._client = client
                return client
        raise FailoverError(
            "no primary among "
            + ", ".join(e.address for e in self.replicas.endpoints)
        )

    def drop(self) -> None:
        """Forget the current connection; the next call re-resolves."""
        if self._client is not None:
            self._client.close()
            self._client = None

    def _with_failover(self, operation: Callable[[ServeClient], T]) -> T:
        backoff = self.failover_backoff
        last_error: Optional[Exception] = None
        for attempt in range(self.failover_attempts):
            if attempt:
                # Jitter for the same reason as ServeClient._connect:
                # retries from many clients must spread out, not beat.
                time.sleep(backoff * (0.5 + random.random()))
                backoff = min(backoff * 1.5, 2.0)
            try:
                return operation(self.connect())
            except ReshardRedirect as exc:
                # The endpoint is mid-cutover: refresh the map from the
                # redirect payload and retry (usually the same address,
                # one topology epoch later).
                for host, port, role in exc.redirect.replicas:
                    self.replicas.note_role(host, port, role)
                last_error = exc
                self.drop()
                self.failovers += 1
            except ServerBusyError as exc:
                if exc.reason not in REDIRECT_REASONS:
                    raise  # "window" is pacing, not placement
                last_error = exc
                self.drop()
                self.failovers += 1
            except FailoverError as exc:
                last_error = exc  # nobody is primary yet; wait and re-probe
            except (
                ServeTimeoutError,
                ProtocolError,
                ConnectionError,
                OSError,
            ) as exc:
                last_error = exc
                self.drop()
                self.failovers += 1
        raise FailoverError(
            f"gave up after {self.failover_attempts} attempts: {last_error}"
        )

    # -- data plane ------------------------------------------------------

    def lookup(self, addresses: Sequence[int]) -> List[Optional[int]]:
        return self._with_failover(lambda c: c.lookup(addresses))

    def update(self, messages: Sequence[UpdateMessage]) -> UpdateAck:
        messages = list(messages)
        return self._with_failover(lambda c: c.update(messages))

    # -- admin ----------------------------------------------------------

    def health(self) -> Dict:
        return self._with_failover(lambda c: c.health())

    def stats(self) -> Dict:
        return self._with_failover(lambda c: c.stats())

    def fingerprint(self) -> str:
        return self._with_failover(lambda c: c.fingerprint())

    def checkpoint(self) -> Dict:
        return self._with_failover(lambda c: c.checkpoint())

    def flush(self) -> Dict:
        return self._with_failover(lambda c: c.flush())

    def reshard(self, request: Dict) -> Dict:
        return self._with_failover(lambda c: c.reshard(dict(request)))

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        self.drop()

    def __enter__(self) -> "HAClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
