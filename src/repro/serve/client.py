"""Pure-python blocking client for the serving plane.

The simple methods (:meth:`lookup`, :meth:`update`, the admin calls) are
strict request/response.  For pipelining — several requests in flight on
one connection — use the raw primitives :meth:`send` / :meth:`recv`:
the server answers strictly in request order, so responses match up
positionally (that is what the load generator does).

``MSG_BUSY`` surfaces as :class:`ServerBusyError`: the server refused
the request — inflight window exceeded, or a drain in progress — and
retrying later (or slower) is the client's job, mirroring how shed BGP
updates rely on re-advertisement.
"""

from __future__ import annotations

import socket
from typing import Dict, List, Optional, Sequence

from repro.serve import protocol
from repro.serve.protocol import Frame, ProtocolError, UpdateAck
from repro.workload.updategen import UpdateMessage


class ServeClientError(Exception):
    """The server answered MSG_ERROR."""


class ServerBusyError(Exception):
    """The server refused the request (backpressure or drain)."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class ServeClient:
    """One TCP connection to a :class:`~repro.serve.server.ClueServer`."""

    def __init__(
        self, host: str, port: int, timeout: Optional[float] = 30.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._next_request_id = 0

    # -- raw pipelining primitives --------------------------------------

    def send(self, msg_type: int, payload: bytes = b"") -> int:
        """Fire one request without waiting; returns its request id."""
        request_id = self._next_request_id
        self._next_request_id = (request_id + 1) & 0xFFFFFFFF
        self._sock.sendall(protocol.encode_frame(msg_type, request_id, payload))
        return request_id

    def recv(self) -> Frame:
        """The next response frame, in request order."""
        frame = protocol.read_frame_blocking(self._sock)
        if frame is None:
            raise ProtocolError("server closed the connection")
        return frame

    # -- request/response -----------------------------------------------

    def _call(self, msg_type: int, payload: bytes = b"") -> Frame:
        request_id = self.send(msg_type, payload)
        frame = self.recv()
        if frame.request_id != request_id:
            raise ProtocolError(
                f"response for request {frame.request_id}, "
                f"expected {request_id}"
            )
        if frame.type == protocol.MSG_BUSY:
            raise ServerBusyError(protocol.decode_text(frame.payload))
        if frame.type == protocol.MSG_ERROR:
            raise ServeClientError(protocol.decode_text(frame.payload))
        return frame

    def _admin(self, msg_type: int) -> Dict:
        frame = self._call(msg_type)
        if frame.type != protocol.MSG_ADMIN_OK:
            raise ProtocolError(f"unexpected response type {frame.type:#x}")
        data = protocol.decode_json(frame.payload)
        if not isinstance(data, dict):
            raise ProtocolError("admin response is not a JSON object")
        return data

    def lookup(self, addresses: Sequence[int]) -> List[Optional[int]]:
        """Batched LPM; ``None`` per address means no matching route."""
        frame = self._call(
            protocol.MSG_LOOKUP, protocol.encode_addresses(addresses)
        )
        if frame.type != protocol.MSG_LOOKUP_OK:
            raise ProtocolError(f"unexpected response type {frame.type:#x}")
        hops = protocol.decode_hops(frame.payload)
        if len(hops) != len(addresses):
            raise ProtocolError(
                f"{len(hops)} hops for {len(addresses)} addresses"
            )
        return hops

    def update(self, messages: Sequence[UpdateMessage]) -> UpdateAck:
        """Send one update batch; the ack reports acceptance/durability."""
        frame = self._call(
            protocol.MSG_UPDATE, protocol.encode_updates(messages)
        )
        if frame.type != protocol.MSG_UPDATE_OK:
            raise ProtocolError(f"unexpected response type {frame.type:#x}")
        return protocol.decode_update_ack(frame.payload)

    # -- admin ----------------------------------------------------------

    def stats(self) -> Dict:
        return self._admin(protocol.MSG_STATS)

    def health(self) -> Dict:
        return self._admin(protocol.MSG_HEALTH)

    def checkpoint(self) -> Dict:
        return self._admin(protocol.MSG_CHECKPOINT)

    def fingerprint(self) -> str:
        return str(self._admin(protocol.MSG_FINGERPRINT)["fingerprint"])

    def drain(self) -> Dict:
        """Ask the server to drain gracefully (same path as SIGTERM)."""
        return self._admin(protocol.MSG_DRAIN)

    # -- lifecycle ------------------------------------------------------

    def half_close(self) -> None:
        """Signal EOF to the server while still reading responses.

        The drain handshake: a client that half-closes lets the server
        finish every admitted request and then release the connection.
        """
        self._sock.shutdown(socket.SHUT_WR)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
