"""Primary/backup replication via journal shipping (DESIGN.md §12).

The serving plane's durability story (PR 2/PR 4) ends at the primary's
own disk; this module extends it across a replica pair.  The primary
streams every shard's committed journal records to a backup over the
same length-prefixed protocol the data plane uses (``MSG_REPLICATE`` /
``MSG_REPLICATE_OK``); the backup applies each record through its own
:class:`~repro.persist.manager.PersistenceManager` — journal-before-apply
again, so the backup is itself crash-consistent — and answers with its
applied watermark.

Ack semantics (``ack_mode``):

* ``primary`` — the client's durable ack means "fsynced on the primary".
  Shipping is asynchronous (bounded in-flight window); the ack's
  ``replicated`` flag stays ``False`` because the primary will not claim
  more than the backup has confirmed.
* ``quorum`` — the primary waits for the backup's watermark ack before
  answering the client; ``replicated=True`` then means the batch survives
  the loss of either replica.

The watermark ordering invariant in both modes: records are shipped only
after the primary's fsync (an ack never precedes primary durability) and
``replicated`` is set only from an explicit backup ack (an ack never
claims more than the backup has applied).

Promotion: on primary death (replication-feed EOF, heartbeat timeout, or
an explicit admin ``MSG_FAILOVER``) the backup verifies each shard's
control fingerprint against the last one shipped at its watermark and
takes over the address range as a normal serving primary.  The "journal
tail replay" of the design happens in two places: shipped records are
applied (and locally journaled) eagerly while following, and a backup
that itself dies mid-promotion replays its *local* epoch journal through
the ordinary :meth:`ShardSet.restore` path on restart.
"""

from __future__ import annotations

import select
import socket
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple, Union

from repro.persist import codec
from repro.persist.manager import PersistenceManager
from repro.serve import protocol
from repro.serve.protocol import ProtocolError, ReplicateAck
from repro.serve.router import ShardRouter
from repro.serve.shard import ShardSet, ShardWorker

PathLike = Union[str, Path]

EPOCH_PREFIX = "epoch-"

#: Backup roles, in lifecycle order.
ROLE_SYNCING = "syncing"
ROLE_FOLLOWING = "following"
ROLE_PROMOTING = "promoting"
ROLE_PRIMARY = "primary"


class ReplicationError(Exception):
    """The replica pair cannot make progress (divergence, gaps, loss)."""


@dataclass
class ReplicationConfig:
    """Knobs of one replication link."""

    #: ``primary`` or ``quorum`` — see the module docstring.
    ack_mode: str = "primary"
    connect_timeout: float = 5.0
    io_timeout: float = 30.0
    #: Ship the primary's per-shard control fingerprint with every record
    #: batch so the backup verifies convergence continuously.  Must be
    #: off when un-journaled chip faults are armed on the primary (their
    #: effects never ship, so the fingerprints legitimately differ).
    ship_fingerprints: bool = True
    #: ``primary``-mode flow control: unacked REPLICATE frames allowed in
    #: flight before the shipper blocks for one ack.
    max_unacked: int = 64
    #: Seconds between reconnect attempts after the backup dies.
    reconnect_backoff: float = 1.0

    def __post_init__(self) -> None:
        if self.ack_mode not in ("primary", "quorum"):
            raise ValueError(
                f"ack_mode must be 'primary' or 'quorum', not {self.ack_mode!r}"
            )


@dataclass
class ShipperStats:
    """Counters one :class:`JournalShipper` accumulates."""

    bootstraps: int = 0
    batches_shipped: int = 0
    records_shipped: int = 0
    heartbeats: int = 0
    failures: int = 0


class JournalShipper:
    """Primary side: streams committed journal records to one backup.

    The shipper runs synchronously inside the server's event loop (the
    update path is synchronous by design); ``quorum`` mode blocks for
    the backup's watermark ack per shipped batch, ``primary`` mode keeps
    a bounded in-flight window and drains acks opportunistically.
    A dead backup degrades the link instead of the service: shipping
    stops, acks report ``replicated=False``, and every later ship
    attempt retries the connection (backoff-limited) with a fresh
    bootstrap snapshot.
    """

    def __init__(
        self,
        host: str,
        port: int,
        shards: ShardSet,
        config: Optional[ReplicationConfig] = None,
    ) -> None:
        if not shards.durable:
            raise ValueError(
                "replication ships journal records; every shard needs a "
                "PersistenceManager (serve with --journal)"
            )
        self.host = host
        self.port = port
        self.shards = shards
        self.config = config or ReplicationConfig()
        self.stats = ShipperStats()
        self.alive = False
        #: Highest primary seq shipped / acked, per shard.
        self.shipped: List[int] = [0] * len(shards.workers)
        self.acked: List[int] = [0] * len(shards.workers)
        self._sock: Optional[socket.socket] = None
        self._next_request_id = 0
        #: request ids of REPLICATE frames whose ack is outstanding,
        #: paired with the (shard, seq) the ack will confirm.
        self._pending: Deque[Tuple[int, int, int]] = deque()
        self._last_attempt = 0.0

    # -- connection lifecycle -------------------------------------------

    def connect(self) -> None:
        """Connect and bootstrap the backup; raises on failure."""
        self._last_attempt = time.monotonic()
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.config.connect_timeout
        )
        sock.settimeout(self.config.io_timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._pending.clear()
        shards_payload = []
        for worker in self.shards.workers:
            assert worker.manager is not None
            seq = worker.manager.begin_shipping()
            entry = {
                "index": worker.index,
                "seq": seq,
                "state": worker.system.capture_state(),
            }
            if self.config.ship_fingerprints:
                entry["fingerprint"] = worker.system.control_fingerprint()
            shards_payload.append(entry)
            self.shipped[worker.index] = seq
            self.acked[worker.index] = 0
        payload = protocol.encode_replicate(
            {
                "kind": protocol.REPLICATE_BOOTSTRAP,
                "boundaries": self.shards.router.boundaries,
                "ack_mode": self.config.ack_mode,
                "shards": shards_payload,
            }
        )
        try:
            ack = self._send_and_wait(payload)
        except (OSError, ProtocolError, ReplicationError) as exc:
            self._mark_dead()
            raise ReplicationError(f"bootstrap failed: {exc}") from exc
        for worker in self.shards.workers:
            self.acked[worker.index] = self.shipped[worker.index]
        del ack
        self.alive = True
        self.stats.bootstraps += 1

    def try_connect(self) -> bool:
        """Backoff-limited reconnect; swallows failures."""
        if self.alive:
            return True
        if (
            time.monotonic() - self._last_attempt
            < self.config.reconnect_backoff
        ):
            return False
        try:
            self.connect()
        except (OSError, ReplicationError):
            self.stats.failures += 1
            return False
        return True

    def _mark_dead(self) -> None:
        if self.alive or self._sock is not None:
            self.alive = False
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass
                self._sock = None
            self._pending.clear()
            # Stop buffering: a dead link must not grow memory without
            # bound; reconnect re-bootstraps from a fresh snapshot.
            for worker in self.shards.workers:
                if worker.manager is not None:
                    worker.manager.end_shipping()

    def close(self) -> None:
        self._mark_dead()

    # -- shipping -------------------------------------------------------

    def ship(self) -> bool:
        """Ship every shard's freshly committed records.

        Returns ``True`` only when the link is up *and* every shipped
        record has been acked by the backup — the ``replicated`` verdict
        a quorum ack forwards to the client.  Called after each durable
        commit (post-fsync, pre-client-ack) and from the heartbeat.
        """
        if not self.alive and not self.try_connect():
            return False
        quorum = self.config.ack_mode == "quorum"
        try:
            for worker in self.shards.workers:
                assert worker.manager is not None
                batch = worker.manager.collect_shipment()
                if not batch:
                    continue
                entry: Dict = {
                    "kind": protocol.REPLICATE_RECORDS,
                    "shard": worker.index,
                    "records": list(batch),
                }
                if self.config.ship_fingerprints:
                    entry["fingerprint"] = worker.system.control_fingerprint()
                last_seq = batch[-1][0]
                payload = protocol.encode_replicate(entry)
                if quorum:
                    ack = self._send_and_wait(payload)
                    if ack.shard != worker.index or ack.applied_seq < last_seq:
                        raise ReplicationError(
                            f"backup acked shard {ack.shard} seq "
                            f"{ack.applied_seq}, shipped shard "
                            f"{worker.index} through {last_seq}"
                        )
                    self.acked[worker.index] = ack.applied_seq
                else:
                    self._send_async(payload, worker.index, last_seq)
                self.shipped[worker.index] = last_seq
                self.stats.batches_shipped += 1
                self.stats.records_shipped += len(batch)
            if not quorum:
                self._drain_acks(block=len(self._pending) > self.config.max_unacked)
        except (OSError, ProtocolError, ReplicationError):
            self.stats.failures += 1
            self._mark_dead()
            return False
        return self.alive and self.acked == self.shipped

    def heartbeat(self) -> None:
        """Keep the link warm: ship stragglers, then one heartbeat frame.

        The backup times out on silence (its promotion watchdog), so an
        idle primary must keep frames flowing; the heartbeat also drains
        outstanding ``primary``-mode acks, advancing the watermark the
        health endpoint reports.
        """
        if not self.alive and not self.try_connect():
            return
        self.ship()
        if not self.alive:
            return
        try:
            payload = protocol.encode_replicate(
                {"kind": protocol.REPLICATE_HEARTBEAT}
            )
            if self.config.ack_mode == "quorum":
                self._send_and_wait(payload)
            else:
                self._send_async(payload, -1, 0)
                self._drain_acks(block=False)
            self.stats.heartbeats += 1
        except (OSError, ProtocolError, ReplicationError):
            self.stats.failures += 1
            self._mark_dead()

    # -- wire helpers ---------------------------------------------------

    def _send(self, payload: bytes) -> int:
        assert self._sock is not None
        request_id = self._next_request_id
        self._next_request_id = (request_id + 1) & 0xFFFFFFFF
        self._sock.sendall(
            protocol.encode_frame(protocol.MSG_REPLICATE, request_id, payload)
        )
        return request_id

    def _send_async(self, payload: bytes, shard: int, seq: int) -> None:
        request_id = self._send(payload)
        self._pending.append((request_id, shard, seq))

    def _send_and_wait(self, payload: bytes) -> ReplicateAck:
        request_id = self._send(payload)
        # Acks come back in request order; drain any leftovers from an
        # earlier primary-mode phase first.
        while True:
            frame = self._read_frame()
            if self._pending and frame.request_id == self._pending[0][0]:
                self._settle(frame)
                continue
            if frame.request_id != request_id:
                raise ReplicationError(
                    f"backup answered request {frame.request_id}, "
                    f"expected {request_id}"
                )
            return self._decode_ack(frame)

    def _drain_acks(self, block: bool) -> None:
        assert self._sock is not None
        while self._pending:
            if not block:
                readable, _, _ = select.select([self._sock], [], [], 0)
                if not readable:
                    return
            frame = self._read_frame()
            self._settle(frame)
            block = False  # one blocking ack is enough to free the window

    def _settle(self, frame) -> None:
        expected_id, shard, seq = self._pending.popleft()
        if frame.request_id != expected_id:
            raise ReplicationError(
                f"backup answered request {frame.request_id}, "
                f"expected {expected_id}"
            )
        ack = self._decode_ack(frame)
        if shard >= 0:
            if ack.shard != shard or ack.applied_seq < seq:
                raise ReplicationError(
                    f"backup acked shard {ack.shard} seq {ack.applied_seq}, "
                    f"shipped shard {shard} through {seq}"
                )
            self.acked[shard] = max(self.acked[shard], ack.applied_seq)

    def _read_frame(self):
        assert self._sock is not None
        frame = protocol.read_frame_blocking(self._sock)
        if frame is None:
            raise ReplicationError("backup closed the replication link")
        return frame

    @staticmethod
    def _decode_ack(frame) -> ReplicateAck:
        if frame.type == protocol.MSG_ERROR:
            raise ReplicationError(
                f"backup refused: {protocol.decode_text(frame.payload)}"
            )
        if frame.type != protocol.MSG_REPLICATE_OK:
            raise ReplicationError(
                f"unexpected replication response type {frame.type:#x}"
            )
        return protocol.decode_replicate_ack(frame.payload)

    # -- introspection --------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Health-endpoint view of the link."""
        return {
            "alive": self.alive,
            "ack_mode": self.config.ack_mode,
            "shipped": list(self.shipped),
            "acked": list(self.acked),
            "bootstraps": self.stats.bootstraps,
            "batches_shipped": self.stats.batches_shipped,
            "records_shipped": self.stats.records_shipped,
            "failures": self.stats.failures,
        }


# -- backup side ---------------------------------------------------------


def _epoch_name(index: int) -> str:
    return f"{EPOCH_PREFIX}{index:04d}"


def epoch_dirs(directory: PathLike) -> List[Path]:
    """Existing bootstrap epochs under a backup directory, oldest first."""
    root = Path(directory)
    if not root.is_dir():
        return []
    return sorted(
        path for path in root.iterdir()
        if path.is_dir() and path.name.startswith(EPOCH_PREFIX)
    )


def latest_epoch_dir(directory: PathLike) -> Optional[Path]:
    """The newest epoch (the one a post-crash restore should replay)."""
    epochs = epoch_dirs(directory)
    return epochs[-1] if epochs else None


@dataclass
class PromotionReport:
    """What one backup promotion did (the admin-failover response body)."""

    epoch: str
    shards: int
    watermarks: List[int]
    fingerprints_verified: bool
    reason: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "epoch": self.epoch,
            "shards": self.shards,
            "watermarks": list(self.watermarks),
            "fingerprints_verified": self.fingerprints_verified,
            "reason": self.reason,
        }


@dataclass
class BackupReplica:
    """Backup side: bootstrap, follow the journal stream, promote.

    Each bootstrap starts a fresh *epoch* directory (``epoch-<n>``)
    holding one ``shard-<i>`` state directory per shard plus the usual
    ``serve.json`` topology metadata — so a backup killed at any point
    restarts through the ordinary :meth:`ShardSet.restore` over the
    newest epoch, replaying its local journal exactly like a primary
    would.
    """

    directory: Path
    checkpoint_every: int = 0
    sync_interval: int = 64
    role: str = ROLE_SYNCING
    shard_set: Optional[ShardSet] = None
    epoch_dir: Optional[Path] = None
    #: Highest primary journal seq applied, per shard.
    applied_seqs: List[int] = field(default_factory=list)
    #: Last control fingerprint shipped (and verified) per shard.
    fingerprints: List[Optional[str]] = field(default_factory=list)
    #: Monotonic time of the last frame from the primary.
    last_feed: float = field(default_factory=time.monotonic)
    records_applied: int = 0

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)

    # -- protocol entry points ------------------------------------------

    def handle(self, data: Dict) -> ReplicateAck:
        """Dispatch one decoded MSG_REPLICATE payload."""
        self.last_feed = time.monotonic()
        kind = data["kind"]
        if kind == protocol.REPLICATE_BOOTSTRAP:
            return self._bootstrap(data)
        if kind == protocol.REPLICATE_RECORDS:
            return self._apply_records(data)
        return ReplicateAck(-1, max(self.applied_seqs, default=0))

    def _bootstrap(self, data: Dict) -> ReplicateAck:
        from repro.core.system import ClueSystem

        try:
            boundaries = [int(b) for b in data["boundaries"]]
            shard_entries = list(data["shards"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ReplicationError(f"malformed bootstrap: {exc!r}") from exc
        epochs = epoch_dirs(self.directory)
        index = 1
        if epochs:
            index = int(epochs[-1].name[len(EPOCH_PREFIX):]) + 1
        epoch = self.directory / _epoch_name(index)
        workers: List[ShardWorker] = []
        applied: List[int] = [0] * len(shard_entries)
        fingerprints: List[Optional[str]] = [None] * len(shard_entries)
        for entry in shard_entries:
            shard_index = int(entry["index"])
            try:
                system = ClueSystem.from_state(entry["state"])
            except ValueError as exc:
                raise ReplicationError(
                    f"shard {shard_index} bootstrap state rejected: {exc}"
                ) from exc
            shipped_fp = entry.get("fingerprint")
            if shipped_fp is not None:
                local_fp = system.control_fingerprint()
                if local_fp != shipped_fp:
                    raise ReplicationError(
                        f"shard {shard_index} bootstrap fingerprint "
                        f"mismatch: primary {shipped_fp}, rebuilt {local_fp}"
                    )
                fingerprints[shard_index] = shipped_fp
            manager = PersistenceManager(
                system,
                epoch / f"shard-{shard_index}",
                checkpoint_every=self.checkpoint_every,
                sync_interval=self.sync_interval,
            )
            workers.append(ShardWorker(shard_index, system, manager))
            applied[shard_index] = int(entry["seq"])
        workers.sort(key=lambda worker: worker.index)
        shard_set = ShardSet(ShardRouter(boundaries), workers)
        shard_set._write_meta(epoch)
        self.shard_set = shard_set
        self.epoch_dir = epoch
        self.applied_seqs = applied
        self.fingerprints = fingerprints
        self.role = ROLE_FOLLOWING
        return ReplicateAck(-1, max(applied, default=0))

    def _apply_records(self, data: Dict) -> ReplicateAck:
        if self.shard_set is None or self.role != ROLE_FOLLOWING:
            raise ReplicationError(
                f"record batch while {self.role} (bootstrap first)"
            )
        shard = int(data["shard"])
        if not 0 <= shard < len(self.shard_set.workers):
            raise ReplicationError(f"unknown shard {shard}")
        worker = self.shard_set.workers[shard]
        manager = worker.manager
        assert manager is not None
        for seq, kind, payload in data["records"]:
            seq = int(seq)
            if seq <= self.applied_seqs[shard]:
                continue  # duplicate delivery after a primary retry
            if seq != self.applied_seqs[shard] + 1:
                raise ReplicationError(
                    f"shard {shard}: journal gap "
                    f"({self.applied_seqs[shard]} -> {seq})"
                )
            self._apply_one(manager, kind, payload)
            self.applied_seqs[shard] = seq
            self.records_applied += 1
        shipped_fp = data.get("fingerprint")
        if shipped_fp is not None:
            local_fp = worker.system.control_fingerprint()
            if local_fp != shipped_fp:
                raise ReplicationError(
                    f"shard {shard} diverged at seq "
                    f"{self.applied_seqs[shard]}: primary {shipped_fp}, "
                    f"replica {local_fp}"
                )
            self.fingerprints[shard] = shipped_fp
        # The shipped batch must be durable *here* before the ack: a
        # quorum ack claims the update survives the loss of either side.
        manager.sync()
        return ReplicateAck(shard, self.applied_seqs[shard])

    @staticmethod
    def _apply_one(manager: PersistenceManager, kind: str, payload: str) -> None:
        if kind == "offer":
            manager.offer_update(codec.decode_message(payload))
        elif kind == "pump":
            manager.pump_updates(int(payload))
        elif kind == "apply":
            manager.apply_update(codec.decode_message(payload))
        elif kind == "drain":
            manager.drain_updates()
        elif kind == "flush":
            manager.flush_updates()
        elif kind in ("flush-auto", "checkpoint"):
            # Markers: auto-flushes recur inside the replayed pumps, and
            # checkpoint cadence is a local policy, not shipped state.
            pass
        else:
            raise ReplicationError(f"unknown journal record kind {kind!r}")

    # -- promotion ------------------------------------------------------

    def promote(self, reason: str = "admin failover") -> PromotionReport:
        """Verify the watermark fingerprints and take over the range.

        Raises :class:`ReplicationError` (leaving the replica in its
        previous role) when a shard's state does not match the last
        fingerprint the primary shipped — serving a diverged table would
        silently violate LPM equivalence, which is worse than staying a
        refusing backup.
        """
        if self.shard_set is None:
            raise ReplicationError("cannot promote before a bootstrap")
        if self.role == ROLE_PRIMARY:
            raise ReplicationError("already promoted")
        self.role = ROLE_PROMOTING
        verified = False
        try:
            for worker in self.shard_set.workers:
                expected = self.fingerprints[worker.index]
                if expected is None:
                    continue
                actual = worker.system.control_fingerprint()
                if actual != expected:
                    raise ReplicationError(
                        f"shard {worker.index} fingerprint {actual} does "
                        f"not match the shipped watermark {expected}"
                    )
                verified = True
        except ReplicationError:
            self.role = ROLE_FOLLOWING
            raise
        self.role = ROLE_PRIMARY
        assert self.epoch_dir is not None
        return PromotionReport(
            epoch=self.epoch_dir.name,
            shards=len(self.shard_set.workers),
            watermarks=list(self.applied_seqs),
            fingerprints_verified=verified,
            reason=reason,
        )

    # -- introspection --------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        return {
            "role": self.role,
            "epoch": self.epoch_dir.name if self.epoch_dir else None,
            "applied_seqs": list(self.applied_seqs),
            "records_applied": self.records_applied,
        }
