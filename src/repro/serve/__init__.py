"""The network serving plane: CLUE as a servable system.

``repro.serve`` turns the in-process reproduction into a line-rate-ish
TCP service: batched LPM lookups and durable route updates over a
length-prefixed binary protocol, answered by range-sharded
:class:`~repro.core.system.ClueSystem` workers with per-connection
backpressure and SIGTERM-clean graceful drain.  See DESIGN.md §11.

For high availability (DESIGN.md §12) a primary ships its committed
journal to a :class:`~repro.serve.replicate.BackupReplica`
(``--replicate-to`` / ``--backup``); clients wrap a
:class:`~repro.serve.router.ReplicaMap` in an :class:`HAClient` and
survive a primary kill transparently.  ``repro-clue chaos`` proves it.

Live resharding (DESIGN.md §14): a serving primary splits a hot shard
or merges cold neighbours **without stopping**, through the journaled
stage machine in :class:`~repro.serve.reshard.ReshardCoordinator`;
clients ride the cutover via epoch-carrying ``MSG_REDIRECT`` responses.

Multi-process serving (DESIGN.md §15): ``serve --workers processes``
runs one worker *process* per shard behind a
:class:`~repro.serve.procs.ProcessFront`, breaking the GIL ceiling that
caps in-process sharding; the client protocol is unchanged and the
journal layout stays restorable by a single process.
"""

from repro.serve.client import (
    FailoverError,
    HAClient,
    ReshardRedirect,
    ServeClient,
    ServeClientError,
    ServeTimeoutError,
    ServerBusyError,
)
from repro.serve.loadgen import (
    LoadReport,
    generate_batches,
    run_load,
    run_load_processes,
    split_batches,
)
from repro.serve.procs import (
    ProcessFront,
    ProcessSupervisor,
    WorkerError,
    WorkerSpec,
)
from repro.serve.protocol import ProtocolError, ReplicateAck, UpdateAck
from repro.serve.replicate import (
    BackupReplica,
    JournalShipper,
    PromotionReport,
    ReplicationConfig,
    ReplicationError,
)
from repro.serve.reshard import (
    MigrationState,
    ReshardCoordinator,
    ReshardError,
    choose_reshard,
    choose_reshard_from_loads,
    plan_merge,
    plan_split,
    resolve_reshard,
)
from repro.serve.router import (
    ReplicaEndpoint,
    ReplicaMap,
    ShardPlan,
    ShardRouter,
    plan_shards,
)
from repro.serve.server import ClueServer, ServeConfig, ServerThread
from repro.serve.shard import ShardSet, ShardWorker
from repro.serve.stats import ServeStats

__all__ = [
    "BackupReplica",
    "ClueServer",
    "FailoverError",
    "HAClient",
    "JournalShipper",
    "LoadReport",
    "MigrationState",
    "ProcessFront",
    "ProcessSupervisor",
    "PromotionReport",
    "ProtocolError",
    "ReplicaEndpoint",
    "ReplicaMap",
    "ReplicateAck",
    "ReplicationConfig",
    "ReplicationError",
    "ReshardCoordinator",
    "ReshardError",
    "ReshardRedirect",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "ServeStats",
    "ServeTimeoutError",
    "ServerBusyError",
    "ServerThread",
    "ShardPlan",
    "ShardRouter",
    "ShardSet",
    "ShardWorker",
    "UpdateAck",
    "WorkerError",
    "WorkerSpec",
    "choose_reshard",
    "choose_reshard_from_loads",
    "generate_batches",
    "plan_merge",
    "plan_shards",
    "plan_split",
    "resolve_reshard",
    "run_load",
    "run_load_processes",
    "split_batches",
]
