"""The network serving plane: CLUE as a servable system.

``repro.serve`` turns the in-process reproduction into a line-rate-ish
TCP service: batched LPM lookups and durable route updates over a
length-prefixed binary protocol, answered by range-sharded
:class:`~repro.core.system.ClueSystem` workers with per-connection
backpressure and SIGTERM-clean graceful drain.  See DESIGN.md §11.
"""

from repro.serve.client import ServeClient, ServeClientError, ServerBusyError
from repro.serve.loadgen import LoadReport, generate_batches, run_load
from repro.serve.protocol import ProtocolError, UpdateAck
from repro.serve.router import ShardPlan, ShardRouter, plan_shards
from repro.serve.server import ClueServer, ServeConfig, ServerThread
from repro.serve.shard import ShardSet, ShardWorker
from repro.serve.stats import ServeStats

__all__ = [
    "ClueServer",
    "LoadReport",
    "ProtocolError",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "ServeStats",
    "ServerBusyError",
    "ServerThread",
    "ShardPlan",
    "ShardRouter",
    "ShardSet",
    "ShardWorker",
    "UpdateAck",
    "generate_batches",
    "plan_shards",
    "run_load",
]
