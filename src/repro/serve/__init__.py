"""The network serving plane: CLUE as a servable system.

``repro.serve`` turns the in-process reproduction into a line-rate-ish
TCP service: batched LPM lookups and durable route updates over a
length-prefixed binary protocol, answered by range-sharded
:class:`~repro.core.system.ClueSystem` workers with per-connection
backpressure and SIGTERM-clean graceful drain.  See DESIGN.md §11.

For high availability (DESIGN.md §12) a primary ships its committed
journal to a :class:`~repro.serve.replicate.BackupReplica`
(``--replicate-to`` / ``--backup``); clients wrap a
:class:`~repro.serve.router.ReplicaMap` in an :class:`HAClient` and
survive a primary kill transparently.  ``repro-clue chaos`` proves it.
"""

from repro.serve.client import (
    FailoverError,
    HAClient,
    ServeClient,
    ServeClientError,
    ServeTimeoutError,
    ServerBusyError,
)
from repro.serve.loadgen import LoadReport, generate_batches, run_load
from repro.serve.protocol import ProtocolError, ReplicateAck, UpdateAck
from repro.serve.replicate import (
    BackupReplica,
    JournalShipper,
    PromotionReport,
    ReplicationConfig,
    ReplicationError,
)
from repro.serve.router import (
    ReplicaEndpoint,
    ReplicaMap,
    ShardPlan,
    ShardRouter,
    plan_shards,
)
from repro.serve.server import ClueServer, ServeConfig, ServerThread
from repro.serve.shard import ShardSet, ShardWorker
from repro.serve.stats import ServeStats

__all__ = [
    "BackupReplica",
    "ClueServer",
    "FailoverError",
    "HAClient",
    "JournalShipper",
    "LoadReport",
    "PromotionReport",
    "ProtocolError",
    "ReplicaEndpoint",
    "ReplicaMap",
    "ReplicateAck",
    "ReplicationConfig",
    "ReplicationError",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "ServeStats",
    "ServeTimeoutError",
    "ServerBusyError",
    "ServerThread",
    "ShardPlan",
    "ShardRouter",
    "ShardSet",
    "ShardWorker",
    "UpdateAck",
    "generate_batches",
    "plan_shards",
    "run_load",
]
