"""Shard workers: one :class:`ClueSystem` per address-range shard.

A :class:`ShardSet` is the serving plane's whole forwarding state — the
routing of batches to shards, the per-shard CLUE systems, and (in
durable mode) one :class:`PersistenceManager` per shard journaling into
``<dir>/shard-<i>``.  It is deliberately synchronous and deterministic:
the network server calls into it from a single event loop, and the
crash-drill reference run calls the *same* methods with the same batches
— byte-identical state fingerprints on both sides come from sharing this
code path, not from careful bookkeeping in two places.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import SystemConfig
from repro.core.system import ClueSystem
from repro.net.prefix import Prefix
from repro.persist.manager import PersistenceManager
from repro.serve.protocol import UpdateAck
from repro.serve.router import ShardRouter, plan_shards
from repro.workload.updategen import UpdateMessage

Route = Tuple[Prefix, int]
PathLike = Union[str, Path]

#: Metadata file written next to the per-shard state directories.
META_FILE = "serve.json"
META_VERSION = 1


class ShardWorker:
    """One shard: a CLUE system plus its optional durability manager."""

    def __init__(
        self,
        index: int,
        system: ClueSystem,
        manager: Optional[PersistenceManager] = None,
    ) -> None:
        self.index = index
        self.system = system
        self.manager = manager
        #: Per-range load accounting: how many lookup addresses and
        #: update messages this shard's range has absorbed.  The reshard
        #: controller's split/merge decisions read these, so they count
        #: *deliveries to this range*, not wire requests.
        self.lookup_hits = 0
        self.update_hits = 0

    @property
    def durable(self) -> bool:
        return self.manager is not None

    def lookup_batch(self, addresses: Sequence[int]) -> List[Optional[int]]:
        self.lookup_hits += len(addresses)
        return self.system.process_lookups(addresses)

    def update_batch(
        self,
        messages: Sequence[UpdateMessage],
        pump_budget: Optional[int] = None,
    ) -> UpdateAck:
        """Offer a batch through the backpressured path; pump once.

        Durable shards group-commit (journal + single fsync) before
        returning, so the resulting ack may be forwarded to the client
        as-is.  The pump budget defaults to the batch size; a smaller
        budget (``--pump-budget``) lets the queue back up — that is how
        the crash drill holds the scheduler in storm mode.
        """
        messages = list(messages)
        self.update_hits += len(messages)
        if self.manager is not None:
            accepted, shed, applied = self.manager.commit_batch(
                messages, budget=pump_budget
            )
            return UpdateAck(accepted, shed, applied, durable=True)
        accepted = 0
        for message in messages:
            if self.system.offer_update(message):
                accepted += 1
        budget = pump_budget if pump_budget is not None else max(1, len(messages))
        applied = self.system.pump_updates(budget)
        return UpdateAck(accepted, len(messages) - accepted, applied, False)

    def checkpoint(self) -> Optional[str]:
        if self.manager is None:
            return None
        return str(self.manager.checkpoint())

    def report_dict(self) -> Dict[str, object]:
        report = self.system.report().as_dict()
        report["shard"] = self.index
        report["durable"] = self.durable
        report["lookup_hits"] = self.lookup_hits
        report["update_hits"] = self.update_hits
        return report

    def flush(self) -> int:
        """Drain queued updates and deferred diffs, *keep serving*.

        The quiesce point the campaign oracles need: after a flush the
        engine state is a pure function of the acked update stream (no
        update half-applied in the queue), but — unlike :meth:`drain` —
        the shard stays open for more traffic.  Durable shards journal
        the drain, so replay reproduces the same quiesce boundary.
        """
        if self.manager is not None:
            applied = self.manager.drain_updates()
            self.manager.sync()
            return applied
        return self.system.drain_updates()

    def drain(self) -> int:
        """Flush everything queued or deferred; durable shards also
        checkpoint and close (part of graceful shutdown)."""
        if self.manager is not None:
            applied = self.manager.drain_updates()
            self.manager.checkpoint()
            self.manager.close()
            return applied
        return self.system.drain_updates()


class ShardSet:
    """All shards of one serving instance, plus the router between them."""

    def __init__(self, router: ShardRouter, workers: List[ShardWorker]) -> None:
        if len(workers) != router.shard_count:
            raise ValueError(
                f"{len(workers)} workers for {router.shard_count} shards"
            )
        self.router = router
        self.workers = workers

    # -- construction ---------------------------------------------------

    @classmethod
    def build(
        cls,
        routes: Sequence[Route],
        shard_count: int = 1,
        config: Optional[SystemConfig] = None,
        journal_dir: Optional[PathLike] = None,
        checkpoint_every: int = 0,
        sync_interval: int = 64,
    ) -> "ShardSet":
        """Shard a routing table and build one CLUE system per shard.

        With ``journal_dir`` each shard journals into its own
        ``shard-<i>`` subdirectory and a ``serve.json`` metadata file
        records the sharding so :meth:`restore` can rebuild the same
        topology without the original table.
        """
        config = config or SystemConfig()
        plan = plan_shards(routes, shard_count, mode=config.compression_mode)
        workers = []
        for index, subset in enumerate(plan.routes_per_shard):
            system = ClueSystem(subset, config)
            manager = None
            if journal_dir is not None:
                manager = PersistenceManager(
                    system,
                    Path(journal_dir) / f"shard-{index}",
                    checkpoint_every=checkpoint_every,
                    sync_interval=sync_interval,
                )
            workers.append(ShardWorker(index, system, manager))
        shard_set = cls(plan.router, workers)
        if journal_dir is not None:
            shard_set._write_meta(Path(journal_dir))
        return shard_set

    @property
    def epoch(self) -> int:
        """The topology epoch this shard set serves (bumped by reshard)."""
        return self.router.epoch

    def _write_meta(self, directory: Path) -> None:
        directory.mkdir(parents=True, exist_ok=True)
        meta = {
            "version": META_VERSION,
            "shards": len(self.workers),
            "boundaries": self.router.boundaries,
            "epoch": self.router.epoch,
        }
        (directory / META_FILE).write_text(
            json.dumps(meta, sort_keys=True), encoding="ascii"
        )

    @classmethod
    def restore(
        cls,
        journal_dir: PathLike,
        config: Optional[SystemConfig] = None,
        checkpoint_every: int = 0,
        sync_interval: int = 64,
    ) -> Tuple["ShardSet", List[object]]:
        """Rebuild every shard from its journal + snapshots.

        Returns ``(shard_set, recovery_reports)``; shard topology comes
        from ``serve.json``, per-shard state from the usual snapshot +
        journal-replay recovery of :class:`PersistenceManager`.

        A directory holding a ``reshard.json`` migration journal is
        resolved first: a crash before the cutover commit rolls the
        partial epoch back, a crash after it rolls forward into the new
        epoch directory — either way restore lands on exactly one
        committed topology.
        """
        from repro.serve.reshard import resolve_reshard

        directory = resolve_reshard(Path(journal_dir))
        meta_path = directory / META_FILE
        if not meta_path.is_file():
            raise ValueError(f"no {META_FILE} under {directory}")
        try:
            meta = json.loads(meta_path.read_text(encoding="ascii"))
            version = int(meta["version"])
            shard_count = int(meta["shards"])
            boundaries = [int(b) for b in meta["boundaries"]]
            epoch = int(meta.get("epoch", 1))
        except (KeyError, TypeError, json.JSONDecodeError) as exc:
            raise ValueError(f"malformed {meta_path}: {exc!r}") from exc
        if version != META_VERSION:
            raise ValueError(
                f"{meta_path} is v{version}; this build reads v{META_VERSION}"
            )
        workers = []
        reports = []
        for index in range(shard_count):
            manager, report = PersistenceManager.restore(
                directory / f"shard-{index}",
                config=config,
                checkpoint_every=checkpoint_every,
                sync_interval=sync_interval,
            )
            workers.append(ShardWorker(index, manager.system, manager))
            reports.append(report)
        return cls(ShardRouter(boundaries, epoch), workers), reports

    # -- data plane -----------------------------------------------------

    def lookup(self, addresses: Sequence[int]) -> List[Optional[int]]:
        """Answer one batch, routing each address to its home shard.

        Results come back in request order regardless of how the batch
        scattered over shards.
        """
        if len(self.workers) == 1:
            return self.workers[0].lookup_batch(addresses)
        shard_of = self.router.shard_of
        buckets: List[List[int]] = [[] for _ in self.workers]
        positions: List[List[int]] = [[] for _ in self.workers]
        for position, address in enumerate(addresses):
            shard = shard_of(address)
            buckets[shard].append(address)
            positions[shard].append(position)
        results: List[Optional[int]] = [None] * len(addresses)
        for shard, worker in enumerate(self.workers):
            if not buckets[shard]:
                continue
            for position, hop in zip(
                positions[shard], worker.lookup_batch(buckets[shard])
            ):
                results[position] = hop
        return results

    # -- control plane --------------------------------------------------

    def update(
        self,
        messages: Sequence[UpdateMessage],
        pump_budget: Optional[int] = None,
    ) -> UpdateAck:
        """Route one update batch to the shards each prefix overlaps.

        Shards are visited in index order with each shard's sub-batch in
        arrival order — a deterministic function of the batch, which the
        crash drill relies on.  A boundary-spanning prefix is delivered
        to every covering shard, so the aggregated counters are
        per-shard deliveries (same convention as the unsharded system's
        chip replication).
        """
        if len(self.workers) == 1:
            return self.workers[0].update_batch(messages, pump_budget)
        batches: List[List[UpdateMessage]] = [[] for _ in self.workers]
        for message in messages:
            for shard in self.router.shards_covering(message.prefix):
                batches[shard].append(message)
        accepted = shed = applied = 0
        durable = True
        for shard, worker in enumerate(self.workers):
            if not batches[shard]:
                continue
            ack = worker.update_batch(batches[shard], pump_budget)
            accepted += ack.accepted
            shed += ack.shed
            applied += ack.applied
            durable = durable and ack.durable
        return UpdateAck(accepted, shed, applied, durable)

    # -- admin ----------------------------------------------------------

    @property
    def durable(self) -> bool:
        return all(worker.durable for worker in self.workers)

    def shard_fingerprints(self) -> List[str]:
        return [worker.system.state_fingerprint() for worker in self.workers]

    def fingerprint(self) -> str:
        """One digest over every shard's state fingerprint, in order."""
        digest = hashlib.sha256()
        for fingerprint in self.shard_fingerprints():
            digest.update(fingerprint.encode("ascii"))
            digest.update(b"\n")
        return digest.hexdigest()

    def checkpoint(self) -> List[Optional[str]]:
        return [worker.checkpoint() for worker in self.workers]

    def stats(self) -> List[Dict[str, object]]:
        boundaries = self.router.boundaries
        rows = []
        for worker in self.workers:
            row = worker.report_dict()
            start = boundaries[worker.index]
            end = (
                boundaries[worker.index + 1]
                if worker.index + 1 < len(boundaries)
                else 1 << 32
            )
            row["range"] = [start, end]
            rows.append(row)
        return rows

    def flush(self) -> int:
        """Quiesce every shard without closing it (see ShardWorker.flush)."""
        return sum(worker.flush() for worker in self.workers)

    def drain(self) -> int:
        """Flush every shard (queued updates, deferred diffs, journals)."""
        return sum(worker.drain() for worker in self.workers)
