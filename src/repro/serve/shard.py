"""Shard workers: one :class:`ClueSystem` per address-range shard.

A :class:`ShardSet` is the serving plane's whole forwarding state — the
routing of batches to shards, the per-shard CLUE systems, and (in
durable mode) one :class:`PersistenceManager` per shard journaling into
``<dir>/shard-<i>``.  It is deliberately synchronous and deterministic:
the network server calls into it from a single event loop, and the
crash-drill reference run calls the *same* methods with the same batches
— byte-identical state fingerprints on both sides come from sharing this
code path, not from careful bookkeeping in two places.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import SystemConfig
from repro.core.system import ClueSystem
from repro.net.prefix import Prefix
from repro.persist.manager import PersistenceManager
from repro.serve.protocol import UpdateAck
from repro.serve.router import ShardRouter, plan_shards
from repro.workload.updategen import UpdateMessage

Route = Tuple[Prefix, int]
PathLike = Union[str, Path]

#: Metadata file written next to the per-shard state directories.
META_FILE = "serve.json"
META_VERSION = 1

#: One past the last IPv4 address: the open upper bound of the space.
ADDRESS_SPACE = 1 << 32


def combine_fingerprints(fingerprints: Sequence[str]) -> str:
    """One digest over per-shard state fingerprints, in shard order.

    This is *the* cross-process fingerprint contract: the parent front
    combines fingerprints it gathered from worker processes with exactly
    the bytes :meth:`ShardSet.fingerprint` hashes in-process, so a
    single-process restore of the shared journal directory reproduces
    the multi-process serving fingerprint byte for byte.
    """
    digest = hashlib.sha256()
    for fingerprint in fingerprints:
        digest.update(fingerprint.encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()


class ShardWorker:
    """One shard: a CLUE system plus its optional durability manager.

    ``span`` is the shard's global address range ``[start, end)``.  It
    matters when the worker is hosted alone in its own process: the
    local router only knows one shard, so the global range (and the
    global ``index``) must travel with the worker for stats rows and
    reshard policy to stay topology-accurate.
    """

    def __init__(
        self,
        index: int,
        system: ClueSystem,
        manager: Optional[PersistenceManager] = None,
        span: Optional[Tuple[int, int]] = None,
    ) -> None:
        self.index = index
        self.system = system
        self.manager = manager
        self.span = span
        #: Per-range load accounting: how many lookup addresses and
        #: update messages this shard's range has absorbed.  The reshard
        #: controller's split/merge decisions read these, so they count
        #: *deliveries to this range*, not wire requests.
        self.lookup_hits = 0
        self.update_hits = 0

    @property
    def durable(self) -> bool:
        return self.manager is not None

    def lookup_batch(self, addresses: Sequence[int]) -> List[Optional[int]]:
        self.lookup_hits += len(addresses)
        return self.system.process_lookups(addresses)

    def update_batch(
        self,
        messages: Sequence[UpdateMessage],
        pump_budget: Optional[int] = None,
    ) -> UpdateAck:
        """Offer a batch through the backpressured path; pump once.

        Durable shards group-commit (journal + single fsync) before
        returning, so the resulting ack may be forwarded to the client
        as-is.  The pump budget defaults to the batch size; a smaller
        budget (``--pump-budget``) lets the queue back up — that is how
        the crash drill holds the scheduler in storm mode.
        """
        messages = list(messages)
        self.update_hits += len(messages)
        if self.manager is not None:
            accepted, shed, applied = self.manager.commit_batch(
                messages, budget=pump_budget
            )
            return UpdateAck(accepted, shed, applied, durable=True)
        accepted = 0
        for message in messages:
            if self.system.offer_update(message):
                accepted += 1
        budget = pump_budget if pump_budget is not None else max(1, len(messages))
        applied = self.system.pump_updates(budget)
        return UpdateAck(accepted, len(messages) - accepted, applied, False)

    def checkpoint(self) -> Optional[str]:
        if self.manager is None:
            return None
        return str(self.manager.checkpoint())

    def report_dict(self) -> Dict[str, object]:
        report = self.system.report().as_dict()
        report["shard"] = self.index
        report["durable"] = self.durable
        report["lookup_hits"] = self.lookup_hits
        report["update_hits"] = self.update_hits
        return report

    def flush(self) -> int:
        """Drain queued updates and deferred diffs, *keep serving*.

        The quiesce point the campaign oracles need: after a flush the
        engine state is a pure function of the acked update stream (no
        update half-applied in the queue), but — unlike :meth:`drain` —
        the shard stays open for more traffic.  Durable shards journal
        the drain, so replay reproduces the same quiesce boundary.
        """
        if self.manager is not None:
            applied = self.manager.drain_updates()
            self.manager.sync()
            return applied
        return self.system.drain_updates()

    def drain(self) -> int:
        """Flush everything queued or deferred; durable shards also
        checkpoint and close (part of graceful shutdown)."""
        if self.manager is not None:
            applied = self.manager.drain_updates()
            self.manager.checkpoint()
            self.manager.close()
            return applied
        return self.system.drain_updates()


class ShardSet:
    """All shards of one serving instance, plus the router between them."""

    def __init__(self, router: ShardRouter, workers: List[ShardWorker]) -> None:
        if len(workers) != router.shard_count:
            raise ValueError(
                f"{len(workers)} workers for {router.shard_count} shards"
            )
        self.router = router
        self.workers = workers

    # -- construction ---------------------------------------------------

    @classmethod
    def build(
        cls,
        routes: Sequence[Route],
        shard_count: int = 1,
        config: Optional[SystemConfig] = None,
        journal_dir: Optional[PathLike] = None,
        checkpoint_every: int = 0,
        sync_interval: int = 64,
    ) -> "ShardSet":
        """Shard a routing table and build one CLUE system per shard.

        With ``journal_dir`` each shard journals into its own
        ``shard-<i>`` subdirectory and a ``serve.json`` metadata file
        records the sharding so :meth:`restore` can rebuild the same
        topology without the original table.
        """
        config = config or SystemConfig()
        plan = plan_shards(routes, shard_count, mode=config.compression_mode)
        workers = []
        for index, subset in enumerate(plan.routes_per_shard):
            system = ClueSystem(subset, config)
            manager = None
            if journal_dir is not None:
                manager = PersistenceManager(
                    system,
                    Path(journal_dir) / f"shard-{index}",
                    checkpoint_every=checkpoint_every,
                    sync_interval=sync_interval,
                )
            workers.append(ShardWorker(index, system, manager))
        shard_set = cls(plan.router, workers)
        if journal_dir is not None:
            shard_set._write_meta(Path(journal_dir))
        return shard_set

    @property
    def epoch(self) -> int:
        """The topology epoch this shard set serves (bumped by reshard)."""
        return self.router.epoch

    def _write_meta(self, directory: Path) -> None:
        self.write_meta(
            directory,
            shards=len(self.workers),
            boundaries=self.router.boundaries,
            epoch=self.router.epoch,
        )

    @staticmethod
    def write_meta(
        directory: PathLike,
        shards: int,
        boundaries: Sequence[int],
        epoch: int = 1,
        extra: Optional[Dict[str, object]] = None,
    ) -> None:
        """Write ``serve.json``; ``extra`` adds advisory keys.

        :meth:`read_meta` only consumes the four required keys, so extra
        keys (the multi-process front records its worker endpoints here)
        never break an older reader.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        meta: Dict[str, object] = {
            "version": META_VERSION,
            "shards": shards,
            "boundaries": list(boundaries),
            "epoch": epoch,
        }
        if extra:
            meta.update(extra)
        (directory / META_FILE).write_text(
            json.dumps(meta, sort_keys=True), encoding="ascii"
        )

    @staticmethod
    def read_meta(directory: PathLike) -> Dict[str, object]:
        """Parse ``serve.json``: the topology a journal directory holds."""
        meta_path = Path(directory) / META_FILE
        if not meta_path.is_file():
            raise ValueError(f"no {META_FILE} under {directory}")
        try:
            meta = json.loads(meta_path.read_text(encoding="ascii"))
            parsed: Dict[str, object] = {
                "version": int(meta["version"]),
                "shards": int(meta["shards"]),
                "boundaries": [int(b) for b in meta["boundaries"]],
                "epoch": int(meta.get("epoch", 1)),
            }
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            raise ValueError(f"malformed {meta_path}: {exc!r}") from exc
        if parsed["version"] != META_VERSION:
            raise ValueError(
                f"{meta_path} is v{parsed['version']}; "
                f"this build reads v{META_VERSION}"
            )
        return parsed

    @classmethod
    def restore(
        cls,
        journal_dir: PathLike,
        config: Optional[SystemConfig] = None,
        checkpoint_every: int = 0,
        sync_interval: int = 64,
    ) -> Tuple["ShardSet", List[object]]:
        """Rebuild every shard from its journal + snapshots.

        Returns ``(shard_set, recovery_reports)``; shard topology comes
        from ``serve.json``, per-shard state from the usual snapshot +
        journal-replay recovery of :class:`PersistenceManager`.

        A directory holding a ``reshard.json`` migration journal is
        resolved first: a crash before the cutover commit rolls the
        partial epoch back, a crash after it rolls forward into the new
        epoch directory — either way restore lands on exactly one
        committed topology.
        """
        from repro.serve.reshard import resolve_reshard

        directory = resolve_reshard(Path(journal_dir))
        meta = cls.read_meta(directory)
        shard_count = int(meta["shards"])
        boundaries = list(meta["boundaries"])  # type: ignore[arg-type]
        epoch = int(meta["epoch"])
        workers = []
        reports = []
        for index in range(shard_count):
            manager, report = PersistenceManager.restore(
                directory / f"shard-{index}",
                config=config,
                checkpoint_every=checkpoint_every,
                sync_interval=sync_interval,
            )
            workers.append(ShardWorker(index, manager.system, manager))
            reports.append(report)
        return cls(ShardRouter(boundaries, epoch), workers), reports

    # -- single-shard worker processes ----------------------------------

    @staticmethod
    def _worker_span(boundaries: Sequence[int], index: int) -> Tuple[int, int]:
        end = (
            boundaries[index + 1]
            if index + 1 < len(boundaries)
            else ADDRESS_SPACE
        )
        return (boundaries[index], end)

    @classmethod
    def build_worker(
        cls,
        routes: Sequence[Route],
        shard_count: int,
        index: int,
        config: Optional[SystemConfig] = None,
        journal_dir: Optional[PathLike] = None,
        checkpoint_every: int = 0,
        sync_interval: int = 64,
    ) -> "ShardSet":
        """Build shard ``index`` of an ``shard_count``-way plan, alone.

        The multi-process serving plane spawns one process per shard;
        each re-derives the *identical* plan (:func:`plan_shards` is
        deterministic over the same table), keeps only its own subset,
        and journals into the shared directory's ``shard-<index>`` — the
        exact layout :meth:`build` would have written, so a plain
        single-process :meth:`restore` of the whole directory rebuilds
        the same state.  The parent owns ``serve.json``; a worker never
        writes it (two workers racing the metadata file would be the
        only nondeterminism in the plan).
        """
        if not 0 <= index < shard_count:
            raise ValueError(
                f"shard index {index} out of range for {shard_count} shard(s)"
            )
        config = config or SystemConfig()
        plan = plan_shards(routes, shard_count, mode=config.compression_mode)
        system = ClueSystem(plan.routes_per_shard[index], config)
        manager = None
        if journal_dir is not None:
            manager = PersistenceManager(
                system,
                Path(journal_dir) / f"shard-{index}",
                checkpoint_every=checkpoint_every,
                sync_interval=sync_interval,
            )
        worker = ShardWorker(
            index,
            system,
            manager,
            span=cls._worker_span(plan.router.boundaries, index),
        )
        return cls(ShardRouter([0], epoch=plan.router.epoch), [worker])

    @classmethod
    def restore_worker(
        cls,
        journal_dir: PathLike,
        index: int,
        config: Optional[SystemConfig] = None,
        checkpoint_every: int = 0,
        sync_interval: int = 64,
    ) -> Tuple["ShardSet", List[object]]:
        """Restore shard ``index`` alone from a shared journal directory.

        Topology comes from ``serve.json`` exactly like :meth:`restore`,
        but only this shard's journal is replayed.  Unlike
        :meth:`restore` this does **not** resolve a pending reshard
        journal: concurrent workers racing the rollback would corrupt
        it, so the supervisor resolves once before spawning anyone.
        """
        directory = Path(journal_dir)
        meta = cls.read_meta(directory)
        shard_count = int(meta["shards"])
        boundaries = list(meta["boundaries"])  # type: ignore[arg-type]
        if not 0 <= index < shard_count:
            raise ValueError(
                f"shard index {index} out of range: {directory} holds "
                f"{shard_count} shard(s)"
            )
        manager, report = PersistenceManager.restore(
            directory / f"shard-{index}",
            config=config,
            checkpoint_every=checkpoint_every,
            sync_interval=sync_interval,
        )
        worker = ShardWorker(
            index,
            manager.system,
            manager,
            span=cls._worker_span(boundaries, index),
        )
        return (
            cls(ShardRouter([0], epoch=int(meta["epoch"])), [worker]),
            [report],
        )

    # -- data plane -----------------------------------------------------

    def lookup(self, addresses: Sequence[int]) -> List[Optional[int]]:
        """Answer one batch, routing each address to its home shard.

        Results come back in request order regardless of how the batch
        scattered over shards.
        """
        if len(self.workers) == 1:
            return self.workers[0].lookup_batch(addresses)
        shard_of = self.router.shard_of
        buckets: List[List[int]] = [[] for _ in self.workers]
        positions: List[List[int]] = [[] for _ in self.workers]
        for position, address in enumerate(addresses):
            shard = shard_of(address)
            buckets[shard].append(address)
            positions[shard].append(position)
        results: List[Optional[int]] = [None] * len(addresses)
        for shard, worker in enumerate(self.workers):
            if not buckets[shard]:
                continue
            for position, hop in zip(
                positions[shard], worker.lookup_batch(buckets[shard])
            ):
                results[position] = hop
        return results

    # -- control plane --------------------------------------------------

    def update(
        self,
        messages: Sequence[UpdateMessage],
        pump_budget: Optional[int] = None,
    ) -> UpdateAck:
        """Route one update batch to the shards each prefix overlaps.

        Shards are visited in index order with each shard's sub-batch in
        arrival order — a deterministic function of the batch, which the
        crash drill relies on.  A boundary-spanning prefix is delivered
        to every covering shard, so the aggregated counters are
        per-shard deliveries (same convention as the unsharded system's
        chip replication).
        """
        if len(self.workers) == 1:
            return self.workers[0].update_batch(messages, pump_budget)
        batches: List[List[UpdateMessage]] = [[] for _ in self.workers]
        for message in messages:
            for shard in self.router.shards_covering(message.prefix):
                batches[shard].append(message)
        accepted = shed = applied = 0
        durable = True
        for shard, worker in enumerate(self.workers):
            if not batches[shard]:
                continue
            ack = worker.update_batch(batches[shard], pump_budget)
            accepted += ack.accepted
            shed += ack.shed
            applied += ack.applied
            durable = durable and ack.durable
        return UpdateAck(accepted, shed, applied, durable)

    # -- admin ----------------------------------------------------------

    @property
    def durable(self) -> bool:
        return all(worker.durable for worker in self.workers)

    def shard_fingerprints(self) -> List[str]:
        return [worker.system.state_fingerprint() for worker in self.workers]

    def fingerprint(self) -> str:
        """One digest over every shard's state fingerprint, in order."""
        return combine_fingerprints(self.shard_fingerprints())

    def checkpoint(self) -> List[Optional[str]]:
        return [worker.checkpoint() for worker in self.workers]

    def stats(self) -> List[Dict[str, object]]:
        boundaries = self.router.boundaries
        rows = []
        for worker in self.workers:
            row = worker.report_dict()
            if worker.span is not None:
                # Worker-process mode: the local router is single-shard,
                # so the global range travels on the worker itself.
                start, end = worker.span
            else:
                start, end = self._worker_span(boundaries, worker.index)
            row["range"] = [start, end]
            rows.append(row)
        return rows

    def flush(self) -> int:
        """Quiesce every shard without closing it (see ShardWorker.flush)."""
        return sum(worker.flush() for worker in self.workers)

    def drain(self) -> int:
        """Flush every shard (queued updates, deferred diffs, journals)."""
        return sum(worker.drain() for worker in self.workers)
