"""Wire protocol of the serving plane (see DESIGN.md §11).

Every message travels in one length-prefixed binary frame::

    u32  length      payload size + 5 (type byte + request id), big-endian
    u8   type        message type (MSG_* constants)
    u32  request_id  caller-chosen correlation id, echoed in the response
    ...  payload     type-specific body

Data-plane payloads are packed arrays (``struct``, network byte order) so
a 1024-address lookup batch is one 4 KiB frame, not 1024 round trips —
the batching that lets a python loopback server clear 100k lookups/sec.
Admin payloads are UTF-8 JSON: they are rare, and the flexibility is
worth more than the bytes.

The module is deliberately transport-agnostic: frame codecs work on
``bytes``, with one async reader for the server (``asyncio`` streams)
and one blocking reader for the pure-python client (raw sockets).
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.prefix import Prefix
from repro.workload.updategen import UpdateKind, UpdateMessage

#: Hard cap on one frame's payload; a length beyond it means a corrupt or
#: hostile stream, not a big batch (1M lookups still fit in 4 MiB).
MAX_FRAME_BYTES = 16 * 1024 * 1024

_HEADER = struct.Struct("!IBI")  # length, type, request_id
#: One update record: kind, network, prefix length, next hop, timestamp.
_UPDATE_RECORD = struct.Struct("!BIBid")
#: accepted, shed, applied, durable, replicated
_UPDATE_ACK = struct.Struct("!IIIBB")

# -- message types ------------------------------------------------------

MSG_LOOKUP = 0x01
MSG_LOOKUP_OK = 0x02
MSG_UPDATE = 0x03
MSG_UPDATE_OK = 0x04
MSG_STATS = 0x10
MSG_HEALTH = 0x11
MSG_CHECKPOINT = 0x12
MSG_FINGERPRINT = 0x13
MSG_DRAIN = 0x14
MSG_FLUSH = 0x15
MSG_RESHARD = 0x16
MSG_ADMIN_OK = 0x1F
MSG_BUSY = 0x20
MSG_ERROR = 0x21
#: Response-only: the request reached a server whose topology epoch is
#: mid-cutover (or already moved on).  The JSON payload carries the new
#: epoch and a replica map so the client can refresh its routing and
#: retry instead of treating the refusal as an error.
MSG_REDIRECT = 0x22
MSG_REPLICATE = 0x30
MSG_REPLICATE_OK = 0x31
MSG_FAILOVER = 0x32

#: Requests a server accepts (everything else is answered MSG_ERROR).
REQUEST_TYPES = frozenset(
    (
        MSG_LOOKUP,
        MSG_UPDATE,
        MSG_STATS,
        MSG_HEALTH,
        MSG_CHECKPOINT,
        MSG_FINGERPRINT,
        MSG_DRAIN,
        MSG_FLUSH,
        MSG_RESHARD,
        MSG_REPLICATE,
        MSG_FAILOVER,
    )
)

#: Sentinel next hop meaning "no matching route" in MSG_LOOKUP_OK.
NO_ROUTE = -1


class ProtocolError(ValueError):
    """The byte stream violates the framing contract."""


@dataclass(frozen=True)
class Frame:
    """One decoded frame."""

    type: int
    request_id: int
    payload: bytes


# -- frame codec --------------------------------------------------------


def encode_frame(msg_type: int, request_id: int, payload: bytes = b"") -> bytes:
    """One wire-ready frame."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame cap"
        )
    return _HEADER.pack(len(payload) + 5, msg_type, request_id) + payload


def _decode_header(header: bytes) -> Tuple[int, int, int]:
    """Returns ``(payload_length, type, request_id)``."""
    length, msg_type, request_id = _HEADER.unpack(header)
    if length < 5:
        raise ProtocolError(f"frame length {length} below the 5-byte header")
    if length - 5 > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {length - 5} payload bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    return length - 5, msg_type, request_id


async def read_frame_async(reader) -> Optional[Frame]:
    """Read one frame from an asyncio stream; ``None`` on clean EOF.

    EOF in the *middle* of a frame is a protocol violation — the peer
    died mid-send — and raises :class:`ProtocolError`.
    """
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise ProtocolError("connection closed mid-header") from exc
        return None
    payload_length, msg_type, request_id = _decode_header(header)
    try:
        payload = await reader.readexactly(payload_length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-payload") from exc
    return Frame(msg_type, request_id, payload)


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count and not chunks:
                return b""
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame_blocking(sock: socket.socket) -> Optional[Frame]:
    """Read one frame from a blocking socket; ``None`` on clean EOF."""
    header = _recv_exactly(sock, _HEADER.size)
    if not header:
        return None
    payload_length, msg_type, request_id = _decode_header(header)
    payload = _recv_exactly(sock, payload_length) if payload_length else b""
    if payload_length and not payload:
        raise ProtocolError("connection closed mid-payload")
    return Frame(msg_type, request_id, payload)


# -- data-plane payloads ------------------------------------------------


def encode_addresses(addresses: Sequence[int]) -> bytes:
    """MSG_LOOKUP payload: packed u32 destination addresses."""
    return struct.pack(f"!{len(addresses)}I", *addresses)


def decode_addresses(payload: bytes) -> List[int]:
    if len(payload) % 4:
        raise ProtocolError(
            f"lookup payload of {len(payload)} bytes is not a u32 array"
        )
    return list(struct.unpack(f"!{len(payload) // 4}I", payload))


def encode_hops(hops: Sequence[Optional[int]]) -> bytes:
    """MSG_LOOKUP_OK payload: packed i32 next hops, ``-1`` = no route."""
    return struct.pack(
        f"!{len(hops)}i", *(NO_ROUTE if hop is None else hop for hop in hops)
    )


def decode_hops(payload: bytes) -> List[Optional[int]]:
    if len(payload) % 4:
        raise ProtocolError(
            f"lookup response of {len(payload)} bytes is not an i32 array"
        )
    return [
        None if hop == NO_ROUTE else hop
        for hop in struct.unpack(f"!{len(payload) // 4}i", payload)
    ]


def encode_updates(messages: Sequence[UpdateMessage]) -> bytes:
    """MSG_UPDATE payload: fixed-size records, one per message."""
    parts = []
    for message in messages:
        withdraw = message.kind is UpdateKind.WITHDRAW
        parts.append(
            _UPDATE_RECORD.pack(
                1 if withdraw else 0,
                message.prefix.network,
                message.prefix.length,
                NO_ROUTE if withdraw else message.next_hop,
                message.timestamp,
            )
        )
    return b"".join(parts)


def decode_updates(payload: bytes) -> List[UpdateMessage]:
    record = _UPDATE_RECORD
    if len(payload) % record.size:
        raise ProtocolError(
            f"update payload of {len(payload)} bytes is not a multiple "
            f"of the {record.size}-byte record"
        )
    messages = []
    for offset in range(0, len(payload), record.size):
        kind, network, length, hop, timestamp = record.unpack_from(
            payload, offset
        )
        if kind not in (0, 1):
            raise ProtocolError(f"unknown update kind {kind}")
        try:
            prefix = Prefix.from_network(network, length)
        except ValueError as exc:
            raise ProtocolError(f"bad update prefix: {exc}") from exc
        messages.append(
            UpdateMessage(
                UpdateKind.WITHDRAW if kind else UpdateKind.ANNOUNCE,
                prefix,
                None if kind else hop,
                timestamp,
            )
        )
    return messages


@dataclass(frozen=True)
class UpdateAck:
    """MSG_UPDATE_OK: what happened to one update batch.

    ``durable`` means the batch was journaled and fsynced before this
    ack was sent — the crash-consistency contract of PR 2 extended over
    the wire.  ``shed`` counts messages the bounded update queue refused
    (storm backpressure); the client's retry path is BGP re-advertisement,
    exactly as for in-process :meth:`ClueSystem.offer_update`.

    ``replicated`` is the replication watermark promise: the batch was
    applied *and acknowledged by the backup replica* before this ack was
    sent.  It is only ever ``True`` under ``ack_mode=quorum``; a primary
    ack never claims more than the backup has confirmed, so an update the
    client must survive primary loss should be retried until the ack
    carries ``replicated=True``.
    """

    accepted: int
    shed: int
    applied: int
    durable: bool
    replicated: bool = False


def encode_update_ack(ack: UpdateAck) -> bytes:
    return _UPDATE_ACK.pack(
        ack.accepted,
        ack.shed,
        ack.applied,
        1 if ack.durable else 0,
        1 if ack.replicated else 0,
    )


def decode_update_ack(payload: bytes) -> UpdateAck:
    if len(payload) != _UPDATE_ACK.size:
        raise ProtocolError(
            f"update ack of {len(payload)} bytes, expected {_UPDATE_ACK.size}"
        )
    accepted, shed, applied, durable, replicated = _UPDATE_ACK.unpack(payload)
    return UpdateAck(accepted, shed, applied, bool(durable), bool(replicated))


# -- replication payloads -----------------------------------------------
#
# Journal shipping rides the same length-prefixed frames as everything
# else.  One MSG_REPLICATE frame carries either the bootstrap (full shard
# states at a journal watermark), one shard's batch of journal records,
# or a bare heartbeat; MSG_REPLICATE_OK answers each with the backup's
# applied watermark.  Payloads are JSON: replication moves control-plane
# records, which are rare and small next to lookup traffic, and the
# journal records themselves are already ASCII text.

REPLICATE_BOOTSTRAP = "bootstrap"
REPLICATE_RECORDS = "records"
REPLICATE_HEARTBEAT = "heartbeat"


def encode_replicate(data: Dict) -> bytes:
    """MSG_REPLICATE payload; ``data['kind']`` picks the variant."""
    if data.get("kind") not in (
        REPLICATE_BOOTSTRAP,
        REPLICATE_RECORDS,
        REPLICATE_HEARTBEAT,
    ):
        raise ProtocolError(f"unknown replicate kind {data.get('kind')!r}")
    return encode_json(data)


def decode_replicate(payload: bytes) -> Dict:
    data = decode_json(payload)
    if not isinstance(data, dict):
        raise ProtocolError("replicate payload is not a JSON object")
    kind = data.get("kind")
    if kind not in (
        REPLICATE_BOOTSTRAP,
        REPLICATE_RECORDS,
        REPLICATE_HEARTBEAT,
    ):
        raise ProtocolError(f"unknown replicate kind {kind!r}")
    if kind == REPLICATE_RECORDS:
        try:
            int(data["shard"])
            for seq, record_kind, record_payload in data["records"]:
                int(seq), str(record_kind), str(record_payload)
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed record batch: {exc!r}") from exc
    return data


@dataclass(frozen=True)
class ReplicateAck:
    """MSG_REPLICATE_OK: the backup's applied watermark for one shard.

    ``applied_seq`` is the primary journal sequence the backup has fully
    applied *and locally journaled*; the primary's quorum ack to its
    client never claims beyond this.  Bootstrap acks use shard ``-1``
    and ``applied_seq`` = the highest bootstrap watermark.
    """

    shard: int
    applied_seq: int


def encode_replicate_ack(ack: ReplicateAck) -> bytes:
    return encode_json({"shard": ack.shard, "applied_seq": ack.applied_seq})


def decode_replicate_ack(payload: bytes) -> ReplicateAck:
    data = decode_json(payload)
    try:
        return ReplicateAck(int(data["shard"]), int(data["applied_seq"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed replicate ack: {exc!r}") from exc


# -- redirect payloads ----------------------------------------------------


@dataclass(frozen=True)
class Redirect:
    """MSG_REDIRECT: the topology moved under the client's feet.

    ``reason`` names the window (currently always ``resharding``),
    ``epoch`` is the topology epoch the server is moving to, and
    ``replicas`` lists ``[host, port, role]`` rows the client can use to
    refresh its route map before retrying.  Data-plane requests that
    arrive inside a reshard cutover window get this instead of BUSY: the
    refusal is about *placement*, not pacing, and carries the forwarding
    information a bare BUSY cannot.
    """

    reason: str
    epoch: int
    replicas: Tuple[Tuple[str, int, str], ...] = ()


def encode_redirect(redirect: Redirect) -> bytes:
    return encode_json(
        {
            "reason": redirect.reason,
            "epoch": redirect.epoch,
            "replicas": [list(row) for row in redirect.replicas],
        }
    )


def decode_redirect(payload: bytes) -> Redirect:
    data = decode_json(payload)
    if not isinstance(data, dict):
        raise ProtocolError("redirect payload is not a JSON object")
    try:
        replicas = tuple(
            (str(host), int(port), str(role))
            for host, port, role in data.get("replicas", [])
        )
        return Redirect(str(data["reason"]), int(data["epoch"]), replicas)
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed redirect: {exc!r}") from exc


# -- admin payloads -----------------------------------------------------


def encode_json(data: object) -> bytes:
    return json.dumps(data, sort_keys=True).encode("utf-8")


def decode_json(payload: bytes) -> object:
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed JSON payload: {exc}") from exc


def encode_text(text: str) -> bytes:
    return text.encode("utf-8")


def decode_text(payload: bytes) -> str:
    try:
        return payload.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"malformed text payload: {exc}") from exc
