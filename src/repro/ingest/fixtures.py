"""Deterministic synthetic MRT/pcap fixtures — tests never hit the net.

Real RIS/RouteViews archives are hundreds of megabytes and live behind
flaky mirrors; CI cannot depend on them.  Instead this module *writes*
tiny but format-faithful MRT RIB dumps, BGP4MP update dumps, and
classic-pcap captures, derived from the repo's own synthetic workload
generators — so ingesting a fixture inverts the generators and the
result is a table/trace the rest of the pipeline already understands.

The fixtures deliberately exercise the parsers' corners: a
``PEER_INDEX_TABLE`` with an IPv6 peer and mixed 2/4-byte AS numbers,
multi-peer RIB rows (so single-peer selection matters), a plen-0
default-route record, an extended-length path attribute,
``MP_REACH``/``MP_UNREACH`` announce/withdraw, ``BGP4MP_ET``
sub-second timestamps, and skip fodder (OSPF records, IPv6 RIBs,
keepalives, state changes, ARP and IPv6 frames, VLAN tags) that must
land in the skipped-with-reason counters — never vanish.

Everything is a pure function of :class:`FixtureSpec`, so two runs
write byte-identical files (asserted in tests).
"""

from __future__ import annotations

import gzip
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.ingest.mrt import (
    BGP4MP_MESSAGE,
    BGP4MP_MESSAGE_AS4,
    BGP4MP_STATE_CHANGE_AS4,
    MRT_BGP4MP,
    MRT_BGP4MP_ET,
    MRT_TABLE_DUMP_V2,
    TDV2_PEER_INDEX_TABLE,
    TDV2_RIB_GENERIC,
    TDV2_RIB_IPV4_UNICAST,
    TDV2_RIB_IPV6_UNICAST,
    PathLike,
)
from repro.net.prefix import Prefix
from repro.workload.ribgen import RibParameters, generate_rib
from repro.workload.trafficgen import TrafficGenerator
from repro.workload.updategen import UpdateGenerator, UpdateKind

Route = Tuple[Prefix, int]

#: Fixture peers: (IPv4 address, AS number).  Peer 0 is the dominant
#: view; peer 1 contributes minority rows; peer 2 is IPv6-addressed.
PEER_A_IP = 0xC0000201  # 192.0.2.1
PEER_A_AS = 64500
PEER_B_IP = 0xC0000202  # 192.0.2.2
PEER_B_AS = 64501

#: Fixture timestamps sit in early 2012 — the paper's era.
BASE_TIMESTAMP = 1_327_000_000


@dataclass(frozen=True)
class FixtureSpec:
    """Size and seed of one deterministic fixture set."""

    seed: int = 7
    routes: int = 96
    updates: int = 160
    packets: int = 256

    def rib_parameters(self) -> RibParameters:
        return RibParameters(size=self.routes, include_default_route=True)


def fixture_routes(spec: FixtureSpec) -> List[Route]:
    """The ground-truth table behind a fixture set: a small synthetic
    RIB with a default route plus one /32 host route."""
    routes = generate_rib(spec.seed, spec.rib_parameters())
    host = Prefix.from_network(0x0A636363, 32)  # 10.99.99.99/32
    if all(prefix != host for prefix, _ in routes):
        routes.append((host, 3))
    return routes


def next_hop_ip(hop: int) -> int:
    """Map a generator hop number into 198.18.0.0/15 (benchmark space)."""
    return 0xC6120001 + hop


# -- MRT encoding ---------------------------------------------------------


def _mrt_record(
    timestamp: int, mrt_type: int, subtype: int, body: bytes
) -> bytes:
    return struct.pack(">IHHI", timestamp, mrt_type, subtype, len(body)) + body


def _encode_nlri(prefix: Prefix) -> bytes:
    count = (prefix.length + 7) // 8
    return bytes([prefix.length]) + prefix.network.to_bytes(4, "big")[:count]


def _attr(code: int, value: bytes, extended: bool = False) -> bytes:
    if extended:
        return bytes([0x50, code]) + len(value).to_bytes(2, "big") + value
    return bytes([0x40, code, len(value)]) + value


def _peer_index_table() -> bytes:
    view = b"fixture"
    body = struct.pack(">I", 0x0A000001) + len(view).to_bytes(2, "big") + view
    peers = [
        # peer type 0x02: IPv4 address, 4-byte AS.
        bytes([0x02])
        + struct.pack(">II", 0x0A000001, PEER_A_IP)
        + struct.pack(">I", PEER_A_AS),
        # peer type 0x00: IPv4 address, 2-byte AS.
        bytes([0x00])
        + struct.pack(">II", 0x0A000002, PEER_B_IP)
        + struct.pack(">H", PEER_B_AS),
        # peer type 0x03: IPv6 address, 4-byte AS.
        bytes([0x03])
        + struct.pack(">I", 0x0A000003)
        + b"\x20\x01\x0d\xb8" + b"\x00" * 12
        + struct.pack(">I", 64502),
    ]
    body += len(peers).to_bytes(2, "big") + b"".join(peers)
    return _mrt_record(
        BASE_TIMESTAMP, MRT_TABLE_DUMP_V2, TDV2_PEER_INDEX_TABLE, body
    )


def _rib_entry(peer_index: int, originated: int, attrs: bytes) -> bytes:
    return (
        struct.pack(">HIH", peer_index, originated, len(attrs)) + attrs
    )


def _rib_record(
    sequence: int, prefix: Prefix, entries: Sequence[bytes]
) -> bytes:
    body = (
        struct.pack(">I", sequence)
        + _encode_nlri(prefix)
        + len(entries).to_bytes(2, "big")
        + b"".join(entries)
    )
    return _mrt_record(
        BASE_TIMESTAMP, MRT_TABLE_DUMP_V2, TDV2_RIB_IPV4_UNICAST, body
    )


def build_rib_mrt(spec: FixtureSpec) -> bytes:
    """A TABLE_DUMP_V2 RIB dump whose dominant-peer view is exactly
    ``fixture_routes(spec)`` (modulo next-hop → port hashing)."""
    routes = fixture_routes(spec)
    records = [_peer_index_table()]
    for sequence, (prefix, hop) in enumerate(routes):
        hop_bytes = struct.pack(">I", next_hop_ip(hop))
        # Every 9th record uses an extended-length NEXT_HOP attribute.
        attrs = _attr(3, hop_bytes, extended=sequence % 9 == 8)
        entries = [_rib_entry(0, BASE_TIMESTAMP - 3600, attrs)]
        if sequence % 4 == 1:
            # Minority rows from peer 1 with a different next hop: the
            # single-peer selection must not let these leak through.
            other = _attr(3, struct.pack(">I", next_hop_ip(hop) ^ 0xFF))
            entries.append(_rib_entry(1, BASE_TIMESTAMP - 1800, other))
        records.append(_rib_record(sequence, prefix, entries))
    # Skip fodder: an IPv6 RIB record, a generic RIB record, an OSPF
    # record — all must surface in the skipped counters.
    records.append(
        _mrt_record(
            BASE_TIMESTAMP,
            MRT_TABLE_DUMP_V2,
            TDV2_RIB_IPV6_UNICAST,
            b"\x00" * 12,
        )
    )
    records.append(
        _mrt_record(
            BASE_TIMESTAMP, MRT_TABLE_DUMP_V2, TDV2_RIB_GENERIC, b"\x00" * 8
        )
    )
    records.append(_mrt_record(BASE_TIMESTAMP, 11, 0, b"\x00" * 16))
    return b"".join(records)


def _bgp_message(message_type: int, payload: bytes) -> bytes:
    return (
        b"\xff" * 16
        + (19 + len(payload)).to_bytes(2, "big")
        + bytes([message_type])
    ) + payload


def _bgp_update_payload(
    withdraws: bytes, attrs: bytes, nlri: bytes
) -> bytes:
    return (
        len(withdraws).to_bytes(2, "big")
        + withdraws
        + len(attrs).to_bytes(2, "big")
        + attrs
        + nlri
    )


def _bgp4mp_record(
    timestamp: float,
    peer_as: int,
    peer_ip: int,
    message: bytes,
    as4: bool = True,
) -> bytes:
    if as4:
        header = struct.pack(">II", peer_as, 65000)
        subtype = BGP4MP_MESSAGE_AS4
    else:
        header = struct.pack(">HH", peer_as, 65000)
        subtype = BGP4MP_MESSAGE
    header += struct.pack(">HHII", 0, 1, peer_ip, 0x0A000001)
    seconds = int(timestamp)
    microseconds = int(round((timestamp - seconds) * 1e6))
    if microseconds:
        body = struct.pack(">I", microseconds) + header + message
        return _mrt_record(seconds, MRT_BGP4MP_ET, subtype, body)
    return _mrt_record(seconds, MRT_BGP4MP, subtype, header + message)


def build_updates_mrt(spec: FixtureSpec) -> bytes:
    """A BGP4MP update dump replaying ``UpdateGenerator`` over the
    fixture routes, with MP_REACH/MP_UNREACH variants and skip fodder."""
    routes = fixture_routes(spec)
    messages = UpdateGenerator(routes, seed=spec.seed + 1).take(spec.updates)
    records: List[bytes] = []
    for index, message in enumerate(messages):
        timestamp = BASE_TIMESTAMP + message.timestamp
        # A sprinkle of records from a second peer: normalization must
        # pick the dominant peer and account for the rest.
        minority = index % 13 == 5
        peer_ip = PEER_B_IP if minority else PEER_A_IP
        peer_as = PEER_B_AS if minority else PEER_A_AS
        as4 = index % 3 != 2  # mix MESSAGE_AS4 and 2-byte MESSAGE
        if message.kind is UpdateKind.ANNOUNCE:
            hop = struct.pack(">I", next_hop_ip(message.next_hop))
            if index % 5 == 4:
                value = (
                    struct.pack(">HBB", 1, 1, 4)
                    + hop
                    + b"\x00"
                    + _encode_nlri(message.prefix)
                )
                payload = _bgp_update_payload(b"", _attr(14, value), b"")
            else:
                payload = _bgp_update_payload(
                    b"", _attr(3, hop), _encode_nlri(message.prefix)
                )
        else:
            if index % 7 == 3:
                value = struct.pack(">HB", 1, 1) + _encode_nlri(
                    message.prefix
                )
                payload = _bgp_update_payload(b"", _attr(15, value), b"")
            else:
                payload = _bgp_update_payload(
                    _encode_nlri(message.prefix), b"", b""
                )
        records.append(
            _bgp4mp_record(
                timestamp, peer_as, peer_ip, _bgp_message(2, payload), as4
            )
        )
    # Skip fodder: keepalive, state change, an IPv6-only UPDATE, and a
    # foreign record type.
    records.append(
        _bgp4mp_record(BASE_TIMESTAMP, PEER_A_AS, PEER_A_IP, _bgp_message(4, b""))
    )
    records.append(
        _mrt_record(
            BASE_TIMESTAMP,
            MRT_BGP4MP,
            BGP4MP_STATE_CHANGE_AS4,
            struct.pack(">IIHHII", PEER_A_AS, 65000, 0, 1, PEER_A_IP, 0)
            + struct.pack(">HH", 1, 6),
        )
    )
    ipv6_value = (
        struct.pack(">HBB", 2, 1, 16)
        + b"\x20\x01\x0d\xb8" + b"\x00" * 12
        + b"\x00"
        + bytes([32, 0x20, 0x01, 0x0D, 0xB8])
    )
    records.append(
        _bgp4mp_record(
            BASE_TIMESTAMP,
            PEER_A_AS,
            PEER_A_IP,
            _bgp_message(
                2, _bgp_update_payload(b"", _attr(14, ipv6_value), b"")
            ),
        )
    )
    records.append(_mrt_record(BASE_TIMESTAMP, 11, 0, b"\x00" * 16))
    return b"".join(records)


# -- pcap encoding --------------------------------------------------------


def _ethernet_frame(dst: int, vlan: bool) -> bytes:
    header = b"\x02\x00\x00\x00\x00\x01" + b"\x02\x00\x00\x00\x00\x02"
    if vlan:
        header += struct.pack(">HH", 0x8100, 100)
    header += struct.pack(">H", 0x0800)
    ip = bytearray(20)
    ip[0] = 0x45
    struct.pack_into(">H", ip, 2, 28)  # total length: header + 8 bytes
    ip[8] = 64  # TTL
    ip[9] = 17  # UDP
    struct.pack_into(">I", ip, 12, 0x0A000001)  # source
    struct.pack_into(">I", ip, 16, dst)
    return header + bytes(ip) + b"\x00" * 8


def _arp_frame() -> bytes:
    return (
        b"\xff" * 6
        + b"\x02\x00\x00\x00\x00\x01"
        + struct.pack(">H", 0x0806)
        + b"\x00" * 28
    )


def _ipv6_frame() -> bytes:
    return (
        b"\x02\x00\x00\x00\x00\x01"
        + b"\x02\x00\x00\x00\x00\x02"
        + struct.pack(">H", 0x86DD)
        + b"\x60" + b"\x00" * 39
    )


def build_pcap(
    spec: FixtureSpec,
    byte_order: str = "<",
    nanosecond: bool = False,
) -> bytes:
    """A classic-pcap Ethernet capture of ``TrafficGenerator`` output,
    in either byte order, with VLAN/ARP/IPv6/runt skip fodder."""
    if byte_order not in ("<", ">"):
        raise ValueError("byte_order must be '<' or '>'")
    magic = 0xA1B23C4D if nanosecond else 0xA1B2C3D4
    out = [
        struct.pack(byte_order + "IHHiIII", magic, 2, 4, 0, 0, 65535, 1)
    ]
    record = struct.Struct(byte_order + "IIII")
    # Fractional ticks are microseconds scaled up for nanosecond files,
    # so the usec and nsec fixtures describe the same instants.
    scale = 1000 if nanosecond else 1
    addresses = TrafficGenerator(
        fixture_routes(spec), seed=spec.seed + 2
    ).take(spec.packets)

    def emit(seconds: int, frac: int, frame: bytes) -> None:
        out.append(record.pack(seconds, frac, len(frame), len(frame)))
        out.append(frame)

    for index, dst in enumerate(addresses):
        seconds = BASE_TIMESTAMP + index // 50
        frac = ((index * 20000) % 1_000_000) * scale
        emit(seconds, frac, _ethernet_frame(dst, vlan=index % 6 == 5))
        if index == 10:
            emit(seconds, frac, _arp_frame())
        if index == 20:
            emit(seconds, frac, _ipv6_frame())
        if index == 30:
            emit(seconds, frac, b"\x02\x00\x00")  # runt frame
    return b"".join(out)


# -- file writers ---------------------------------------------------------


def _write(path: Path, payload: bytes) -> None:
    if path.suffix == ".gz":
        # mtime=0 keeps the gzip container deterministic.
        payload = gzip.compress(payload, mtime=0)
    path.write_bytes(payload)


def write_fixture_set(
    directory: PathLike, spec: FixtureSpec = FixtureSpec()
) -> Dict[str, Path]:
    """Write the full fixture set and return ``{kind: path}``.

    The RIB is gzipped (exercising magic sniffing), the update dump is
    plain, and two captures cover both byte orders plus the nanosecond
    format.
    """
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    paths = {
        "rib": base / "rib.mrt.gz",
        "updates": base / "updates.mrt",
        "pcap": base / "trace.pcap",
        "pcap_be": base / "trace-be.pcap",
    }
    _write(paths["rib"], build_rib_mrt(spec))
    _write(paths["updates"], build_updates_mrt(spec))
    _write(paths["pcap"], build_pcap(spec, byte_order="<"))
    _write(paths["pcap_be"], build_pcap(spec, byte_order=">", nanosecond=True))
    return paths
