"""Real-trace ingestion plane: MRT RIB/update dumps and pcap captures.

``repro.ingest`` turns the formats real measurement archives use —
RFC 6396 MRT (``TABLE_DUMP_V2`` RIBs, ``BGP4MP`` update streams) and
classic libpcap — into the plain-text traces the rest of the pipeline
consumes (``repro.workload.traces``).  Three layers:

* parsers (:mod:`repro.ingest.mrt`, :mod:`repro.ingest.pcap`) with
  100%-accounted per-reason record counters,
* normalization (:mod:`repro.ingest.normalize`): single-peer view,
  deterministic next-hop → port hashing, timestamp rebasing, martian /
  default-route policy,
* fixtures (:mod:`repro.ingest.fixtures`): deterministic synthetic
  MRT/pcap files so tests and CI never touch the network, with
  :mod:`repro.ingest.fetch` documenting the real archive URLs.
"""

from repro.ingest.fixtures import (
    FixtureSpec,
    build_pcap,
    build_rib_mrt,
    build_updates_mrt,
    fixture_routes,
    write_fixture_set,
)
from repro.ingest.mrt import (
    BgpUpdateRecord,
    IngestCounters,
    IngestFormatError,
    MrtRecord,
    PeerEntry,
    RibDump,
    RibEntry,
    UpdateDump,
    iter_records,
    load_rib,
    load_updates,
    open_stream,
)
from repro.ingest.normalize import (
    MARTIAN_PREFIXES,
    NormalizePolicy,
    NormalizeReport,
    filter_consistent_updates,
    is_martian,
    is_martian_address,
    packets_to_trace,
    port_for_next_hop,
    rib_to_table,
    select_peer,
    select_update_peer,
    update_rates,
    updates_to_trace,
)
from repro.ingest.pcap import PacketDump, PacketRecord, load_pcap

__all__ = [
    "BgpUpdateRecord",
    "FixtureSpec",
    "IngestCounters",
    "IngestFormatError",
    "MARTIAN_PREFIXES",
    "MrtRecord",
    "NormalizePolicy",
    "NormalizeReport",
    "PacketDump",
    "PacketRecord",
    "PeerEntry",
    "RibDump",
    "RibEntry",
    "UpdateDump",
    "build_pcap",
    "build_rib_mrt",
    "build_updates_mrt",
    "filter_consistent_updates",
    "fixture_routes",
    "is_martian",
    "is_martian_address",
    "iter_records",
    "load_pcap",
    "load_rib",
    "load_updates",
    "open_stream",
    "packets_to_trace",
    "port_for_next_hop",
    "rib_to_table",
    "select_peer",
    "select_update_peer",
    "update_rates",
    "updates_to_trace",
    "write_fixture_set",
]
