"""Streaming MRT parser (RFC 6396) for RIB dumps and BGP update traces.

Real routing data arrives as MRT files: TABLE_DUMP_V2 RIB snapshots
(``bview`` files from RIPE RIS, ``rib`` files from RouteViews) and
BGP4MP update dumps.  This module reads both, streaming record by
record so a full-table dump never has to fit in memory twice:

* ``load_rib`` — ``PEER_INDEX_TABLE`` + ``RIB_IPV4_UNICAST`` records,
  yielding one :class:`RibEntry` per (prefix, peer) with the peer's
  ``NEXT_HOP`` attribute extracted;
* ``load_updates`` — ``BGP4MP``/``BGP4MP_ET`` ``MESSAGE``/
  ``MESSAGE_AS4`` records carrying BGP UPDATEs, with both classic NLRI
  fields and ``MP_REACH_NLRI``/``MP_UNREACH_NLRI`` (IPv4 unicast)
  announce/withdraw extraction.

Gzip and bz2 compression are transparent (sniffed by magic bytes, not
suffix).  Every record the parser reads lands in exactly one counter
bucket — parsed by kind, or skipped with a reason — so
``IngestCounters.verify`` can insist the accounting covers 100% of the
input; an unsupported subtype is a visible number, never silence.

Structural impossibilities (truncated header, absurd record length)
raise :class:`IngestFormatError`, which the CLI surfaces as an exit-2
usage error; a record whose *body* does not parse is counted as
``skipped: malformed`` and the stream continues, matching how real
dumps with damaged records are handled in practice.
"""

from __future__ import annotations

import bz2
import gzip
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import BinaryIO, Dict, Iterator, List, Optional, Tuple, Union

from repro.net.prefix import Prefix

PathLike = Union[str, Path]

#: MRT record types (RFC 6396 §4).
MRT_TABLE_DUMP = 12
MRT_TABLE_DUMP_V2 = 13
MRT_BGP4MP = 16
MRT_BGP4MP_ET = 17

#: TABLE_DUMP_V2 subtypes (RFC 6396 §4.3).
TDV2_PEER_INDEX_TABLE = 1
TDV2_RIB_IPV4_UNICAST = 2
TDV2_RIB_IPV4_MULTICAST = 3
TDV2_RIB_IPV6_UNICAST = 4
TDV2_RIB_IPV6_MULTICAST = 5
TDV2_RIB_GENERIC = 6

#: BGP4MP subtypes (RFC 6396 §4.4).
BGP4MP_STATE_CHANGE = 0
BGP4MP_MESSAGE = 1
BGP4MP_MESSAGE_AS4 = 4
BGP4MP_STATE_CHANGE_AS4 = 5
BGP4MP_MESSAGE_LOCAL = 6
BGP4MP_MESSAGE_AS4_LOCAL = 7

#: BGP message types (RFC 4271 §4.1).
BGP_OPEN = 1
BGP_UPDATE = 2
BGP_NOTIFICATION = 3
BGP_KEEPALIVE = 4

#: BGP path attribute type codes.
ATTR_NEXT_HOP = 3
ATTR_MP_REACH_NLRI = 14
ATTR_MP_UNREACH_NLRI = 15

AFI_IPV4 = 1
AFI_IPV6 = 2
SAFI_UNICAST = 1

#: Sanity cap: no real MRT record is this large; a longer "length"
#: field means the stream is not MRT (or is corrupt beyond salvage).
MAX_RECORD_LENGTH = 16 * 1024 * 1024

_HEADER = struct.Struct(">IHHI")

_TYPE_NAMES = {
    11: "ospfv2",
    MRT_TABLE_DUMP: "table-dump-v1",
    32: "isis",
    48: "ospfv3",
}

_TDV2_SUBTYPE_NAMES = {
    TDV2_RIB_IPV4_MULTICAST: "rib-ipv4-multicast",
    TDV2_RIB_IPV6_UNICAST: "rib-ipv6-unicast",
    TDV2_RIB_IPV6_MULTICAST: "rib-ipv6-multicast",
    TDV2_RIB_GENERIC: "rib-generic",
}


class IngestFormatError(ValueError):
    """The input is not a readable file of the expected trace format."""


class _Malformed(Exception):
    """Internal: one record's body failed to parse (counted, not fatal)."""


# -- record accounting ----------------------------------------------------


@dataclass
class IngestCounters:
    """Per-reason record accounting: parsed + skipped == records read.

    ``noted`` carries informational sub-record observations (e.g. an
    IPv6 ``MP_REACH_NLRI`` inside an otherwise-useful update); notes do
    not participate in the accounting identity.
    """

    parsed: Dict[str, int] = field(default_factory=dict)
    skipped: Dict[str, int] = field(default_factory=dict)
    noted: Dict[str, int] = field(default_factory=dict)

    def count_parsed(self, reason: str) -> None:
        self.parsed[reason] = self.parsed.get(reason, 0) + 1

    def count_skipped(self, reason: str) -> None:
        self.skipped[reason] = self.skipped.get(reason, 0) + 1

    def note(self, reason: str) -> None:
        self.noted[reason] = self.noted.get(reason, 0) + 1

    @property
    def parsed_total(self) -> int:
        return sum(self.parsed.values())

    @property
    def skipped_total(self) -> int:
        return sum(self.skipped.values())

    @property
    def total(self) -> int:
        return self.parsed_total + self.skipped_total

    def verify(self, records: int) -> None:
        """Insist every input record is accounted for (parser invariant)."""
        if self.total != records:
            raise IngestFormatError(
                f"record accounting broken: {records} records read but "
                f"{self.parsed_total} parsed + {self.skipped_total} "
                f"skipped = {self.total}"
            )

    def summary_lines(self) -> List[str]:
        lines = [
            f"records: {self.total} total = {self.parsed_total} parsed "
            f"+ {self.skipped_total} skipped (100% accounted)"
        ]
        if self.parsed:
            lines.append(
                "parsed: "
                + ", ".join(
                    f"{name} {count}"
                    for name, count in sorted(self.parsed.items())
                )
            )
        if self.skipped:
            lines.append(
                "skipped: "
                + ", ".join(
                    f"{name} {count}"
                    for name, count in sorted(self.skipped.items())
                )
            )
        if self.noted:
            lines.append(
                "noted: "
                + ", ".join(
                    f"{name} {count}"
                    for name, count in sorted(self.noted.items())
                )
            )
        return lines


# -- low-level record stream ----------------------------------------------


@dataclass(frozen=True)
class MrtRecord:
    """One raw MRT record: common header plus its undecoded body."""

    timestamp: int
    type: int
    subtype: int
    body: bytes
    index: int
    offset: int


def open_stream(path: PathLike) -> BinaryIO:
    """Open a trace file for binary reading, decompressing by magic.

    Gzip (``\\x1f\\x8b``) and bz2 (``BZh``) are recognised whatever the
    suffix says; anything else is read as-is.
    """
    with open(path, "rb") as probe:
        magic = probe.read(3)
    if magic[:2] == b"\x1f\x8b":
        return gzip.open(path, "rb")
    if magic == b"BZh":
        return bz2.open(path, "rb")
    return open(path, "rb")


def iter_records(path: PathLike) -> Iterator[MrtRecord]:
    """Stream the MRT records of ``path`` without loading the file whole."""
    offset = 0
    index = 0
    with open_stream(path) as stream:
        while True:
            header = stream.read(_HEADER.size)
            if not header:
                return
            if len(header) < _HEADER.size:
                raise IngestFormatError(
                    f"{path}: truncated MRT header for record {index} "
                    f"at offset {offset}"
                )
            timestamp, mrt_type, subtype, length = _HEADER.unpack(header)
            if length > MAX_RECORD_LENGTH:
                raise IngestFormatError(
                    f"{path}: record {index} claims {length} bytes "
                    f"(cap {MAX_RECORD_LENGTH}); not an MRT stream?"
                )
            body = stream.read(length)
            if len(body) < length:
                raise IngestFormatError(
                    f"{path}: record {index} truncated "
                    f"({len(body)} of {length} body bytes)"
                )
            yield MrtRecord(timestamp, mrt_type, subtype, body, index, offset)
            offset += _HEADER.size + length
            index += 1


# -- shared BGP wire helpers ----------------------------------------------


def _need(data: bytes, pos: int, count: int) -> None:
    if pos + count > len(data):
        raise _Malformed(f"need {count} bytes at offset {pos}")


def _u8(data: bytes, pos: int) -> int:
    _need(data, pos, 1)
    return data[pos]


def _u16(data: bytes, pos: int) -> int:
    _need(data, pos, 2)
    return (data[pos] << 8) | data[pos + 1]


def _u32(data: bytes, pos: int) -> int:
    _need(data, pos, 4)
    return int.from_bytes(data[pos : pos + 4], "big")


def _read_prefix(data: bytes, pos: int) -> Tuple[Prefix, int]:
    """Decode one NLRI element ``(length, packed prefix)``; returns
    ``(prefix, next position)``.  Trailing host bits are masked off, as
    RFC 4271 declares them irrelevant."""
    length = _u8(data, pos)
    if length > 32:
        raise _Malformed(f"IPv4 prefix length {length} > 32")
    count = (length + 7) // 8
    _need(data, pos + 1, count)
    packed = data[pos + 1 : pos + 1 + count] + b"\x00" * (4 - count)
    network = int.from_bytes(packed, "big")
    if length:
        network &= (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
    else:
        network = 0
    return Prefix.from_network(network, length), pos + 1 + count


def _parse_nlri(data: bytes, pos: int, end: int) -> List[Prefix]:
    prefixes: List[Prefix] = []
    while pos < end:
        prefix, pos = _read_prefix(data, pos)
        prefixes.append(prefix)
    if pos != end:
        raise _Malformed("NLRI field overruns its length")
    return prefixes


def _parse_attributes(data: bytes) -> Dict[int, bytes]:
    """BGP path attributes as ``{type code: value}`` (last wins)."""
    attrs: Dict[int, bytes] = {}
    pos = 0
    while pos < len(data):
        flags = _u8(data, pos)
        code = _u8(data, pos + 1)
        if flags & 0x10:  # extended length
            length = _u16(data, pos + 2)
            pos += 4
        else:
            length = _u8(data, pos + 2)
            pos += 3
        _need(data, pos, length)
        attrs[code] = data[pos : pos + length]
        pos += length
    return attrs


# -- TABLE_DUMP_V2 RIB parsing --------------------------------------------


@dataclass(frozen=True)
class PeerEntry:
    """One peer from the ``PEER_INDEX_TABLE``."""

    index: int
    bgp_id: int
    asn: int
    #: IPv4 peer address as an int; ``None`` for IPv6 peers.
    ip: Optional[int]


@dataclass(frozen=True)
class RibEntry:
    """One (prefix, peer) RIB row with its extracted next hop."""

    prefix: Prefix
    peer_index: int
    originated: int
    #: ``NEXT_HOP`` attribute as a 32-bit int; ``None`` when absent.
    next_hop: Optional[int]


@dataclass
class RibDump:
    """Everything ``load_rib`` extracted from one MRT RIB file."""

    peers: List[PeerEntry]
    entries: List[RibEntry]
    counters: IngestCounters
    records: int
    source: str


def _parse_peer_index_table(body: bytes) -> List[PeerEntry]:
    pos = 4  # collector BGP id
    name_length = _u16(body, pos)
    pos += 2 + name_length
    count = _u16(body, pos)
    pos += 2
    peers: List[PeerEntry] = []
    for index in range(count):
        peer_type = _u8(body, pos)
        pos += 1
        bgp_id = _u32(body, pos)
        pos += 4
        if peer_type & 0x01:  # IPv6 peer address
            _need(body, pos, 16)
            ip: Optional[int] = None
            pos += 16
        else:
            ip = _u32(body, pos)
            pos += 4
        if peer_type & 0x02:  # 4-byte AS
            asn = _u32(body, pos)
            pos += 4
        else:
            asn = _u16(body, pos)
            pos += 2
        peers.append(PeerEntry(index=index, bgp_id=bgp_id, asn=asn, ip=ip))
    if pos != len(body):
        raise _Malformed("PEER_INDEX_TABLE has trailing bytes")
    return peers


def _parse_rib_ipv4_unicast(body: bytes) -> List[RibEntry]:
    pos = 4  # sequence number
    prefix, pos = _read_prefix(body, pos)
    count = _u16(body, pos)
    pos += 2
    entries: List[RibEntry] = []
    for _ in range(count):
        peer_index = _u16(body, pos)
        originated = _u32(body, pos + 2)
        attr_length = _u16(body, pos + 6)
        pos += 8
        _need(body, pos, attr_length)
        attrs = _parse_attributes(body[pos : pos + attr_length])
        pos += attr_length
        next_hop_raw = attrs.get(ATTR_NEXT_HOP)
        next_hop = (
            int.from_bytes(next_hop_raw[:4], "big")
            if next_hop_raw is not None and len(next_hop_raw) >= 4
            else None
        )
        entries.append(
            RibEntry(
                prefix=prefix,
                peer_index=peer_index,
                originated=originated,
                next_hop=next_hop,
            )
        )
    if pos != len(body):
        raise _Malformed("RIB_IPV4_UNICAST has trailing bytes")
    return entries


def load_rib(path: PathLike) -> RibDump:
    """Parse a TABLE_DUMP_V2 RIB dump; every record is accounted for."""
    counters = IngestCounters()
    peers: List[PeerEntry] = []
    entries: List[RibEntry] = []
    records = 0
    for record in iter_records(path):
        records += 1
        if record.type != MRT_TABLE_DUMP_V2:
            counters.count_skipped(_type_skip_reason(record.type))
            continue
        try:
            if record.subtype == TDV2_PEER_INDEX_TABLE:
                peers = _parse_peer_index_table(record.body)
                counters.count_parsed("peer-index-table")
            elif record.subtype == TDV2_RIB_IPV4_UNICAST:
                entries.extend(_parse_rib_ipv4_unicast(record.body))
                counters.count_parsed("rib-ipv4-unicast")
            else:
                counters.count_skipped(
                    _TDV2_SUBTYPE_NAMES.get(
                        record.subtype, f"tdv2-subtype-{record.subtype}"
                    )
                )
        except _Malformed:
            counters.count_skipped("malformed")
    counters.verify(records)
    return RibDump(
        peers=peers,
        entries=entries,
        counters=counters,
        records=records,
        source=str(path),
    )


def _type_skip_reason(mrt_type: int) -> str:
    return _TYPE_NAMES.get(mrt_type, f"mrt-type-{mrt_type}")


# -- BGP4MP update parsing ------------------------------------------------


@dataclass(frozen=True)
class BgpUpdateRecord:
    """The IPv4-unicast content of one BGP4MP UPDATE record."""

    timestamp: float
    peer_as: int
    #: IPv4 peer address as an int; ``None`` for IPv6 peering sessions.
    peer_ip: Optional[int]
    #: ``(prefix, next hop)`` announcements; the hop may be ``None``
    #: when the UPDATE carried no usable next-hop attribute.
    announces: Tuple[Tuple[Prefix, Optional[int]], ...]
    withdraws: Tuple[Prefix, ...]


@dataclass
class UpdateDump:
    """Everything ``load_updates`` extracted from one MRT update file."""

    updates: List[BgpUpdateRecord]
    counters: IngestCounters
    records: int
    source: str


def _parse_bgp4mp_update(
    record: MrtRecord, counters: IngestCounters
) -> Optional[BgpUpdateRecord]:
    body = record.body
    timestamp = float(record.timestamp)
    pos = 0
    if record.type == MRT_BGP4MP_ET:
        timestamp += _u32(body, pos) / 1e6
        pos += 4
    as_size = (
        4
        if record.subtype in (BGP4MP_MESSAGE_AS4, BGP4MP_MESSAGE_AS4_LOCAL)
        else 2
    )
    peer_as = _u32(body, pos) if as_size == 4 else _u16(body, pos)
    pos += 2 * as_size  # peer AS + local AS
    pos += 2  # interface index
    afi = _u16(body, pos)
    pos += 2
    if afi == AFI_IPV4:
        peer_ip: Optional[int] = _u32(body, pos)
        pos += 8  # peer + local address
    elif afi == AFI_IPV6:
        _need(body, pos, 32)
        peer_ip = None
        pos += 32
    else:
        raise _Malformed(f"unknown BGP4MP address family {afi}")

    # The embedded BGP message: 16-byte marker, length, type.
    _need(body, pos, 19)
    bgp_type = body[pos + 18]
    if bgp_type != BGP_UPDATE:
        counters.count_skipped(
            {
                BGP_OPEN: "bgp-open",
                BGP_NOTIFICATION: "bgp-notification",
                BGP_KEEPALIVE: "bgp-keepalive",
            }.get(bgp_type, f"bgp-type-{bgp_type}")
        )
        return None
    pos += 19

    withdrawn_length = _u16(body, pos)
    pos += 2
    _need(body, pos, withdrawn_length)
    withdraws = _parse_nlri(body, pos, pos + withdrawn_length)
    pos += withdrawn_length
    attr_length = _u16(body, pos)
    pos += 2
    _need(body, pos, attr_length)
    attrs = _parse_attributes(body[pos : pos + attr_length])
    pos += attr_length
    announced = _parse_nlri(body, pos, len(body))

    next_hop: Optional[int] = None
    raw_hop = attrs.get(ATTR_NEXT_HOP)
    if raw_hop is not None and len(raw_hop) >= 4:
        next_hop = int.from_bytes(raw_hop[:4], "big")
    announces: List[Tuple[Prefix, Optional[int]]] = [
        (prefix, next_hop) for prefix in announced
    ]

    mp_reach = attrs.get(ATTR_MP_REACH_NLRI)
    if mp_reach is not None:
        afi = _u16(mp_reach, 0)
        safi = _u8(mp_reach, 2)
        if afi == AFI_IPV4 and safi == SAFI_UNICAST:
            hop_length = _u8(mp_reach, 3)
            _need(mp_reach, 4, hop_length + 1)
            mp_hop = (
                int.from_bytes(mp_reach[4:8], "big")
                if hop_length >= 4
                else None
            )
            nlri_start = 4 + hop_length + 1  # +1: reserved byte
            announces.extend(
                (prefix, mp_hop)
                for prefix in _parse_nlri(
                    mp_reach, nlri_start, len(mp_reach)
                )
            )
        else:
            counters.note(f"mp-reach-afi-{afi}-safi-{safi}")

    mp_unreach = attrs.get(ATTR_MP_UNREACH_NLRI)
    if mp_unreach is not None:
        afi = _u16(mp_unreach, 0)
        safi = _u8(mp_unreach, 2)
        if afi == AFI_IPV4 and safi == SAFI_UNICAST:
            withdraws.extend(_parse_nlri(mp_unreach, 3, len(mp_unreach)))
        else:
            counters.note(f"mp-unreach-afi-{afi}-safi-{safi}")

    if not announces and not withdraws:
        counters.count_skipped("no-ipv4-content")
        return None
    counters.count_parsed("bgp4mp-update")
    return BgpUpdateRecord(
        timestamp=timestamp,
        peer_as=peer_as,
        peer_ip=peer_ip,
        announces=tuple(announces),
        withdraws=tuple(withdraws),
    )


def load_updates(path: PathLike) -> UpdateDump:
    """Parse a BGP4MP update dump; every record is accounted for."""
    counters = IngestCounters()
    updates: List[BgpUpdateRecord] = []
    records = 0
    for record in iter_records(path):
        records += 1
        if record.type not in (MRT_BGP4MP, MRT_BGP4MP_ET):
            counters.count_skipped(_type_skip_reason(record.type))
            continue
        if record.subtype in (BGP4MP_STATE_CHANGE, BGP4MP_STATE_CHANGE_AS4):
            counters.count_skipped("state-change")
            continue
        if record.subtype not in (
            BGP4MP_MESSAGE,
            BGP4MP_MESSAGE_AS4,
            BGP4MP_MESSAGE_LOCAL,
            BGP4MP_MESSAGE_AS4_LOCAL,
        ):
            counters.count_skipped(f"bgp4mp-subtype-{record.subtype}")
            continue
        try:
            update = _parse_bgp4mp_update(record, counters)
        except _Malformed:
            counters.count_skipped("malformed")
            continue
        if update is not None:
            updates.append(update)
    counters.verify(records)
    return UpdateDump(
        updates=updates, counters=counters, records=records, source=str(path)
    )
