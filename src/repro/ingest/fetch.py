"""URL builders and a download helper for real MRT archives.

RIPE RIS and RouteViews publish the archives the CLUE paper's era of
measurement work ran on.  Nothing in the test suite or CI calls this
module — fixtures cover those paths — but `repro ingest fetch` uses it
so a user can pull a real dump with one command:

    repro ingest fetch --source ris --collector rrc01 \
        --when 20120119.0800 --kind rib -o bview.gz
    repro ingest rib bview.gz -o table.txt --stats

``--url-only`` prints the URL without downloading, for use with an
external fetcher or a mirror.
"""

from __future__ import annotations

import shutil
import urllib.request
from pathlib import Path
from typing import Union

PathLike = Union[str, Path]

RIS_BASE = "https://data.ris.ripe.net"
ROUTEVIEWS_BASE = "https://archive.routeviews.org/bgpdata"


def _split_when(when: str) -> tuple:
    """Validate and split ``YYYYMMDD.HHMM`` into (yyyy, mm, stamp)."""
    date, _, clock = when.partition(".")
    if len(date) != 8 or len(clock) != 4 or not (date + clock).isdigit():
        raise ValueError(
            f"timestamp {when!r} must look like YYYYMMDD.HHMM, "
            f"e.g. 20120119.0800"
        )
    return date[:4], date[4:6], f"{date}.{clock}"


def ris_url(collector: str, when: str, kind: str) -> str:
    """RIPE RIS archive URL; ``kind`` is ``rib`` or ``updates``."""
    yyyy, mm, stamp = _split_when(when)
    if kind == "rib":
        name = f"bview.{stamp}.gz"
    elif kind == "updates":
        name = f"updates.{stamp}.gz"
    else:
        raise ValueError(f"kind must be 'rib' or 'updates', not {kind!r}")
    return f"{RIS_BASE}/{collector}/{yyyy}.{mm}/{name}"


def routeviews_url(when: str, kind: str) -> str:
    """RouteViews archive URL; ``kind`` is ``rib`` or ``updates``."""
    yyyy, mm, stamp = _split_when(when)
    if kind == "rib":
        return f"{ROUTEVIEWS_BASE}/{yyyy}.{mm}/RIBS/rib.{stamp}.bz2"
    if kind == "updates":
        return f"{ROUTEVIEWS_BASE}/{yyyy}.{mm}/UPDATES/updates.{stamp}.bz2"
    raise ValueError(f"kind must be 'rib' or 'updates', not {kind!r}")


def fetch(url: str, destination: PathLike, timeout: float = 120.0) -> Path:
    """Stream ``url`` to ``destination`` and return the path."""
    destination = Path(destination)
    destination.parent.mkdir(parents=True, exist_ok=True)
    with urllib.request.urlopen(url, timeout=timeout) as response:
        with open(destination, "wb") as sink:
            shutil.copyfileobj(response, sink)
    return destination
