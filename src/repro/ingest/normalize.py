"""Normalization: raw MRT/pcap content → the engine's trace formats.

A collector dump is a *multi-peer* view with arbitrary next-hop
addresses and wall-clock timestamps; the engine wants a single
router's table with small integer egress ports and a trace clock that
starts at zero.  This module bridges the two:

* **single-peer view** — a RIB dump keeps one peer's rows (the peer
  with the most entries by default, ties to the lowest index); an
  update dump keeps the busiest peer's messages.  Mixing peers would
  produce a table no real router holds.
* **next-hop → port hashing** — SHA-256 of the 4-byte next-hop address
  modulo ``port_count``.  Deterministic across runs and machines, so
  fingerprint-based oracles stay byte-identical.
* **timestamp rebasing** — the first surviving event becomes t=0 and
  ``time_scale`` compresses hours of wall clock onto engine cycles.
* **martian / default-route policy** — bogon blocks (0/8, 127/8,
  169.254/16, multicast, class E) are dropped by default; the default
  route is kept by default (it is a real edge case the engine must
  handle).  RFC 1918 space is deliberately *kept*: lab captures and
  our fixtures live there.

Like the parsers, normalization accounts for every input item: each
RIB entry / update event / packet is either emitted or dropped with a
reason, and :class:`NormalizeReport` carries the ledger.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ingest.mrt import RibDump, UpdateDump
from repro.ingest.pcap import PacketDump
from repro.net.prefix import Prefix, format_address
from repro.workload.updategen import UpdateKind, UpdateMessage

Route = Tuple[Prefix, int]

#: Blocks a backbone FIB never routes toward.  RFC 1918 space is
#: intentionally absent — see the module docstring.
MARTIAN_PREFIXES: Tuple[Prefix, ...] = (
    Prefix.parse("0.0.0.0/8"),
    Prefix.parse("127.0.0.0/8"),
    Prefix.parse("169.254.0.0/16"),
    Prefix.parse("224.0.0.0/4"),
    Prefix.parse("240.0.0.0/4"),
)


def is_martian(prefix: Prefix) -> bool:
    """True when ``prefix`` lies inside a martian block.  The default
    route (which merely *overlaps* every block) is not a martian."""
    return any(block.contains(prefix) for block in MARTIAN_PREFIXES)


def is_martian_address(address: int) -> bool:
    return any(block.contains_address(address) for block in MARTIAN_PREFIXES)


@dataclass(frozen=True)
class NormalizePolicy:
    """Knobs of the raw-trace → engine-trace mapping."""

    #: Egress ports on the modelled line card; hashed next hops land
    #: in ``range(port_count)``.
    port_count: int = 24
    drop_martians: bool = True
    keep_default_route: bool = True
    #: Multiplied into rebased timestamps; 0.01 squeezes an hour of
    #: wall clock into 36 engine seconds.
    time_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.port_count < 1:
            raise ValueError("port_count must be >= 1")
        if self.time_scale <= 0:
            raise ValueError("time_scale must be > 0")


@dataclass
class NormalizeReport:
    """Item accounting for one normalization pass."""

    input: int = 0
    emitted: int = 0
    dropped: Dict[str, int] = field(default_factory=dict)
    #: Free-form observations (chosen peer, rebased time span, ...).
    info: Dict[str, object] = field(default_factory=dict)

    def drop(self, reason: str, count: int = 1) -> None:
        self.dropped[reason] = self.dropped.get(reason, 0) + count

    @property
    def dropped_total(self) -> int:
        return sum(self.dropped.values())

    def verify(self) -> None:
        if self.emitted + self.dropped_total != self.input:
            raise AssertionError(
                f"normalization accounting broken: {self.input} in, "
                f"{self.emitted} out + {self.dropped_total} dropped"
            )

    def summary_lines(self) -> List[str]:
        lines = [
            f"normalized: {self.input} in -> {self.emitted} emitted, "
            f"{self.dropped_total} dropped"
        ]
        if self.dropped:
            lines.append(
                "dropped: "
                + ", ".join(
                    f"{name} {count}"
                    for name, count in sorted(self.dropped.items())
                )
            )
        for key, value in sorted(self.info.items()):
            lines.append(f"{key}: {value}")
        return lines


def port_for_next_hop(next_hop: int, port_count: int) -> int:
    """Deterministic egress port for a next-hop address.

    SHA-256 rather than ``hash()`` so the mapping survives
    ``PYTHONHASHSEED``, process restarts, and machine changes — the
    replay-fingerprint oracle depends on that.
    """
    digest = hashlib.sha256(next_hop.to_bytes(4, "big")).digest()
    return int.from_bytes(digest[:8], "big") % port_count


def select_peer(dump: RibDump) -> Optional[int]:
    """The peer index holding the most RIB rows (ties → lowest index)."""
    tally: Dict[int, int] = {}
    for entry in dump.entries:
        tally[entry.peer_index] = tally.get(entry.peer_index, 0) + 1
    if not tally:
        return None
    return min(tally, key=lambda index: (-tally[index], index))


def _policy_drop(prefix: Prefix, policy: NormalizePolicy) -> Optional[str]:
    """Reason to drop ``prefix`` under ``policy``, or ``None`` to keep."""
    if prefix.length == 0:
        return None if policy.keep_default_route else "default-route"
    if policy.drop_martians and is_martian(prefix):
        return "martian"
    return None


def rib_to_table(
    dump: RibDump,
    policy: NormalizePolicy = NormalizePolicy(),
    peer_index: Optional[int] = None,
) -> Tuple[List[Route], NormalizeReport]:
    """Reduce a multi-peer RIB dump to one router's ``(prefix, port)``
    table, sorted in the canonical trace order."""
    report = NormalizeReport(input=len(dump.entries))
    if peer_index is None:
        peer_index = select_peer(dump)
    report.info["peer"] = peer_index
    table: Dict[Prefix, int] = {}
    for entry in dump.entries:
        if entry.peer_index != peer_index:
            report.drop("other-peer")
            continue
        reason = _policy_drop(entry.prefix, policy)
        if reason is not None:
            report.drop(reason)
            continue
        if entry.next_hop is None:
            report.drop("no-next-hop")
            continue
        if entry.prefix in table:
            report.drop("duplicate-prefix")
            continue
        table[entry.prefix] = port_for_next_hop(
            entry.next_hop, policy.port_count
        )
        report.emitted += 1
    routes = sorted(table.items(), key=lambda route: route[0].sort_key())
    report.verify()
    return routes, report


def select_update_peer(dump: UpdateDump) -> Optional[int]:
    """The IPv4 peer address sending the most updates (ties → lowest)."""
    tally: Dict[int, int] = {}
    for update in dump.updates:
        if update.peer_ip is not None:
            tally[update.peer_ip] = tally.get(update.peer_ip, 0) + 1
    if not tally:
        return None
    return min(tally, key=lambda ip: (-tally[ip], ip))


def updates_to_trace(
    dump: UpdateDump,
    base_routes: Sequence[Route],
    policy: NormalizePolicy = NormalizePolicy(),
    peer_ip: Optional[int] = None,
) -> Tuple[List[UpdateMessage], NormalizeReport]:
    """Turn one peer's BGP UPDATE stream into an engine update trace.

    Accounting is per announce/withdraw *event* (one UPDATE record can
    carry many).  A shadow prefix set seeded from ``base_routes``
    enforces the generator invariant the pipeline relies on: withdraws
    of prefixes never announced are dropped, and re-announcements are
    fine (they are next-hop changes).
    """
    if peer_ip is None:
        peer_ip = select_update_peer(dump)
    events = 0
    for update in dump.updates:
        events += len(update.announces) + len(update.withdraws)
    report = NormalizeReport(input=events)
    report.info["peer"] = (
        format_address(peer_ip) if peer_ip is not None else None
    )

    known = {prefix for prefix, _ in base_routes}
    base_timestamp: Optional[float] = None
    trace: List[UpdateMessage] = []
    for update in dump.updates:
        if update.peer_ip != peer_ip:
            report.drop(
                "other-peer", len(update.announces) + len(update.withdraws)
            )
            continue
        if base_timestamp is None:
            base_timestamp = update.timestamp
        timestamp = max(
            0.0, (update.timestamp - base_timestamp) * policy.time_scale
        )
        for prefix in update.withdraws:
            reason = _policy_drop(prefix, policy)
            if reason is not None:
                report.drop(reason)
                continue
            if prefix not in known:
                report.drop("withdraw-unknown")
                continue
            known.discard(prefix)
            trace.append(
                UpdateMessage(
                    kind=UpdateKind.WITHDRAW,
                    prefix=prefix,
                    next_hop=None,
                    timestamp=timestamp,
                )
            )
            report.emitted += 1
        for prefix, next_hop in update.announces:
            reason = _policy_drop(prefix, policy)
            if reason is not None:
                report.drop(reason)
                continue
            if next_hop is None:
                report.drop("no-next-hop")
                continue
            known.add(prefix)
            trace.append(
                UpdateMessage(
                    kind=UpdateKind.ANNOUNCE,
                    prefix=prefix,
                    next_hop=port_for_next_hop(next_hop, policy.port_count),
                    timestamp=timestamp,
                )
            )
            report.emitted += 1
    if trace:
        report.info["span_seconds"] = round(
            trace[-1].timestamp - trace[0].timestamp, 6
        )
    report.verify()
    return trace, report


def packets_to_trace(
    dump: PacketDump, policy: NormalizePolicy = NormalizePolicy()
) -> Tuple[List[int], NormalizeReport]:
    """Reduce a packet dump to the destination-address trace format."""
    report = NormalizeReport(input=len(dump.packets))
    addresses: List[int] = []
    for packet in dump.packets:
        if policy.drop_martians and is_martian_address(packet.dst):
            report.drop("martian")
            continue
        addresses.append(packet.dst)
        report.emitted += 1
    report.verify()
    return addresses, report


def filter_consistent_updates(
    routes: Sequence[Route], updates: Sequence[UpdateMessage]
) -> List[UpdateMessage]:
    """Drop updates that violate the pipeline's consistency invariant
    (withdrawing a prefix that is not currently present).

    File-sourced workloads pass through here before entering a
    campaign cell, so an arbitrary real trace can never desync the
    reference trie the oracles compare against.
    """
    known = {prefix for prefix, _ in routes}
    kept: List[UpdateMessage] = []
    for update in updates:
        if update.kind is UpdateKind.WITHDRAW:
            if update.prefix not in known:
                continue
            known.discard(update.prefix)
        else:
            known.add(update.prefix)
        kept.append(update)
    return kept


def update_rates(trace: Sequence[UpdateMessage]) -> Dict[str, float]:
    """Announce/withdraw counts and rates for ``--stats`` output."""
    announces = sum(
        1 for update in trace if update.kind is UpdateKind.ANNOUNCE
    )
    withdraws = len(trace) - announces
    span = trace[-1].timestamp - trace[0].timestamp if len(trace) > 1 else 0.0
    rate = len(trace) / span if span > 0 else 0.0
    return {
        "announces": announces,
        "withdraws": withdraws,
        "span_seconds": round(span, 6),
        "updates_per_second": round(rate, 3),
    }
