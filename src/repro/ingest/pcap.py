"""Classic-libpcap parser extracting destination-address packet traces.

Reads the original ``pcap`` capture format (not pcapng): the 24-byte
global header in either byte order, with microsecond
(``0xa1b2c3d4``/``0xd4c3b2a1``) or nanosecond
(``0xa1b23c4d``/``0x4d3cb2a1``) timestamp magic, then per-packet
record headers.  Frames are decoded as Ethernet II, unwrapping any
number of 802.1Q / QinQ VLAN tags, and the IPv4 destination address is
extracted — that is all the lookup engine needs from a capture.

The same accounting discipline as the MRT parser applies: every packet
record is either ``parsed`` or ``skipped`` with a reason (``arp``,
``ipv6``, ``truncated-frame``, ...), and the totals must cover 100% of
the records read.  Gzip/bz2 compression is transparent.  A capture
whose link type is not Ethernet raises :class:`IngestFormatError` —
there is nothing record-level to salvage.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List

from repro.ingest.mrt import (
    IngestCounters,
    IngestFormatError,
    PathLike,
    open_stream,
)

#: pcap global-header magic → (struct byte order, timestamp fraction unit).
_MAGICS = {
    0xA1B2C3D4: (">", 1e-6),
    0xD4C3B2A1: ("<", 1e-6),
    0xA1B23C4D: (">", 1e-9),
    0x4D3CB2A1: ("<", 1e-9),
}

LINKTYPE_ETHERNET = 1

_LINKTYPE_NAMES = {
    0: "null/loopback",
    101: "raw-ip",
    105: "ieee802.11",
    113: "linux-sll",
}

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806
ETHERTYPE_VLAN = 0x8100
ETHERTYPE_QINQ = 0x88A8
ETHERTYPE_QINQ_LEGACY = 0x9100
ETHERTYPE_IPV6 = 0x86DD

#: Sanity cap on a single captured packet.
MAX_PACKET_LENGTH = 256 * 1024


@dataclass(frozen=True)
class PacketRecord:
    """One captured IPv4 packet, reduced to what lookup needs."""

    timestamp: float
    #: Destination address as a 32-bit int.
    dst: int


@dataclass
class PacketDump:
    """Everything ``load_pcap`` extracted from one capture file."""

    packets: List[PacketRecord]
    counters: IngestCounters
    records: int
    linktype: int
    big_endian: bool
    nanosecond: bool
    source: str


def _ethernet_dst(frame: bytes) -> int:
    """Return the IPv4 destination of an Ethernet frame, unwrapping
    VLAN tags; raises ``_Skip`` with the reason otherwise."""
    if len(frame) < 14:
        raise _Skip("truncated-frame")
    offset = 12
    ethertype = (frame[offset] << 8) | frame[offset + 1]
    offset += 2
    while ethertype in (ETHERTYPE_VLAN, ETHERTYPE_QINQ, ETHERTYPE_QINQ_LEGACY):
        if len(frame) < offset + 4:
            raise _Skip("truncated-frame")
        ethertype = (frame[offset + 2] << 8) | frame[offset + 3]
        offset += 4
    if ethertype == ETHERTYPE_ARP:
        raise _Skip("arp")
    if ethertype == ETHERTYPE_IPV6:
        raise _Skip("ipv6")
    if ethertype != ETHERTYPE_IPV4:
        raise _Skip(f"ethertype-0x{ethertype:04x}")
    if len(frame) < offset + 20:
        raise _Skip("truncated-frame")
    if frame[offset] >> 4 != 4:
        raise _Skip("bad-ip-version")
    return int.from_bytes(frame[offset + 16 : offset + 20], "big")


class _Skip(Exception):
    """Internal: this packet is skipped with ``args[0]`` as the reason."""


def load_pcap(path: PathLike) -> PacketDump:
    """Parse a classic-libpcap capture; every record is accounted for."""
    with open_stream(path) as stream:
        header = stream.read(24)
        if len(header) < 24:
            raise IngestFormatError(f"{path}: truncated pcap global header")
        magic = int.from_bytes(header[:4], "big")
        if magic not in _MAGICS:
            raise IngestFormatError(
                f"{path}: not a classic pcap file (magic 0x{magic:08x})"
            )
        order, fraction = _MAGICS[magic]
        _, _, _, _, _, linktype = struct.unpack(order + "HHiIII", header[4:])
        if linktype != LINKTYPE_ETHERNET:
            name = _LINKTYPE_NAMES.get(linktype, str(linktype))
            raise IngestFormatError(
                f"{path}: unsupported pcap link type {name} "
                f"(only Ethernet is handled)"
            )
        record_header = struct.Struct(order + "IIII")
        counters = IngestCounters()
        packets: List[PacketRecord] = []
        records = 0
        while True:
            raw = stream.read(record_header.size)
            if not raw:
                break
            if len(raw) < record_header.size:
                raise IngestFormatError(
                    f"{path}: truncated packet header for record {records}"
                )
            ts_sec, ts_frac, incl_len, _orig_len = record_header.unpack(raw)
            if incl_len > MAX_PACKET_LENGTH:
                raise IngestFormatError(
                    f"{path}: record {records} claims {incl_len} bytes "
                    f"(cap {MAX_PACKET_LENGTH}); corrupt capture?"
                )
            frame = stream.read(incl_len)
            if len(frame) < incl_len:
                raise IngestFormatError(
                    f"{path}: record {records} truncated "
                    f"({len(frame)} of {incl_len} bytes)"
                )
            records += 1
            try:
                dst = _ethernet_dst(frame)
            except _Skip as skip:
                counters.count_skipped(skip.args[0])
                continue
            counters.count_parsed("ipv4")
            packets.append(
                PacketRecord(timestamp=ts_sec + ts_frac * fraction, dst=dst)
            )
        counters.verify(records)
        return PacketDump(
            packets=packets,
            counters=counters,
            records=records,
            linktype=linktype,
            big_endian=(order == ">"),
            nanosecond=(fraction == 1e-9),
            source=str(path),
        )
