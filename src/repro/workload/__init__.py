"""Workload generation: synthetic RIBs, traffic, update streams, datasets."""

from repro.workload.datasets import (
    DEFAULT_SIZE_SCALE,
    ROUTERS,
    RouterDataset,
    router_by_id,
    router_rib,
)
from repro.workload.ribgen import (
    DEFAULT_LENGTH_DISTRIBUTION,
    RibParameters,
    generate_rib,
    length_histogram,
    rib_trie,
)
from repro.workload.traces import (
    TraceFormatError,
    load_faults,
    load_packets,
    load_table,
    load_updates,
    save_faults,
    save_packets,
    save_table,
    save_updates,
)
from repro.workload.profiles import (
    FILE_WORKLOAD_PREFIX,
    WORKLOADS,
    FileWorkload,
    WorkloadProfile,
    file_workload,
    is_file_workload,
    resolve_workload,
    workload_profile,
)
from repro.workload.trafficgen import TrafficGenerator, TrafficParameters
from repro.workload.updategen import (
    UpdateGenerator,
    UpdateKind,
    UpdateMessage,
    UpdateParameters,
)

__all__ = [
    "DEFAULT_LENGTH_DISTRIBUTION",
    "DEFAULT_SIZE_SCALE",
    "FILE_WORKLOAD_PREFIX",
    "FileWorkload",
    "ROUTERS",
    "RibParameters",
    "RouterDataset",
    "TraceFormatError",
    "TrafficGenerator",
    "TrafficParameters",
    "UpdateGenerator",
    "UpdateKind",
    "UpdateMessage",
    "UpdateParameters",
    "WORKLOADS",
    "WorkloadProfile",
    "file_workload",
    "generate_rib",
    "is_file_workload",
    "length_histogram",
    "load_faults",
    "load_packets",
    "load_table",
    "load_updates",
    "resolve_workload",
    "rib_trie",
    "router_by_id",
    "router_rib",
    "save_faults",
    "save_packets",
    "save_table",
    "save_updates",
    "workload_profile",
]
