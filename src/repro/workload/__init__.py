"""Workload generation: synthetic RIBs, traffic, update streams, datasets."""

from repro.workload.datasets import (
    DEFAULT_SIZE_SCALE,
    ROUTERS,
    RouterDataset,
    router_by_id,
    router_rib,
)
from repro.workload.ribgen import (
    DEFAULT_LENGTH_DISTRIBUTION,
    RibParameters,
    generate_rib,
    length_histogram,
    rib_trie,
)
from repro.workload.traces import (
    TraceFormatError,
    load_faults,
    load_packets,
    load_table,
    load_updates,
    save_faults,
    save_packets,
    save_table,
    save_updates,
)
from repro.workload.profiles import (
    WORKLOADS,
    WorkloadProfile,
    workload_profile,
)
from repro.workload.trafficgen import TrafficGenerator, TrafficParameters
from repro.workload.updategen import (
    UpdateGenerator,
    UpdateKind,
    UpdateMessage,
    UpdateParameters,
)

__all__ = [
    "DEFAULT_LENGTH_DISTRIBUTION",
    "DEFAULT_SIZE_SCALE",
    "ROUTERS",
    "RibParameters",
    "RouterDataset",
    "TraceFormatError",
    "TrafficGenerator",
    "TrafficParameters",
    "UpdateGenerator",
    "UpdateKind",
    "UpdateMessage",
    "UpdateParameters",
    "WORKLOADS",
    "WorkloadProfile",
    "generate_rib",
    "length_histogram",
    "load_faults",
    "load_packets",
    "load_table",
    "load_updates",
    "rib_trie",
    "router_by_id",
    "router_rib",
    "save_faults",
    "save_packets",
    "save_table",
    "save_updates",
    "workload_profile",
]
