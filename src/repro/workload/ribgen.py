"""Synthetic RIB generator — stand-in for the RIPE RIS snapshots.

The paper measures compression on 12 real backbone tables.  Offline, we
synthesise tables that reproduce the structural properties those results
depend on (DESIGN.md §2):

* the prefix-length histogram of the 2011-era default-free zone (mass
  concentrated at /24 and /16, nothing shorter than /8);
* allocation structure: prefixes cluster inside provider blocks, and a
  block's more-specifics usually share the block's next hop (traffic
  engineering punches out the exceptions).  This is what makes real tables
  compressible — ONRTC's ratio is driven by how many more-specifics are
  redundant with their covering aggregate;
* a small next-hop alphabet (a router has tens of peers, not thousands).

Everything is deterministic in the seed, so each of the paper's 12 routers
maps to a reproducible synthetic table (see :mod:`repro.workload.datasets`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.prefix import Prefix
from repro.trie.trie import BinaryTrie

Route = Tuple[Prefix, int]

#: Approximate mass of announced prefix lengths in a 2011 DFZ table
#: (RIPE RIS shape: a spike at /24, a secondary mode at /16).
DEFAULT_LENGTH_DISTRIBUTION: Dict[int, float] = {
    8: 0.004,
    9: 0.002,
    10: 0.004,
    11: 0.008,
    12: 0.014,
    13: 0.022,
    14: 0.030,
    15: 0.032,
    16: 0.110,
    17: 0.034,
    18: 0.052,
    19: 0.068,
    20: 0.078,
    21: 0.066,
    22: 0.096,
    23: 0.066,
    24: 0.310,
    25: 0.002,
    26: 0.002,
}


@dataclass
class RibParameters:
    """Tunables of the synthetic table.

    ``aggregation`` is the probability that a prefix inside an allocation
    block uses the block's dominant next hop rather than a random one, and
    ``announce_aggregate`` the probability that the block's own covering
    aggregate is announced too.  Real tables mix both behaviours: redundant
    more-specifics under an announced aggregate (which ONRTC elides) and
    clusters of same-hop standalone prefixes (which ONRTC merges).  The
    defaults are calibrated so ONRTC lands near the paper's ~71% average
    (checked in ``tests/workload/test_ribgen.py``).
    """

    size: int = 30_000
    hop_count: int = 24
    aggregation: float = 0.94
    announce_aggregate: float = 0.30
    super_aggregate: float = 0.04
    super_length_range: Tuple[int, int] = (8, 11)
    allocated_slash8_count: int = 72
    allocation_skew: float = 0.8
    hop_coherence: float = 0.85
    block_length_range: Tuple[int, int] = (12, 16)
    routes_per_block_mean: float = 14.0
    length_distribution: Dict[int, float] = field(
        default_factory=lambda: dict(DEFAULT_LENGTH_DISTRIBUTION)
    )
    include_default_route: bool = False


def generate_rib(
    seed: int, parameters: Optional[RibParameters] = None
) -> List[Route]:
    """Generate a synthetic routing table, deterministic in ``seed``.

    The table is returned in no particular order and contains no duplicate
    prefixes; overlap between blocks (and of course between an aggregate and
    its more-specifics) is present exactly as in real tables.
    """
    params = parameters or RibParameters()
    rng = random.Random(seed)
    lengths, weights = zip(*sorted(params.length_distribution.items()))
    routes: Dict[Prefix, int] = {}
    if params.include_default_route:
        routes[Prefix.root()] = 0

    # Real address space is far from uniformly announced: allocations
    # concentrate in a subset of /8s with skewed density.  This is what
    # pushes sub-tree carve points below the covering aggregates (and what
    # makes Figure 9's CLPL redundancy appear at all).
    allocated = rng.sample(range(256), min(256, params.allocated_slash8_count))
    slash8_weights = [
        1.0 / (rank ** params.allocation_skew)
        for rank in range(1, len(allocated) + 1)
    ]
    # Routes in the same region tend to share an exit (the announcing AS
    # peers at one place), so next hops are spatially coherent: each /8 has
    # a dominant hop that most of its blocks adopt.
    region_hop = {eight: rng.randrange(params.hop_count) for eight in allocated}

    while len(routes) < params.size:
        block_length = rng.randint(*params.block_length_range)
        eight = rng.choices(allocated, slash8_weights)[0]
        tail_bits = block_length - 8
        block = Prefix(
            (eight << tail_bits) | (rng.getrandbits(tail_bits) if tail_bits else 0),
            block_length,
        )
        if rng.random() < params.hop_coherence:
            block_hop = region_hop[eight]
        else:
            block_hop = rng.randrange(params.hop_count)
        if rng.random() < params.announce_aggregate:
            routes.setdefault(block, block_hop)
        if rng.random() < params.super_aggregate:
            # A short provider aggregate covering this block (the kind of
            # route that forces sub-tree partitioning to duplicate covering
            # prefixes into carved buckets).
            super_length = rng.randint(*params.super_length_range)
            super_block = Prefix(
                block.value >> (block_length - super_length), super_length
            )
            routes.setdefault(super_block, block_hop)
        # Number of prefixes announced inside this allocation block.
        fill = min(
            1 + int(rng.expovariate(1.0 / params.routes_per_block_mean)),
            params.size - len(routes),
        )
        for _ in range(fill):
            target_length = rng.choices(lengths, weights)[0]
            if target_length <= block_length:
                target_length = min(32, block_length + rng.randint(1, 8))
            extra = target_length - block_length
            value = (block.value << extra) | rng.getrandbits(extra)
            specific = Prefix(value, target_length)
            if rng.random() < params.aggregation:
                hop = block_hop
            else:
                hop = rng.randrange(params.hop_count)
            routes.setdefault(specific, hop)

    return list(routes.items())


def rib_trie(seed: int, parameters: Optional[RibParameters] = None) -> BinaryTrie:
    """Generate a synthetic table directly as a trie."""
    return BinaryTrie.from_routes(generate_rib(seed, parameters))


def length_histogram(routes: Sequence[Route]) -> Dict[int, int]:
    """Observed prefix-length histogram of a table."""
    histogram: Dict[int, int] = {}
    for prefix, _ in routes:
        histogram[prefix.length] = histogram.get(prefix.length, 0) + 1
    return dict(sorted(histogram.items()))
