"""Plain-text (de)serialisation of tables, update streams and traffic.

A reproduction should let its artefacts be inspected and replayed.  The
formats are deliberately trivial:

* routing table — ``<prefix> <next_hop>`` per line;
* update trace — ``<timestamp> announce <prefix> <hop>`` or
  ``<timestamp> withdraw <prefix>``;
* packet trace — one dotted-quad destination per line;
* fault schedule — optional ``seed <n>`` line, then
  ``<cycle> chip-down <chip>`` / ``<cycle> chip-up <chip>`` /
  ``<cycle> corrupt <chip>`` / ``<cycle> stall <chip> <cycles>`` /
  ``<cycle> storm <updates>`` / ``<cycle> kill-primary`` /
  ``<cycle> kill-backup``.

Lines starting with ``#`` are comments everywhere.

Gzip is transparent in both directions: loaders sniff the two magic
bytes (so a ``.txt`` that is secretly gzipped still reads), and savers
compress when the path ends in ``.gz`` — matching the ingest plane,
whose outputs these loaders consume.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO, Iterable, List, Sequence, Tuple, Union

from repro.faults.schedule import FaultEvent, FaultKind, FaultSchedule
from repro.net.prefix import Prefix, format_address, parse_address
from repro.workload.updategen import UpdateKind, UpdateMessage

Route = Tuple[Prefix, int]
PathLike = Union[str, Path]


class TraceFormatError(ValueError):
    """A trace file line did not parse."""


def _open_read(path: PathLike) -> IO[str]:
    """Open a trace for reading, decompressing gzip by magic bytes."""
    with open(path, "rb") as probe:
        magic = probe.read(2)
    if magic == b"\x1f\x8b":
        return gzip.open(path, "rt", encoding="ascii")
    return open(path, "r", encoding="ascii")


def _open_write(path: PathLike) -> IO[str]:
    """Open a trace for writing, compressing when the suffix is .gz."""
    if str(path).endswith(".gz"):
        return gzip.open(path, "wt", encoding="ascii")
    return open(path, "w", encoding="ascii")


def _lines(path: PathLike) -> Iterable[Tuple[int, str]]:
    with _open_read(path) as handle:
        for number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if line and not line.startswith("#"):
                yield number, line


# -- routing tables -----------------------------------------------------


def save_table(routes: Sequence[Route], path: PathLike) -> None:
    """Write a routing table, one ``prefix hop`` per line."""
    with _open_write(path) as handle:
        handle.write("# repro routing table v1\n")
        for prefix, hop in routes:
            handle.write(f"{prefix} {hop}\n")


def load_table(path: PathLike) -> List[Route]:
    """Read a routing table written by :func:`save_table`."""
    routes: List[Route] = []
    for number, line in _lines(path):
        parts = line.split()
        if len(parts) != 2:
            raise TraceFormatError(f"{path}:{number}: expected 'prefix hop'")
        try:
            routes.append((Prefix.parse(parts[0]), int(parts[1])))
        except ValueError as exc:
            raise TraceFormatError(f"{path}:{number}: {exc}") from exc
    return routes


# -- update traces --------------------------------------------------------


def save_updates(messages: Sequence[UpdateMessage], path: PathLike) -> None:
    """Write an update trace."""
    with _open_write(path) as handle:
        handle.write("# repro update trace v1\n")
        for message in messages:
            if message.kind is UpdateKind.ANNOUNCE:
                handle.write(
                    f"{message.timestamp:.6f} announce "
                    f"{message.prefix} {message.next_hop}\n"
                )
            else:
                handle.write(
                    f"{message.timestamp:.6f} withdraw {message.prefix}\n"
                )


def load_updates(path: PathLike) -> List[UpdateMessage]:
    """Read an update trace written by :func:`save_updates`."""
    messages: List[UpdateMessage] = []
    for number, line in _lines(path):
        parts = line.split()
        try:
            if len(parts) == 4 and parts[1] == "announce":
                messages.append(
                    UpdateMessage(
                        UpdateKind.ANNOUNCE,
                        Prefix.parse(parts[2]),
                        int(parts[3]),
                        float(parts[0]),
                    )
                )
            elif len(parts) == 3 and parts[1] == "withdraw":
                messages.append(
                    UpdateMessage(
                        UpdateKind.WITHDRAW,
                        Prefix.parse(parts[2]),
                        None,
                        float(parts[0]),
                    )
                )
            else:
                raise TraceFormatError(
                    f"{path}:{number}: unrecognised update line"
                )
        except ValueError as exc:
            raise TraceFormatError(f"{path}:{number}: {exc}") from exc
    return messages


# -- packet traces ----------------------------------------------------------


def save_packets(addresses: Sequence[int], path: PathLike) -> None:
    """Write a destination-address trace."""
    with _open_write(path) as handle:
        handle.write("# repro packet trace v1\n")
        for address in addresses:
            handle.write(format_address(address) + "\n")


def load_packets(path: PathLike) -> List[int]:
    """Read a destination-address trace."""
    addresses: List[int] = []
    for number, line in _lines(path):
        try:
            addresses.append(parse_address(line))
        except ValueError as exc:
            raise TraceFormatError(f"{path}:{number}: {exc}") from exc
    return addresses


# -- fault schedules ---------------------------------------------------------


def save_faults(schedule: FaultSchedule, path: PathLike) -> None:
    """Write a fault schedule (see :mod:`repro.faults.schedule`)."""
    with _open_write(path) as handle:
        handle.write("# repro fault schedule v1\n")
        handle.write(f"seed {schedule.seed}\n")
        for event in schedule.events:
            if event.kind is FaultKind.STALL:
                handle.write(
                    f"{event.cycle} stall {event.chip} {event.duration}\n"
                )
            elif event.kind is FaultKind.STORM:
                handle.write(f"{event.cycle} storm {event.count}\n")
            elif event.kind in (FaultKind.KILL_PRIMARY, FaultKind.KILL_BACKUP):
                handle.write(f"{event.cycle} {event.kind.value}\n")
            else:
                handle.write(
                    f"{event.cycle} {event.kind.value} {event.chip}\n"
                )


def load_faults(path: PathLike) -> FaultSchedule:
    """Read a fault schedule written by :func:`save_faults`."""
    events: List[FaultEvent] = []
    seed = 0
    for number, line in _lines(path):
        parts = line.split()
        try:
            if parts[0] == "seed" and len(parts) == 2:
                seed = int(parts[1])
                continue
            cycle = int(parts[0])
            keyword = parts[1] if len(parts) > 1 else ""
            if keyword in ("chip-down", "chip-up", "corrupt") and len(parts) == 3:
                kind = FaultKind(keyword)
                events.append(FaultEvent(cycle, kind, chip=int(parts[2])))
            elif keyword == "stall" and len(parts) == 4:
                events.append(
                    FaultEvent(
                        cycle,
                        FaultKind.STALL,
                        chip=int(parts[2]),
                        duration=int(parts[3]),
                    )
                )
            elif keyword == "storm" and len(parts) == 3:
                events.append(
                    FaultEvent(cycle, FaultKind.STORM, count=int(parts[2]))
                )
            elif (
                keyword in ("kill-primary", "kill-backup") and len(parts) == 2
            ):
                events.append(FaultEvent(cycle, FaultKind(keyword)))
            else:
                raise TraceFormatError(
                    f"{path}:{number}: unrecognised fault line"
                )
        except (ValueError, IndexError) as exc:
            if isinstance(exc, TraceFormatError):
                raise
            raise TraceFormatError(f"{path}:{number}: {exc}") from exc
    return FaultSchedule(events=events, seed=seed)
