"""Synthetic BGP update stream — stand-in for the RIPE 24-hour update trace.

TTF is measured over a stream of announce/withdraw messages.  What matters
for the measurements (and what we reproduce) is:

* the announce/withdraw mix and how often an announce re-announces an
  existing prefix with a new hop versus introducing a new one;
* **path locality** — updates cluster on flapping prefixes;
* **burstiness** — the paper quotes peaks of 35K messages/second; arrival
  timestamps come from an on/off process with heavy bursts.

The generator mutates a shadow copy of the table so the stream is always
consistent (withdrawals target live prefixes, announcements never collide
incorrectly).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.net.prefix import Prefix

Route = Tuple[Prefix, int]


class UpdateKind(Enum):
    """BGP message type (modify is an announce of an existing prefix)."""

    ANNOUNCE = "announce"
    WITHDRAW = "withdraw"


@dataclass(frozen=True)
class UpdateMessage:
    """One routing update: what arrives at the control plane.

    ``timestamp`` is in seconds since the start of the trace; ``next_hop``
    is ``None`` for withdrawals.
    """

    kind: UpdateKind
    prefix: Prefix
    next_hop: Optional[int]
    timestamp: float

    def __post_init__(self) -> None:
        if self.kind is UpdateKind.ANNOUNCE and self.next_hop is None:
            raise ValueError("announce needs a next hop")
        if self.kind is UpdateKind.WITHDRAW and self.next_hop is not None:
            raise ValueError("withdraw carries no next hop")


@dataclass
class UpdateParameters:
    """Mix and tempo of the synthetic stream.

    The mix follows the long-observed BGP pattern: most messages touch
    already-known prefixes (hop churn / flapping), and announcements
    outnumber withdrawals.
    """

    modify_fraction: float = 0.55
    new_prefix_fraction: float = 0.20
    withdraw_fraction: float = 0.25
    flap_concentration: float = 0.70
    flap_pool_size: int = 256
    mean_rate_per_second: float = 2_000.0
    burst_rate_multiplier: float = 15.0
    burst_probability: float = 0.05
    burst_length_mean: float = 400.0
    hop_count: int = 24

    def __post_init__(self) -> None:
        total = (
            self.modify_fraction
            + self.new_prefix_fraction
            + self.withdraw_fraction
        )
        if abs(total - 1.0) > 1e-9:
            raise ValueError("update mix fractions must sum to 1")


class UpdateGenerator:
    """Deterministic, table-consistent BGP update stream."""

    def __init__(
        self,
        routes: Sequence[Route],
        seed: int = 0,
        parameters: Optional[UpdateParameters] = None,
    ) -> None:
        self.params = parameters or UpdateParameters()
        self._rng = random.Random(seed)
        self._live: dict = dict(routes)
        self._prefix_pool: List[Prefix] = list(self._live)
        self._flap_pool: List[Prefix] = (
            self._rng.sample(
                self._prefix_pool,
                min(self.params.flap_pool_size, len(self._prefix_pool)),
            )
            if self._prefix_pool
            else []
        )
        self._clock = 0.0
        self._burst_remaining = 0

    # ------------------------------------------------------------------

    def _advance_clock(self) -> float:
        params = self.params
        if self._burst_remaining > 0:
            self._burst_remaining -= 1
            rate = params.mean_rate_per_second * params.burst_rate_multiplier
        else:
            if self._rng.random() < params.burst_probability:
                self._burst_remaining = max(
                    1, int(self._rng.expovariate(1.0 / params.burst_length_mean))
                )
            rate = params.mean_rate_per_second
        self._clock += self._rng.expovariate(rate)
        return self._clock

    def _pick_existing(self) -> Optional[Prefix]:
        if not self._live:
            return None
        if self._flap_pool and self._rng.random() < self.params.flap_concentration:
            prefix = self._flap_pool[self._rng.randrange(len(self._flap_pool))]
            if prefix in self._live:
                return prefix
        # Fall back to any live prefix (pool may contain withdrawn entries).
        for _ in range(8):
            prefix = self._prefix_pool[self._rng.randrange(len(self._prefix_pool))]
            if prefix in self._live:
                return prefix
        return next(iter(self._live))

    def _fresh_prefix(self) -> Prefix:
        while True:
            length = self._rng.choice((16, 20, 22, 24, 24, 24))
            prefix = Prefix(self._rng.getrandbits(length), length)
            if prefix not in self._live:
                return prefix

    def next_message(self) -> UpdateMessage:
        """Generate the next update, mutating the shadow table."""
        params = self.params
        timestamp = self._advance_clock()
        roll = self._rng.random()
        if roll < params.withdraw_fraction and self._live:
            prefix = self._pick_existing()
            assert prefix is not None
            del self._live[prefix]
            return UpdateMessage(UpdateKind.WITHDRAW, prefix, None, timestamp)
        if roll < params.withdraw_fraction + params.new_prefix_fraction or not self._live:
            prefix = self._fresh_prefix()
            hop = self._rng.randrange(params.hop_count)
            self._live[prefix] = hop
            self._prefix_pool.append(prefix)
            if (
                len(self._flap_pool) < params.flap_pool_size
                and self._rng.random() < 0.25
            ):
                self._flap_pool.append(prefix)
            return UpdateMessage(UpdateKind.ANNOUNCE, prefix, hop, timestamp)
        prefix = self._pick_existing()
        assert prefix is not None
        old_hop = self._live[prefix]
        hop = self._rng.randrange(params.hop_count)
        if hop == old_hop:
            hop = (hop + 1) % params.hop_count
        self._live[prefix] = hop
        return UpdateMessage(UpdateKind.ANNOUNCE, prefix, hop, timestamp)

    def take(self, count: int) -> List[UpdateMessage]:
        """The next ``count`` messages."""
        return [self.next_message() for _ in range(count)]

    def __iter__(self) -> Iterator[UpdateMessage]:
        return self

    def __next__(self) -> UpdateMessage:
        return self.next_message()
