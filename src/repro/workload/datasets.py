"""The paper's datasets, as reproducible synthetic stand-ins.

Table I lists the 12 RIPE RIS collectors whose RIBs drive Figure 8.  Each
gets a fixed seed here, so "rrc01's table" is a deterministic synthetic
table of the same character (see :mod:`repro.workload.ribgen` for what is
preserved).  Sizes follow the 2011-era spread of DFZ table sizes, scaled by
``size_scale`` so tests and benches can run at laptop scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.workload.ribgen import RibParameters, Route, generate_rib


@dataclass(frozen=True)
class RouterDataset:
    """One collector from Table I."""

    router_id: str
    location: str
    seed: int
    base_size: int


#: Table I — locations of the 12 RIPE RIS collectors (base sizes reflect the
#: relative table sizes such collectors carried in late 2011).
ROUTERS: Tuple[RouterDataset, ...] = (
    RouterDataset("rrc01", "LINX, London", 101, 380_000),
    RouterDataset("rrc03", "AMS-IX, Amsterdam", 103, 390_000),
    RouterDataset("rrc04", "CIXP, Geneva", 104, 375_000),
    RouterDataset("rrc05", "VIX, Vienna", 105, 370_000),
    RouterDataset("rrc06", "Otemachi, Japan", 106, 355_000),
    RouterDataset("rrc07", "Stockholm, Sweden", 107, 368_000),
    RouterDataset("rrc11", "New York (NY), USA", 111, 385_000),
    RouterDataset("rrc12", "Frankfurt, Germany", 112, 392_000),
    RouterDataset("rrc13", "Moscow, Russia", 113, 360_000),
    RouterDataset("rrc14", "Palo Alto, USA", 114, 372_000),
    RouterDataset("rrc15", "Sao Paulo, Brazil", 115, 350_000),
    RouterDataset("rrc16", "Miami, USA", 116, 366_000),
)

#: Default scale-down so 12 tables build in seconds instead of minutes.
DEFAULT_SIZE_SCALE = 1 / 16


def router_by_id(router_id: str) -> RouterDataset:
    """Look a collector up by its Table I identifier."""
    for router in ROUTERS:
        if router.router_id == router_id:
            return router
    raise KeyError(f"unknown router {router_id!r}")


def router_rib(
    router: RouterDataset,
    size_scale: float = DEFAULT_SIZE_SCALE,
    parameters: Optional[RibParameters] = None,
) -> List[Route]:
    """The synthetic RIB standing in for one collector's snapshot."""
    params = parameters or RibParameters()
    params = RibParameters(
        size=max(64, int(router.base_size * size_scale)),
        hop_count=params.hop_count,
        aggregation=params.aggregation,
        announce_aggregate=params.announce_aggregate,
        block_length_range=params.block_length_range,
        routes_per_block_mean=params.routes_per_block_mean,
        length_distribution=params.length_distribution,
        include_default_route=params.include_default_route,
    )
    return generate_rib(router.seed, params)
