"""Spec-addressable workload profiles for the campaign runner.

A :class:`WorkloadProfile` names one (traffic, update) generator regime
so a campaign spec can say ``workload = "storm"`` instead of spelling
out a dozen generator parameters.  The registry deliberately spans the
regimes the CRAM-lens argument (PAPERS.md) says a lookup system must be
evaluated across, not just the single calibrated point of the paper's
figures:

* ``fig15`` — the paper's load-balance workload: Zipf 1.1 skew with the
  default temporal locality, and the long-observed BGP update mix;
* ``skewed`` — an adversarially hot trace (Zipf 1.6, 95% locality):
  most packets hit a handful of prefixes, the regime where DRed load
  diversion does all the work;
* ``storm`` — update-dominated: bursty announce/withdraw churn (every
  burst ~30x the mean rate) against mildly skewed traffic, the regime
  where the bounded queue's shed/defer/flush backpressure engages;
* ``uniform`` — no skew, no locality: the worst case for any cache, the
  regime where raw per-chip lookup throughput is all that matters.

Profiles are pure data; the generators they build are the existing
:class:`~repro.workload.trafficgen.TrafficGenerator` and
:class:`~repro.workload.updategen.UpdateGenerator`, so a profile name
plus a seed fully determines the byte stream a campaign cell sees.

Beyond the synthetic registry, ``file:DIR`` names a
:class:`FileWorkload`: a directory of ingested traces (``table.txt``
required, ``updates.txt``/``packets.txt`` optional, ``.gz`` accepted)
produced by ``repro ingest``.  That is how real MRT/pcap data enters
campaign cells and the serve bench; :meth:`FileWorkload.provenance`
records each source file's path and SHA-256 so a report can say
exactly which bytes a cell ran on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.net.prefix import Prefix
from repro.workload.trafficgen import TrafficGenerator, TrafficParameters
from repro.workload.traces import load_packets, load_table, load_updates
from repro.workload.updategen import (
    UpdateGenerator,
    UpdateMessage,
    UpdateParameters,
)

Route = Tuple[Prefix, int]

#: Workload names with this prefix are file-sourced, not synthetic.
FILE_WORKLOAD_PREFIX = "file:"


@dataclass(frozen=True)
class WorkloadProfile:
    """One named (traffic, update) generator regime."""

    name: str
    description: str
    traffic: TrafficParameters = field(default_factory=TrafficParameters)
    updates: UpdateParameters = field(default_factory=UpdateParameters)
    #: Multiplier a runner applies to its update budget — storm regimes
    #: push proportionally more control-plane churn per cell.
    update_weight: float = 1.0

    def traffic_generator(
        self, routes: Sequence[Route], seed: int
    ) -> TrafficGenerator:
        return TrafficGenerator(routes, seed=seed, parameters=self.traffic)

    def update_generator(
        self, routes: Sequence[Route], seed: int
    ) -> UpdateGenerator:
        return UpdateGenerator(routes, seed=seed, parameters=self.updates)

    def take_updates(
        self, routes: Sequence[Route], seed: int, count: int
    ) -> List[UpdateMessage]:
        """The cell's update stream, scaled by :attr:`update_weight`."""
        scaled = max(1, int(count * self.update_weight))
        return self.update_generator(routes, seed).take(scaled)


WORKLOADS: Dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in (
        WorkloadProfile(
            name="fig15",
            description="paper's load-balance point: Zipf 1.1, default mix",
        ),
        WorkloadProfile(
            name="skewed",
            description="hot-prefix regime: Zipf 1.6, 95% locality",
            traffic=TrafficParameters(
                zipf_exponent=1.6,
                locality=0.95,
                working_set_size=128,
            ),
        ),
        WorkloadProfile(
            name="storm",
            description="update-dominated: heavy announce/withdraw bursts",
            traffic=TrafficParameters(zipf_exponent=1.2),
            updates=UpdateParameters(
                burst_probability=0.35,
                burst_rate_multiplier=30.0,
                burst_length_mean=200.0,
                flap_concentration=0.85,
            ),
            update_weight=2.0,
        ),
        WorkloadProfile(
            name="uniform",
            description="no skew, no locality: the cache's worst case",
            traffic=TrafficParameters(
                zipf_exponent=0.01,
                locality=0.0,
                working_set_size=1,
            ),
        ),
    )
}


def workload_profile(name: str) -> WorkloadProfile:
    """Look up a profile by name; unknown names list the registry."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload profile {name!r}; "
            f"known: {', '.join(sorted(WORKLOADS))}"
        ) from None


# -- file-sourced workloads ----------------------------------------------


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


@dataclass(frozen=True)
class FileWorkload:
    """A workload whose traces come from files, not generators.

    The directory layout is what ``repro ingest`` writes: ``table.txt``
    (required), ``updates.txt`` and ``packets.txt`` (optional), each
    also accepted with a ``.gz`` suffix.  Missing pieces fall back to
    the synthetic generators over the file-sourced table, so a RIB-only
    ingest is already a runnable workload.
    """

    name: str
    directory: Path

    @property
    def description(self) -> str:
        return f"file-sourced traces from {self.directory}"

    def _find(self, stem: str) -> Optional[Path]:
        for suffix in ("", ".gz"):
            candidate = self.directory / f"{stem}{suffix}"
            if candidate.is_file():
                return candidate
        return None

    @property
    def table_path(self) -> Optional[Path]:
        return self._find("table.txt")

    @property
    def updates_path(self) -> Optional[Path]:
        return self._find("updates.txt")

    @property
    def packets_path(self) -> Optional[Path]:
        return self._find("packets.txt")

    def validate(self) -> None:
        """Raise ``ValueError`` unless the directory is usable."""
        if not self.directory.is_dir():
            raise ValueError(
                f"workload {self.name!r}: {self.directory} is not a directory"
            )
        if self.table_path is None:
            raise ValueError(
                f"workload {self.name!r}: no table.txt(.gz) in "
                f"{self.directory} (run 'repro ingest rib' first)"
            )

    def load_routes(self) -> List[Route]:
        self.validate()
        return load_table(self.table_path)

    def load_updates(self) -> Optional[List[UpdateMessage]]:
        path = self.updates_path
        return None if path is None else load_updates(path)

    def load_packets(self) -> Optional[List[int]]:
        path = self.packets_path
        return None if path is None else load_packets(path)

    def provenance(self) -> Dict[str, Dict[str, object]]:
        """``{trace kind: {path, sha256, bytes}}`` for every present file."""
        record: Dict[str, Dict[str, object]] = {}
        for kind, path in (
            ("table", self.table_path),
            ("updates", self.updates_path),
            ("packets", self.packets_path),
        ):
            if path is not None:
                record[kind] = {
                    "path": str(path),
                    "sha256": _sha256(path),
                    "bytes": path.stat().st_size,
                }
        return record


def is_file_workload(name: str) -> bool:
    return name.startswith(FILE_WORKLOAD_PREFIX)


def file_workload(name: str) -> FileWorkload:
    """Build a :class:`FileWorkload` from a ``file:DIR`` name."""
    if not is_file_workload(name):
        raise ValueError(f"not a file workload name: {name!r}")
    raw = name[len(FILE_WORKLOAD_PREFIX) :]
    if not raw:
        raise ValueError("file workload needs a directory: file:DIR")
    return FileWorkload(name=name, directory=Path(raw))


def resolve_workload(
    name: str,
) -> Union[WorkloadProfile, FileWorkload]:
    """Either a registry profile or a :class:`FileWorkload`."""
    if is_file_workload(name):
        return file_workload(name)
    return workload_profile(name)
