"""Spec-addressable workload profiles for the campaign runner.

A :class:`WorkloadProfile` names one (traffic, update) generator regime
so a campaign spec can say ``workload = "storm"`` instead of spelling
out a dozen generator parameters.  The registry deliberately spans the
regimes the CRAM-lens argument (PAPERS.md) says a lookup system must be
evaluated across, not just the single calibrated point of the paper's
figures:

* ``fig15`` — the paper's load-balance workload: Zipf 1.1 skew with the
  default temporal locality, and the long-observed BGP update mix;
* ``skewed`` — an adversarially hot trace (Zipf 1.6, 95% locality):
  most packets hit a handful of prefixes, the regime where DRed load
  diversion does all the work;
* ``storm`` — update-dominated: bursty announce/withdraw churn (every
  burst ~30x the mean rate) against mildly skewed traffic, the regime
  where the bounded queue's shed/defer/flush backpressure engages;
* ``uniform`` — no skew, no locality: the worst case for any cache, the
  regime where raw per-chip lookup throughput is all that matters.

Profiles are pure data; the generators they build are the existing
:class:`~repro.workload.trafficgen.TrafficGenerator` and
:class:`~repro.workload.updategen.UpdateGenerator`, so a profile name
plus a seed fully determines the byte stream a campaign cell sees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.net.prefix import Prefix
from repro.workload.trafficgen import TrafficGenerator, TrafficParameters
from repro.workload.updategen import (
    UpdateGenerator,
    UpdateMessage,
    UpdateParameters,
)

Route = Tuple[Prefix, int]


@dataclass(frozen=True)
class WorkloadProfile:
    """One named (traffic, update) generator regime."""

    name: str
    description: str
    traffic: TrafficParameters = field(default_factory=TrafficParameters)
    updates: UpdateParameters = field(default_factory=UpdateParameters)
    #: Multiplier a runner applies to its update budget — storm regimes
    #: push proportionally more control-plane churn per cell.
    update_weight: float = 1.0

    def traffic_generator(
        self, routes: Sequence[Route], seed: int
    ) -> TrafficGenerator:
        return TrafficGenerator(routes, seed=seed, parameters=self.traffic)

    def update_generator(
        self, routes: Sequence[Route], seed: int
    ) -> UpdateGenerator:
        return UpdateGenerator(routes, seed=seed, parameters=self.updates)

    def take_updates(
        self, routes: Sequence[Route], seed: int, count: int
    ) -> List[UpdateMessage]:
        """The cell's update stream, scaled by :attr:`update_weight`."""
        scaled = max(1, int(count * self.update_weight))
        return self.update_generator(routes, seed).take(scaled)


WORKLOADS: Dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in (
        WorkloadProfile(
            name="fig15",
            description="paper's load-balance point: Zipf 1.1, default mix",
        ),
        WorkloadProfile(
            name="skewed",
            description="hot-prefix regime: Zipf 1.6, 95% locality",
            traffic=TrafficParameters(
                zipf_exponent=1.6,
                locality=0.95,
                working_set_size=128,
            ),
        ),
        WorkloadProfile(
            name="storm",
            description="update-dominated: heavy announce/withdraw bursts",
            traffic=TrafficParameters(zipf_exponent=1.2),
            updates=UpdateParameters(
                burst_probability=0.35,
                burst_rate_multiplier=30.0,
                burst_length_mean=200.0,
                flap_concentration=0.85,
            ),
            update_weight=2.0,
        ),
        WorkloadProfile(
            name="uniform",
            description="no skew, no locality: the cache's worst case",
            traffic=TrafficParameters(
                zipf_exponent=0.01,
                locality=0.0,
                working_set_size=1,
            ),
        ),
    )
}


def workload_profile(name: str) -> WorkloadProfile:
    """Look up a profile by name; unknown names list the registry."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload profile {name!r}; "
            f"known: {', '.join(sorted(WORKLOADS))}"
        ) from None
