"""Synthetic packet traffic — stand-in for the CAIDA Chicago trace.

Two properties of the real trace drive every lookup-engine result:

* **skew** — a small fraction of prefixes receives most packets, so even
  partitions carry wildly different loads (Table II: one chip sees 77.88% of
  traffic).  We draw destination prefixes from a Zipf-like rank distribution
  over the table.
* **temporal locality / burstiness** — the same destinations recur in
  bursts, which is what makes a small DRed achieve the >90% hit rates of
  Figure 17.  We model it with a working-set process: with probability
  ``locality`` the next packet repeats a recent destination; the working
  set itself is periodically partially resampled (bursts moving around).

Both knobs are explicit so benches can sweep them.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.net.prefix import Prefix

Route = Tuple[Prefix, int]


@dataclass
class TrafficParameters:
    """Tunables of the synthetic packet stream."""

    zipf_exponent: float = 1.1
    locality: float = 0.85
    working_set_size: int = 512
    burst_length_mean: float = 2_000.0
    reshuffle_fraction: float = 0.25


class TrafficGenerator:
    """Deterministic destination-address stream over a routing table.

    >>> routes = [(Prefix.from_bits("0"), 1), (Prefix.from_bits("1"), 2)]
    >>> stream = TrafficGenerator(routes, seed=1)
    >>> addresses = stream.take(10)
    >>> len(addresses)
    10
    """

    def __init__(
        self,
        routes: Sequence[Route],
        seed: int = 0,
        parameters: Optional[TrafficParameters] = None,
    ) -> None:
        if not routes:
            raise ValueError("traffic needs a non-empty routing table")
        self.params = parameters or TrafficParameters()
        self._rng = random.Random(seed)
        self._prefixes = [prefix for prefix, _ in routes]
        self._rng.shuffle(self._prefixes)
        # Zipf weights over the shuffled ranks; cumulative for sampling.
        weights = [
            1.0 / (rank ** self.params.zipf_exponent)
            for rank in range(1, len(self._prefixes) + 1)
        ]
        total = sum(weights)
        self._cumulative: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cumulative.append(acc)
        self._working_set: List[int] = []
        self._until_burst_end = self._next_burst_length()

    # ------------------------------------------------------------------

    def _next_burst_length(self) -> int:
        return max(1, int(self._rng.expovariate(1.0 / self.params.burst_length_mean)))

    def _sample_fresh(self) -> int:
        """Draw a fresh destination: Zipf prefix, uniform host inside it."""
        point = self._rng.random()
        rank = bisect_left(self._cumulative, point)
        rank = min(rank, len(self._prefixes) - 1)
        prefix = self._prefixes[rank]
        host_bits = 32 - prefix.length
        offset = self._rng.getrandbits(host_bits) if host_bits else 0
        return prefix.network | offset

    def _reshuffle_working_set(self) -> None:
        """A burst boundary: part of the hot set moves elsewhere."""
        keep = int(len(self._working_set) * (1.0 - self.params.reshuffle_fraction))
        self._rng.shuffle(self._working_set)
        del self._working_set[keep:]
        self._until_burst_end = self._next_burst_length()

    def __next__(self) -> int:
        return self.next_packet()

    def __iter__(self) -> Iterator[int]:
        return self

    def next_packet(self) -> int:
        """The next destination address."""
        if self._until_burst_end <= 0:
            self._reshuffle_working_set()
        self._until_burst_end -= 1
        working_set = self._working_set
        if working_set and self._rng.random() < self.params.locality:
            return working_set[self._rng.randrange(len(working_set))]
        address = self._sample_fresh()
        if len(working_set) >= self.params.working_set_size:
            working_set[self._rng.randrange(len(working_set))] = address
        else:
            working_set.append(address)
        return address

    def take(self, count: int) -> List[int]:
        """The next ``count`` destination addresses as a list.

        Batched fast path: one bound-locals loop instead of ``count``
        :meth:`next_packet` calls.  Draws from the RNG in exactly the same
        order, so ``take(n)`` and ``n`` single draws from the same seed
        produce identical streams (pinned by a regression test).
        """
        rng = self._rng
        rand = rng.random
        randrange = rng.randrange
        getrandbits = rng.getrandbits
        cumulative = self._cumulative
        prefixes = self._prefixes
        working_set = self._working_set
        locality = self.params.locality
        capacity = self.params.working_set_size
        last_rank = len(prefixes) - 1
        until = self._until_burst_end
        out: List[int] = []
        append_out = out.append
        for _ in range(count):
            if until <= 0:
                # Reshuffle mutates the working set in place, so the local
                # binding stays valid; only the burst counter needs syncing.
                self._reshuffle_working_set()
                until = self._until_burst_end
            until -= 1
            size = len(working_set)
            if size and rand() < locality:
                append_out(working_set[randrange(size)])
                continue
            rank = bisect_left(cumulative, rand())
            if rank > last_rank:
                rank = last_rank
            prefix = prefixes[rank]
            host_bits = 32 - prefix.length
            address = prefix.network | (getrandbits(host_bits) if host_bits else 0)
            if size >= capacity:
                working_set[randrange(size)] = address
            else:
                working_set.append(address)
            append_out(address)
        self._until_burst_end = until
        return out
