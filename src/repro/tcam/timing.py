"""TCAM cost model: converts counted operations into time.

The paper calibrates on a CYNSE70256 chip: 41.5 MHz search rate, so one
lookup (and, following the paper's assumption, one entry move) costs
1 s / 41.5 MHz ≈ 24 ns.  All TTF2/TTF3 numbers are produced by multiplying
operation counts by these constants, which is exactly how Section V does it.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Search rate of the CYNSE70256 used for calibration (Section V-A).
CYNSE70256_MHZ = 41.5

#: The paper's per-move (and per-lookup) cost in nanoseconds.
DEFAULT_MOVE_NS = 24.0


@dataclass(frozen=True)
class TcamCostModel:
    """Per-operation costs in nanoseconds.

    ``move_ns`` covers relocating one entry (the unit of the domino effect);
    ``write_ns`` a fresh slot program; ``search_ns`` one lookup. The paper
    treats all three as the same 24 ns constant, so that is the default.
    """

    search_ns: float = DEFAULT_MOVE_NS
    write_ns: float = DEFAULT_MOVE_NS
    move_ns: float = DEFAULT_MOVE_NS
    invalidate_ns: float = DEFAULT_MOVE_NS

    def update_cost_ns(
        self, moves: int, writes: int = 0, invalidates: int = 0
    ) -> float:
        """Time to apply one table update given its operation counts."""
        return (
            moves * self.move_ns
            + writes * self.write_ns
            + invalidates * self.invalidate_ns
        )

    def search_cost_ns(self, searches: int) -> float:
        """Time spent on ``searches`` lookups."""
        return searches * self.search_ns

    @classmethod
    def from_frequency_mhz(cls, mhz: float) -> "TcamCostModel":
        """Cost model for a chip running at ``mhz`` (all ops = one cycle)."""
        if mhz <= 0:
            raise ValueError("frequency must be positive")
        nanoseconds = 1_000.0 / mhz
        return cls(nanoseconds, nanoseconds, nanoseconds, nanoseconds)


#: The calibration model used throughout the benchmarks.
PAPER_COST_MODEL = TcamCostModel()
