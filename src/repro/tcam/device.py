"""Functional model of a TCAM chip.

The model is faithful to the properties the paper's arguments rest on:

* a search activates every (valid) slot of the searched region and returns
  the **lowest-index** match — that is what the priority encoder does.
  Correct LPM therefore requires longer prefixes at lower indices, which is
  exactly the layout constraint that causes the domino effect on update;
* with the priority encoder *disabled* (CLUE's configuration) the chip
  reports the unique match and raises if the table violates the
  disjointness contract — a multi-match on encoder-less hardware is
  undefined behaviour, and surfacing it loudly is what lets the test suite
  prove CLUE never needs the encoder;
* every slot write and every entry move is counted, because the paper
  converts update cost to ``moves × 24 ns``.

Regions (:class:`TcamRegion`) carve a chip into a main partition and a DRed
partition the way Figure 1 draws it; searches against a region only activate
that region's slots, which is the basis of the power accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.tcam.entry import TcamEntry


class TcamError(RuntimeError):
    """Raised on operations no real chip could perform."""


class MultipleMatchError(TcamError):
    """A search without priority encoder hit more than one slot.

    This is the hardware-level symptom of an overlapping table loaded into
    an encoder-less chip; it should be impossible after ONRTC.
    """


@dataclass
class TcamCounters:
    """Operation counters for one chip (feeds timing and power models)."""

    searches: int = 0
    activated_slots: int = 0
    writes: int = 0
    moves: int = 0
    invalidates: int = 0

    def snapshot(self) -> "TcamCounters":
        return TcamCounters(
            self.searches,
            self.activated_slots,
            self.writes,
            self.moves,
            self.invalidates,
        )


class Tcam:
    """One TCAM chip: a fixed array of ternary slots.

    >>> from repro.net.prefix import Prefix
    >>> chip = Tcam(capacity=4, priority_encoder=False)
    >>> chip.write(0, TcamEntry(Prefix.from_bits("10"), 7))
    >>> chip.search(0b10 << 30).next_hop
    7
    """

    def __init__(self, capacity: int, priority_encoder: bool = True) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.priority_encoder = priority_encoder
        self.slots: List[Optional[TcamEntry]] = [None] * capacity
        self.counters = TcamCounters()

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def search(
        self, address: int, start: int = 0, end: Optional[int] = None
    ) -> Optional[TcamEntry]:
        """Search ``[start, end)`` for ``address``; one hardware access.

        With the priority encoder the first (lowest-index) match wins; it is
        the layout manager's job to keep that equal to the longest match.
        Without it the match must be unique.
        """
        end = self.capacity if end is None else end
        self._check_range(start, end)
        self.counters.searches += 1
        self.counters.activated_slots += end - start
        found: Optional[TcamEntry] = None
        for index in range(start, end):
            entry = self.slots[index]
            if entry is not None and entry.matches(address):
                if self.priority_encoder:
                    return entry
                if found is not None:
                    raise MultipleMatchError(
                        f"slots matched twice for {address:#010x}: "
                        f"{found} and {entry}"
                    )
                found = entry
        return found

    # ------------------------------------------------------------------
    # Slot mutation
    # ------------------------------------------------------------------

    def write(self, index: int, entry: TcamEntry) -> None:
        """Program one slot (counts as one write)."""
        self._check_index(index)
        self.slots[index] = entry
        self.counters.writes += 1

    def invalidate(self, index: int) -> None:
        """Clear one slot (counts as one invalidate, not a move)."""
        self._check_index(index)
        self.slots[index] = None
        self.counters.invalidates += 1

    def move(self, source: int, destination: int) -> None:
        """Relocate an entry between slots — the 24 ns unit of TTF2.

        Modelled as the real sequence (write copy, then invalidate the
        source) but counted as a single *move* so benchmark arithmetic
        matches the paper's "shifts".
        """
        self._check_index(source)
        self._check_index(destination)
        entry = self.slots[source]
        if entry is None:
            raise TcamError(f"move from empty slot {source}")
        if self.slots[destination] is not None:
            raise TcamError(f"move into occupied slot {destination}")
        self.slots[destination] = entry
        self.slots[source] = None
        self.counters.moves += 1

    def read(self, index: int) -> Optional[TcamEntry]:
        """Inspect one slot (control-plane read, not counted)."""
        self._check_index(index)
        return self.slots[index]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def occupancy(self, start: int = 0, end: Optional[int] = None) -> int:
        """Number of valid slots in ``[start, end)``."""
        end = self.capacity if end is None else end
        self._check_range(start, end)
        return sum(1 for slot in self.slots[start:end] if slot is not None)

    def entries(self, start: int = 0, end: Optional[int] = None) -> List[TcamEntry]:
        """The valid entries of ``[start, end)`` in slot order."""
        end = self.capacity if end is None else end
        self._check_range(start, end)
        return [slot for slot in self.slots[start:end] if slot is not None]

    def region(self, start: int, size: int) -> "TcamRegion":
        """A view of ``size`` slots beginning at ``start``."""
        return TcamRegion(self, start, size)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.capacity:
            raise TcamError(f"slot {index} outside chip of {self.capacity}")

    def _check_range(self, start: int, end: int) -> None:
        if not 0 <= start <= end <= self.capacity:
            raise TcamError(f"range [{start}, {end}) outside chip")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Tcam {self.occupancy()}/{self.capacity}>"


@dataclass
class TcamRegion:
    """A contiguous slice of a chip, used as one logical partition.

    Figure 1 splits each chip into a main partition holding the table
    partition and a DRed partition; both are regions of the same device, so
    their operation counts aggregate on the chip's counters while searches
    stay confined (and the power model only charges the searched region).
    """

    device: Tcam
    start: int
    size: int

    def __post_init__(self) -> None:
        self.device._check_range(self.start, self.end)

    @property
    def end(self) -> int:
        return self.start + self.size

    def search(self, address: int) -> Optional[TcamEntry]:
        """Search only this region (activates ``size`` slots)."""
        return self.device.search(address, self.start, self.end)

    def write(self, offset: int, entry: TcamEntry) -> None:
        self._check_offset(offset)
        self.device.write(self.start + offset, entry)

    def invalidate(self, offset: int) -> None:
        self._check_offset(offset)
        self.device.invalidate(self.start + offset)

    def move(self, source_offset: int, destination_offset: int) -> None:
        self._check_offset(source_offset)
        self._check_offset(destination_offset)
        self.device.move(self.start + source_offset, self.start + destination_offset)

    def read(self, offset: int) -> Optional[TcamEntry]:
        self._check_offset(offset)
        return self.device.read(self.start + offset)

    def occupancy(self) -> int:
        return self.device.occupancy(self.start, self.end)

    def entries(self) -> List[TcamEntry]:
        return self.device.entries(self.start, self.end)

    def _check_offset(self, offset: int) -> None:
        if not 0 <= offset < self.size:
            raise TcamError(f"offset {offset} outside region of {self.size}")
