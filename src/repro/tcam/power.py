"""TCAM power accounting.

TCAM power is dominated by the number of slots *activated* per search —
the entire motivation for partitioned lookup (CoolCAMs, SLPL, CLPL).  The
device model already counts activated slots per search; this module turns
the counts into comparable energy figures and the "power efficiency"
ratios the partitioning literature quotes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.tcam.device import Tcam

#: Nominal activation energy per slot per search, in picojoules.  The
#: absolute value is irrelevant to every comparison we make (ratios only);
#: this default is in the range vendors quote for 18 Mb parts.
DEFAULT_SLOT_ENERGY_PJ = 1.0


@dataclass(frozen=True)
class PowerModel:
    """Energy ∝ activated slots; the constant sets the unit."""

    slot_energy_pj: float = DEFAULT_SLOT_ENERGY_PJ

    def search_energy_pj(self, activated_slots: int) -> float:
        """Energy of searches that activated ``activated_slots`` in total."""
        return activated_slots * self.slot_energy_pj

    def chip_energy_pj(self, chip: Tcam) -> float:
        """Total search energy a chip has burned so far."""
        return self.search_energy_pj(chip.counters.activated_slots)

    def total_energy_pj(self, chips: Iterable[Tcam]) -> float:
        """Aggregate search energy across a bank of chips."""
        return sum(self.chip_energy_pj(chip) for chip in chips)


def power_efficiency_ratio(
    partitioned_slots_per_search: int, full_table_slots: int
) -> float:
    """Fraction of full-table power a partitioned search needs.

    A 32-partition scheme activating one partition per search returns
    ~1/32 — the CoolCAMs argument.
    """
    if full_table_slots <= 0:
        raise ValueError("full table size must be positive")
    return partitioned_slots_per_search / full_table_slots
