"""TCAM hardware model: chips, regions, cost/power models, update layouts."""

from repro.tcam.device import (
    MultipleMatchError,
    Tcam,
    TcamCounters,
    TcamError,
    TcamRegion,
)
from repro.tcam.entry import TcamEntry
from repro.tcam.power import (
    DEFAULT_SLOT_ENERGY_PJ,
    PowerModel,
    power_efficiency_ratio,
)
from repro.tcam.timing import (
    CYNSE70256_MHZ,
    DEFAULT_MOVE_NS,
    PAPER_COST_MODEL,
    TcamCostModel,
)
from repro.tcam.update_base import (
    DuplicatePrefixError,
    RegionFullError,
    TcamUpdater,
    UpdateResult,
)
from repro.tcam.update_clue import ClueUpdater, OverlapError
from repro.tcam.update_naive import NaiveUpdater
from repro.tcam.update_plo import PloUpdater

__all__ = [
    "CYNSE70256_MHZ",
    "DEFAULT_MOVE_NS",
    "DEFAULT_SLOT_ENERGY_PJ",
    "PAPER_COST_MODEL",
    "ClueUpdater",
    "DuplicatePrefixError",
    "MultipleMatchError",
    "NaiveUpdater",
    "OverlapError",
    "PloUpdater",
    "PowerModel",
    "RegionFullError",
    "Tcam",
    "TcamCostModel",
    "TcamCounters",
    "TcamEntry",
    "TcamError",
    "TcamRegion",
    "TcamUpdater",
    "UpdateResult",
    "power_efficiency_ratio",
]
