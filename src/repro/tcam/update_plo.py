"""Shah–Gupta prefix-length ordering (PLO) — Figure 7(b)'s classical layout.

Only a *partial* order is required for LPM correctness on a priority-encoder
TCAM: longer prefixes before shorter ones.  Entries of equal length are
interchangeable, so the table is organised as up to 33 length groups in
decreasing-length order with all free space at the bottom.  Opening a slot
inside group ℓ then costs one move per non-empty group below ℓ (each group
rotates its first entry to its far end), bounding an update at 32 shifts —
and averaging ~15 on real tables, the number the paper quotes for CLPL's
TCAM update.
"""

from __future__ import annotations

from repro.net.prefix import ADDRESS_WIDTH, Prefix
from repro.tcam.entry import TcamEntry
from repro.tcam.update_base import TcamUpdater, UpdateResult

_GROUPS = ADDRESS_WIDTH + 1  # one group per prefix length 0..32


class PloUpdater(TcamUpdater):
    """Length-grouped layout with ≤32 shifts per update."""

    def __init__(self, region) -> None:
        super().__init__(region)
        # Number of entries per length group; group 32 sits at the top.
        self._group_size = [0] * _GROUPS

    # -- geometry -----------------------------------------------------------

    def _group_begin(self, length: int) -> int:
        """First offset of the group for ``length`` (groups sorted by
        decreasing length, packed from offset 0)."""
        return sum(
            self._group_size[other]
            for other in range(length + 1, _GROUPS)
        )

    def _entry_count(self) -> int:
        return len(self._position)

    # -- mutations ------------------------------------------------------------

    def insert(self, prefix: Prefix, next_hop: int) -> UpdateResult:
        self._require_absent(prefix)
        self._require_space()
        length = prefix.length
        moves = 0
        # Cascade the free slot upward: the bottom-most group's first entry
        # drops into the free space, the next group's first entry drops into
        # the slot that vacated, and so on until the hole reaches the end of
        # group ``length``.
        free = self._entry_count()
        for other in range(0, length):  # ascending = bottom-most group first
            if self._group_size[other] == 0:
                continue
            begin = self._group_begin(other)
            self._move_tracked(begin, free)
            free = begin
            moves += 1
        self.region.write(free, TcamEntry(prefix, next_hop))
        self._position[prefix] = free
        self._group_size[length] += 1
        return UpdateResult(moves=moves, writes=1)

    def delete(self, prefix: Prefix) -> UpdateResult:
        offset = self._position.pop(prefix, None)
        if offset is None:
            return UpdateResult(found=False)
        length = prefix.length
        begin = self._group_begin(length)
        last = begin + self._group_size[length] - 1
        self.region.invalidate(offset)
        moves = 0
        # Fill the hole from the group's own last slot (lengths within a
        # group are interchangeable)...
        if offset != last:
            self._move_tracked(last, offset)
            moves += 1
        hole = last
        # ...then cascade the hole down one group at a time until it merges
        # with the free space at the bottom.  Group geometry is computed from
        # the *original* sizes throughout (the size decrement lands after the
        # cascade): each processed group has physically shifted up by one,
        # but the next group down has not moved yet.
        for other in range(length - 1, -1, -1):  # descending = next group down
            if self._group_size[other] == 0:
                continue
            group_begin = self._group_begin(other)
            group_last = group_begin + self._group_size[other] - 1
            # The hole sits just above this group; rotating the group's last
            # entry into it shifts the whole group up by one slot.
            self._move_tracked(group_last, hole)
            hole = group_last
            moves += 1
        self._group_size[length] -= 1
        return UpdateResult(moves=moves, invalidates=1)
