"""Naive fully-ordered TCAM layout — Figure 7(a)'s strawman.

Entries are kept totally ordered by decreasing prefix length (ties broken
by prefix value so the layout is deterministic), packed from slot 0 with all
free space at the bottom.  Inserting in the middle therefore shifts every
entry below the insertion point down by one — the full domino effect, O(n)
moves per update.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Tuple

from repro.net.prefix import Prefix
from repro.tcam.entry import TcamEntry
from repro.tcam.update_base import TcamUpdater, UpdateResult


def _order_key(prefix: Prefix) -> Tuple[int, int, int]:
    """Longest first; deterministic within a length."""
    return (-prefix.length, prefix.network, prefix.value)


class NaiveUpdater(TcamUpdater):
    """Totally ordered layout with O(n) worst-case shifts."""

    def __init__(self, region) -> None:
        super().__init__(region)
        self._keys: List[Tuple[int, int, int]] = []

    def insert(self, prefix: Prefix, next_hop: int) -> UpdateResult:
        self._require_absent(prefix)
        self._require_space()
        key = _order_key(prefix)
        index = bisect_left(self._keys, key)
        count = len(self._keys)
        # Open the slot by shifting the tail down, bottom-most entry first.
        moves = 0
        for offset in range(count - 1, index - 1, -1):
            self._move_tracked(offset, offset + 1)
            moves += 1
        self.region.write(index, TcamEntry(prefix, next_hop))
        self._position[prefix] = index
        self._keys.insert(index, key)
        return UpdateResult(moves=moves, writes=1)

    def delete(self, prefix: Prefix) -> UpdateResult:
        offset = self._position.pop(prefix, None)
        if offset is None:
            return UpdateResult(found=False)
        self.region.invalidate(offset)
        del self._keys[offset]
        count = len(self._keys)
        # Close the hole by shifting the tail up.
        moves = 0
        for source in range(offset + 1, count + 1):
            self._move_tracked(source, source - 1)
            moves += 1
        return UpdateResult(moves=moves, invalidates=1)
