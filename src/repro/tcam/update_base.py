"""Common machinery for TCAM layout/update managers.

An updater owns one :class:`~repro.tcam.device.TcamRegion` and decides where
entries live inside it.  The three concrete strategies reproduce Section IV-B:

* :class:`~repro.tcam.update_naive.NaiveUpdater` — fully ordered layout,
  O(n) shifts per insert (Figure 7(a));
* :class:`~repro.tcam.update_plo.PloUpdater` — Shah–Gupta prefix-length
  ordering, ≤32 shifts (Figure 7(b); the layout assumed for CLPL);
* :class:`~repro.tcam.update_clue.ClueUpdater` — no ordering at all, valid
  only for disjoint tables, ≤1 shift (CLUE).

Every mutation returns an :class:`UpdateResult` whose counts the TTF2 cost
model multiplies by 24 ns.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.net.prefix import Prefix
from repro.tcam.device import TcamError, TcamRegion
from repro.tcam.entry import TcamEntry


class RegionFullError(TcamError):
    """The region has no free slot for an insert."""


class DuplicatePrefixError(TcamError):
    """Insert of a prefix the region already holds (use ``modify``)."""


@dataclass(frozen=True)
class UpdateResult:
    """Operation counts of one table update (the unit of TTF2).

    ``moves`` are entry relocations (the domino-effect "shifts" the paper
    charges 24 ns each); ``writes`` program fresh content; ``invalidates``
    clear a slot.  ``found`` is False when a delete's target was absent.
    """

    moves: int = 0
    writes: int = 0
    invalidates: int = 0
    found: bool = True

    @property
    def total_slot_operations(self) -> int:
        return self.moves + self.writes + self.invalidates

    def __add__(self, other: "UpdateResult") -> "UpdateResult":
        return UpdateResult(
            self.moves + other.moves,
            self.writes + other.writes,
            self.invalidates + other.invalidates,
            self.found and other.found,
        )


class TcamUpdater(abc.ABC):
    """Base class: tracks prefix → slot positions inside one region."""

    def __init__(self, region: TcamRegion) -> None:
        self.region = region
        self._position: Dict[Prefix, int] = {}

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._position)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._position

    @property
    def free_slots(self) -> int:
        return self.region.size - len(self._position)

    def position_of(self, prefix: Prefix) -> Optional[int]:
        """Current slot offset of ``prefix`` inside the region."""
        return self._position.get(prefix)

    def entries(self) -> List[TcamEntry]:
        """The stored entries in slot order."""
        return self.region.entries()

    # -- bulk load ---------------------------------------------------------

    def load(self, routes: Iterable[Tuple[Prefix, int]]) -> None:
        """Install an initial table (counts as ordinary writes)."""
        for prefix, next_hop in routes:
            self.insert(prefix, next_hop)

    # -- mutations ---------------------------------------------------------

    @abc.abstractmethod
    def insert(self, prefix: Prefix, next_hop: int) -> UpdateResult:
        """Add a new entry, relocating others as the layout demands."""

    @abc.abstractmethod
    def delete(self, prefix: Prefix) -> UpdateResult:
        """Remove an entry, restoring the layout invariant."""

    def modify(self, prefix: Prefix, next_hop: int) -> UpdateResult:
        """Change an existing entry's next hop in place (one write)."""
        offset = self._position.get(prefix)
        if offset is None:
            return UpdateResult(found=False)
        self.region.write(offset, TcamEntry(prefix, next_hop))
        return UpdateResult(writes=1)

    def apply(self, prefix: Prefix, next_hop: Optional[int]) -> UpdateResult:
        """Dispatch an announce (insert or modify) or withdraw (delete)."""
        if next_hop is None:
            return self.delete(prefix)
        if prefix in self._position:
            return self.modify(prefix, next_hop)
        return self.insert(prefix, next_hop)

    # -- shared helpers ----------------------------------------------------

    def _move_tracked(self, source: int, destination: int) -> None:
        """Move a slot and keep the position map honest."""
        entry = self.region.read(source)
        assert entry is not None
        self.region.move(source, destination)
        self._position[entry.prefix] = destination

    def _require_absent(self, prefix: Prefix) -> None:
        if prefix in self._position:
            raise DuplicatePrefixError(f"{prefix} already stored")

    def _require_space(self) -> None:
        if self.free_slots == 0:
            raise RegionFullError(
                f"region of {self.region.size} slots is full"
            )
