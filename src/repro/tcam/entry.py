"""TCAM entry: one ternary slot's content."""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.prefix import Prefix


@dataclass(frozen=True)
class TcamEntry:
    """A programmed TCAM slot: a ternary prefix pattern plus its next hop.

    Real hardware stores the next hop in an associated SRAM word; modelling
    them as one value object keeps the bookkeeping honest without changing
    any count the paper measures (a slot write covers both).
    """

    prefix: Prefix
    next_hop: int

    def matches(self, address: int) -> bool:
        """Ternary match of a 32-bit search key against this slot."""
        return self.prefix.contains_address(address)

    def __str__(self) -> str:
        return f"{self.prefix}->{self.next_hop}"
