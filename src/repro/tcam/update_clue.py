"""CLUE's O(1) TCAM update — the payoff of a disjoint table.

Once ONRTC has eliminated overlap, no order among entries carries any
meaning (at most one can match any key), so the layout degenerates to an
unordered packed array:

* **insert**: write into the first free slot at the bottom — 0 moves;
* **delete**: pull the last entry into the hole — at most 1 move.

"CLUE needs one shift at most to handle an update message" (Section IV-B),
i.e. TTF2 = 0.024 µs flat, versus ~15 shifts for the PLO layout.

The updater refuses entries that overlap what it already stores: loading an
uncompressed table here would silently break lookups on encoder-less chips,
so the contract is enforced at the door (O(length) via a prefix-ancestor
check against stored keys).
"""

from __future__ import annotations

from typing import Set

from repro.net.prefix import Prefix
from repro.tcam.device import TcamError
from repro.tcam.entry import TcamEntry
from repro.tcam.update_base import TcamUpdater, UpdateResult


class OverlapError(TcamError):
    """Attempt to store overlapping prefixes in a CLUE (encoder-less) region."""


class ClueUpdater(TcamUpdater):
    """Unordered packed layout; ≤1 move per update; disjoint entries only."""

    def __init__(self, region, enforce_disjoint: bool = True) -> None:
        super().__init__(region)
        self.enforce_disjoint = enforce_disjoint
        # Every stored prefix, plus all their ancestors, for O(32) overlap
        # checks on insert.  _ancestors is a multiset via counts.
        self._ancestor_counts: dict = {}
        self._stored: Set[Prefix] = set()

    # -- disjointness guard --------------------------------------------------

    def _check_disjoint(self, prefix: Prefix) -> None:
        if not self.enforce_disjoint:
            return
        # A stored ancestor (or self) of the new prefix?
        probe = prefix
        while True:
            if probe in self._stored:
                raise OverlapError(f"{prefix} overlaps stored {probe}")
            if probe.length == 0:
                break
            probe = probe.parent()
        # A stored descendant of the new prefix?
        if prefix in self._ancestor_counts:
            raise OverlapError(f"{prefix} covers an already-stored entry")

    def _register(self, prefix: Prefix) -> None:
        self._stored.add(prefix)
        probe = prefix
        while probe.length > 0:
            probe = probe.parent()
            self._ancestor_counts[probe] = self._ancestor_counts.get(probe, 0) + 1

    def _unregister(self, prefix: Prefix) -> None:
        self._stored.discard(prefix)
        probe = prefix
        while probe.length > 0:
            probe = probe.parent()
            remaining = self._ancestor_counts.get(probe, 0) - 1
            if remaining <= 0:
                self._ancestor_counts.pop(probe, None)
            else:
                self._ancestor_counts[probe] = remaining

    # -- mutations -------------------------------------------------------------

    def insert(self, prefix: Prefix, next_hop: int) -> UpdateResult:
        self._require_absent(prefix)
        self._require_space()
        self._check_disjoint(prefix)
        offset = len(self._position)
        self.region.write(offset, TcamEntry(prefix, next_hop))
        self._position[prefix] = offset
        self._register(prefix)
        return UpdateResult(writes=1)

    def delete(self, prefix: Prefix) -> UpdateResult:
        offset = self._position.pop(prefix, None)
        if offset is None:
            return UpdateResult(found=False)
        self._unregister(prefix)
        self.region.invalidate(offset)
        last = len(self._position)  # offset of the (previous) last entry
        moves = 0
        if offset != last:
            self._move_tracked(last, offset)
            moves += 1
        return UpdateResult(moves=moves, invalidates=1)
