"""Binary trie with longest-prefix-match semantics.

This is the software routing table every part of CLUE is built on:

* the compression algorithms (:mod:`repro.compress`) run dynamic programs
  over it,
* the CLUE partitioner walks it inorder to cut exactly even TCAM partitions,
* the update pipeline applies BGP announce/withdraw messages to it and
  measures TTF1.

Only structural logic lives here; costs and timing are accounted for by the
callers (:mod:`repro.update`).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.net.prefix import ADDRESS_WIDTH, Prefix
from repro.trie.node import TrieNode


class BinaryTrie:
    """A binary trie mapping :class:`~repro.net.prefix.Prefix` to next hops.

    Next hops are small integers (indices into a neighbour table), matching
    how line cards store them.  ``None`` next hops never appear in the public
    mapping; internal nodes simply have ``next_hop is None``.

    >>> trie = BinaryTrie()
    >>> trie.insert(Prefix.from_bits("1"), 1)
    True
    >>> trie.insert(Prefix.from_bits("100"), 2)
    True
    >>> trie.lookup(0b100 << 29)            # matches 100* -> hop 2
    2
    >>> trie.lookup(0b111 << 29)            # matches 1*   -> hop 1
    1
    """

    def __init__(self) -> None:
        self.root = TrieNode()
        self._route_count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_routes(cls, routes: Iterable[Tuple[Prefix, int]]) -> "BinaryTrie":
        """Build a trie from ``(prefix, next_hop)`` pairs."""
        trie = cls()
        for prefix, next_hop in routes:
            trie.insert(prefix, next_hop)
        return trie

    # ------------------------------------------------------------------
    # Core mapping operations
    # ------------------------------------------------------------------

    def insert(self, prefix: Prefix, next_hop: int) -> bool:
        """Insert or overwrite a route.

        Returns True when the route is new, False when an existing route for
        the same prefix was overwritten.
        """
        if next_hop is None:
            raise ValueError("next_hop must be an integer, not None")
        node = self.root
        for bit in prefix.walk_bits():
            node = node.ensure_child(bit)
        is_new = not node.has_route
        node.next_hop = next_hop
        if is_new:
            self._route_count += 1
        return is_new

    def delete(self, prefix: Prefix) -> bool:
        """Remove a route; prunes now-useless nodes.  Returns True if found."""
        return self.remove_route(prefix) is not None

    def remove_route(
        self, prefix: Prefix
    ) -> Optional[Tuple[TrieNode, List[TrieNode]]]:
        """Remove a route, reporting what the prune pass did.

        Returns ``(survivor, pruned)`` where ``survivor`` is the deepest node
        on ``prefix``'s path still present afterwards and ``pruned`` lists the
        nodes that were detached, or ``None`` when no such route existed.
        Callers that shadow per-node state (the incremental ONRTC compressor)
        need the pruned list to drop their references.
        """
        node = self.find_node(prefix)
        if node is None or not node.has_route:
            return None
        node.next_hop = None
        self._route_count -= 1
        pruned: List[TrieNode] = []
        while (
            node is not self.root
            and node.is_leaf
            and not node.has_route
            and node.parent is not None
        ):
            parent = node.parent
            parent.set_child(parent.which_child(node), None)
            node.parent = None
            pruned.append(node)
            node = parent
        return node, pruned

    def get(self, prefix: Prefix) -> Optional[int]:
        """Exact-match lookup: the hop stored at ``prefix``, or None."""
        node = self.find_node(prefix)
        if node is None:
            return None
        return node.next_hop

    def lookup(self, address: int) -> Optional[int]:
        """Longest-prefix-match lookup of a 32-bit address."""
        node = self.root
        best = node.next_hop
        for position in range(ADDRESS_WIDTH):
            bit = (address >> (ADDRESS_WIDTH - 1 - position)) & 1
            node = node.child(bit)
            if node is None:
                break
            if node.has_route:
                best = node.next_hop
        return best

    def lookup_prefix(self, address: int) -> Optional[Tuple[Prefix, int]]:
        """LPM lookup returning the matching ``(prefix, hop)`` pair."""
        node = self.root
        best: Optional[Tuple[Prefix, int]] = None
        if node.has_route:
            best = (Prefix.root(), node.next_hop)
        value = 0
        for position in range(ADDRESS_WIDTH):
            bit = (address >> (ADDRESS_WIDTH - 1 - position)) & 1
            node = node.child(bit)
            if node is None:
                break
            value = (value << 1) | bit
            if node.has_route:
                best = (Prefix(value, position + 1), node.next_hop)
        return best

    # ------------------------------------------------------------------
    # Node access
    # ------------------------------------------------------------------

    def find_node(self, prefix: Prefix) -> Optional[TrieNode]:
        """The node at ``prefix``, or None when the path does not exist."""
        node: Optional[TrieNode] = self.root
        for bit in prefix.walk_bits():
            if node is None:
                return None
            node = node.child(bit)
        return node

    def ensure_node(self, prefix: Prefix) -> TrieNode:
        """The node at ``prefix``, creating the path if needed."""
        node = self.root
        for bit in prefix.walk_bits():
            node = node.ensure_child(bit)
        return node

    def effective_hop(self, prefix: Prefix) -> Optional[int]:
        """The LPM hop inherited at ``prefix``'s position (self included).

        This is the hop an address under ``prefix`` would get if no more
        specific route existed — the quantity ONRTC's dynamic program and
        RRC-ME both reason about.
        """
        node = self.root
        best = node.next_hop
        for bit in prefix.walk_bits():
            node = node.child(bit)
            if node is None:
                break
            if node.has_route:
                best = node.next_hop
        return best

    # ------------------------------------------------------------------
    # Iteration and statistics
    # ------------------------------------------------------------------

    def routes(self) -> Iterator[Tuple[Prefix, int]]:
        """Yield every ``(prefix, hop)`` route in inorder (address order).

        Inorder here means: a node is visited between its left and right
        subtrees, with the node's own route reported *before* descending —
        equivalently, routes come out sorted by ``Prefix.sort_key``.  This is
        exactly the walk CLUE's even partitioner uses (Section III-A).
        """
        stack: List[Tuple[TrieNode, int, int]] = [(self.root, 0, 0)]
        while stack:
            node, value, depth = stack.pop()
            if node.has_route:
                yield Prefix(value, depth), node.next_hop
            if node.right is not None:
                stack.append((node.right, (value << 1) | 1, depth + 1))
            if node.left is not None:
                stack.append((node.left, value << 1, depth + 1))

    def prefixes(self) -> List[Prefix]:
        """All routed prefixes, in address order."""
        return [prefix for prefix, _ in self.routes()]

    def as_dict(self) -> Dict[Prefix, int]:
        """The route mapping as a plain dictionary."""
        return dict(self.routes())

    def __len__(self) -> int:
        return self._route_count

    def __contains__(self, prefix: Prefix) -> bool:
        return self.get(prefix) is not None

    def __iter__(self) -> Iterator[Tuple[Prefix, int]]:
        return self.routes()

    def node_count(self) -> int:
        """Total number of trie nodes (routed or structural)."""
        return sum(1 for _ in self.root.iter_descendants())

    def next_hops(self) -> List[int]:
        """The sorted set of distinct next hops present."""
        return sorted({hop for _, hop in self.routes()})

    def copy(self) -> "BinaryTrie":
        """An independent deep copy."""
        return BinaryTrie.from_routes(self.routes())

    # ------------------------------------------------------------------
    # Overlap structure
    # ------------------------------------------------------------------

    def is_disjoint(self) -> bool:
        """True when no routed prefix contains another routed prefix.

        This is the invariant ONRTC establishes and the whole CLUE design
        relies on (no priority encoder, O(1) TCAM update, even partitions).
        """
        stack: List[Tuple[TrieNode, bool]] = [(self.root, False)]
        while stack:
            node, seen_route = stack.pop()
            if node.has_route:
                if seen_route:
                    return False
                seen_route = True
            for child in (node.left, node.right):
                if child is not None:
                    stack.append((child, seen_route))
        return True

    def overlap_count(self) -> int:
        """Number of routed prefixes that have a routed ancestor."""
        count = 0
        stack: List[Tuple[TrieNode, bool]] = [(self.root, False)]
        while stack:
            node, seen_route = stack.pop()
            if node.has_route:
                if seen_route:
                    count += 1
                seen_route = True
            for child in (node.left, node.right):
                if child is not None:
                    stack.append((child, seen_route))
        return count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BinaryTrie routes={self._route_count}>"
