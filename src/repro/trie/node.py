"""Binary trie node.

The trie is the control-plane representation of the routing table: every
algorithm in the reproduction (ONRTC compression, partitioning, incremental
update) operates on it.  Nodes are deliberately plain — two child links, an
optional next hop, and a parent back-pointer so incremental update can walk
upward without re-descending from the root.
"""

from __future__ import annotations

from typing import Iterator, Optional


class TrieNode:
    """One node of a binary trie over the IPv4 address space.

    ``next_hop`` is ``None`` for internal nodes that carry no route.  The
    node's prefix is implied by its path from the root; :class:`~repro.trie.
    trie.BinaryTrie` tracks depth/value when traversing, so nodes stay small.
    """

    __slots__ = ("left", "right", "next_hop", "parent")

    def __init__(self, parent: Optional["TrieNode"] = None) -> None:
        self.left: Optional[TrieNode] = None
        self.right: Optional[TrieNode] = None
        self.next_hop: Optional[int] = None
        self.parent = parent

    # ------------------------------------------------------------------

    def child(self, bit: int) -> Optional["TrieNode"]:
        """The child on side ``bit`` (0 = left, 1 = right)."""
        return self.right if bit else self.left

    def set_child(self, bit: int, node: Optional["TrieNode"]) -> None:
        """Attach ``node`` on side ``bit``, fixing its parent pointer."""
        if bit:
            self.right = node
        else:
            self.left = node
        if node is not None:
            node.parent = self

    def ensure_child(self, bit: int) -> "TrieNode":
        """Return the child on side ``bit``, creating it if absent."""
        existing = self.child(bit)
        if existing is not None:
            return existing
        created = TrieNode(parent=self)
        self.set_child(bit, created)
        return created

    # ------------------------------------------------------------------

    @property
    def has_route(self) -> bool:
        """True when this node carries a next hop."""
        return self.next_hop is not None

    @property
    def is_leaf(self) -> bool:
        """True when the node has no children."""
        return self.left is None and self.right is None

    @property
    def is_internal(self) -> bool:
        """True when the node has at least one child."""
        return not self.is_leaf

    def which_child(self, node: "TrieNode") -> int:
        """Return 0/1 telling which side ``node`` hangs off this node."""
        if self.left is node:
            return 0
        if self.right is node:
            return 1
        raise ValueError("node is not a child of this node")

    # ------------------------------------------------------------------

    def iter_descendants(self) -> Iterator["TrieNode"]:
        """Yield this node and every descendant, preorder."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            if node.right is not None:
                stack.append(node.right)
            if node.left is not None:
                stack.append(node.left)

    def count_routes(self) -> int:
        """Number of routed nodes in this subtree (including self)."""
        return sum(1 for node in self.iter_descendants() if node.has_route)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        marker = f"hop={self.next_hop}" if self.has_route else "empty"
        return f"<TrieNode {marker} leaf={self.is_leaf}>"
