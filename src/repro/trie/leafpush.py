"""Leaf pushing (controlled prefix expansion, Srinivasan & Varghese 1999).

Leaf pushing is the classical way to make a routing table non-overlapping:
every internal route is pushed down to the trie's leaf regions, after which
routes exist only on disjoint prefixes.  The paper cites it as the only prior
technique that *totally* eliminates overlap — at the cost of substantial
table expansion, which is exactly what ONRTC then removes.

We keep it both as the correctness reference for ONRTC (the two must be
forwarding-equivalent) and as the expansion baseline quoted in DESIGN.md.
"""

from __future__ import annotations

from typing import Dict

from repro.net.prefix import Prefix
from repro.trie.traversal import iter_regions
from repro.trie.trie import BinaryTrie


def leaf_push(trie: BinaryTrie, keep_none: bool = True) -> BinaryTrie:
    """Return a disjoint trie forwarding-equivalent to ``trie``.

    Every maximal uniform region of the original table becomes one route.
    Regions with no covering route are simply left out (``keep_none`` is
    accepted for symmetry with other compressors but unmatched space can
    never carry a route).

    The result satisfies ``result.is_disjoint()`` and agrees with ``trie``
    on every address.
    """
    del keep_none  # unmatched regions can never carry a route
    pushed = BinaryTrie()
    for prefix, hop in iter_regions(trie):
        if hop is not None:
            pushed.insert(prefix, hop)
    return pushed


def leaf_pushed_routes(trie: BinaryTrie) -> Dict[Prefix, int]:
    """The leaf-pushed table as a plain mapping (no trie construction)."""
    return {
        prefix: hop for prefix, hop in iter_regions(trie) if hop is not None
    }


def expansion_ratio(trie: BinaryTrie) -> float:
    """Size of the leaf-pushed table relative to the original.

    Real backbone tables land well above 1.0 here — the motivation for
    ONRTC's optimal merge.
    """
    original = len(trie)
    if original == 0:
        return 1.0
    pushed = sum(1 for _, hop in iter_regions(trie) if hop is not None)
    return pushed / original
