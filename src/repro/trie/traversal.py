"""Trie walks shared by compression, partitioning and verification.

The central notion is a *region*: a maximal prefix of the address space on
which the original table's LPM decision is constant because the trie has no
branching inside it.  Regions are what leaf-pushing materialises and what the
ONRTC dynamic program merges back together optimally.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.net.prefix import Prefix
from repro.trie.node import TrieNode
from repro.trie.trie import BinaryTrie


def iter_nodes(trie: BinaryTrie) -> Iterator[Tuple[TrieNode, Prefix]]:
    """Yield every node with its implied prefix, preorder."""
    stack: List[Tuple[TrieNode, int, int]] = [(trie.root, 0, 0)]
    while stack:
        node, value, depth = stack.pop()
        yield node, Prefix(value, depth)
        if node.right is not None:
            stack.append((node.right, (value << 1) | 1, depth + 1))
        if node.left is not None:
            stack.append((node.left, value << 1, depth + 1))


def iter_regions(trie: BinaryTrie) -> Iterator[Tuple[Prefix, Optional[int]]]:
    """Yield ``(prefix, effective_hop)`` for a disjoint cover of the space.

    Every yielded prefix is a maximal region in which the trie makes a single
    LPM decision: leaves of the trie, plus the "missing child" halves under
    internal nodes.  The hops are the inherited LPM results (``None`` where
    no route covers the region).  The union of the regions is the entire
    address space and the regions are pairwise disjoint.
    """
    stack: List[Tuple[TrieNode, int, int, Optional[int]]] = [
        (trie.root, 0, 0, None)
    ]
    while stack:
        node, value, depth, inherited = stack.pop()
        effective = node.next_hop if node.has_route else inherited
        if node.is_leaf:
            yield Prefix(value, depth), effective
            continue
        for bit in (0, 1):
            child = node.child(bit)
            child_value = (value << 1) | bit
            if child is None:
                yield Prefix(child_value, depth + 1), effective
            else:
                stack.append((child, child_value, depth + 1, effective))


def routed_subtree_sizes(trie: BinaryTrie) -> List[Tuple[Prefix, int]]:
    """For each node, the number of routed prefixes in its subtree.

    Used by the sub-tree partitioner (CLPL) to find carving points.  The
    result is in postorder so children precede their parents.
    """
    sizes: List[Tuple[Prefix, int]] = []

    def visit(node: TrieNode, value: int, depth: int) -> int:
        total = 1 if node.has_route else 0
        if node.left is not None:
            total += visit(node.left, value << 1, depth + 1)
        if node.right is not None:
            total += visit(node.right, (value << 1) | 1, depth + 1)
        sizes.append((Prefix(value, depth), total))
        return total

    visit(trie.root, 0, 0)
    return sizes


def subtree_routes(trie: BinaryTrie, prefix: Prefix) -> List[Tuple[Prefix, int]]:
    """All routes at or below ``prefix`` (empty when the path is absent)."""
    anchor = trie.find_node(prefix)
    if anchor is None:
        return []
    routes: List[Tuple[Prefix, int]] = []
    stack: List[Tuple[TrieNode, int, int]] = [
        (anchor, prefix.value, prefix.length)
    ]
    while stack:
        node, value, depth = stack.pop()
        if node.has_route:
            routes.append((Prefix(value, depth), node.next_hop))
        if node.right is not None:
            stack.append((node.right, (value << 1) | 1, depth + 1))
        if node.left is not None:
            stack.append((node.left, value << 1, depth + 1))
    return routes


def covering_route(trie: BinaryTrie, prefix: Prefix) -> Optional[Tuple[Prefix, int]]:
    """The longest routed prefix that is an ancestor-or-self of ``prefix``."""
    node = trie.root
    best: Optional[Tuple[Prefix, int]] = None
    if node.has_route:
        best = (Prefix.root(), node.next_hop)
    value = 0
    depth = 0
    for bit in prefix.walk_bits():
        node = node.child(bit)
        if node is None:
            break
        value = (value << 1) | bit
        depth += 1
        if node.has_route:
            best = (Prefix(value, depth), node.next_hop)
    return best
