"""Binary trie: the control-plane routing table representation."""

from repro.trie.leafpush import expansion_ratio, leaf_push, leaf_pushed_routes
from repro.trie.node import TrieNode
from repro.trie.traversal import (
    covering_route,
    iter_nodes,
    iter_regions,
    routed_subtree_sizes,
)
from repro.trie.trie import BinaryTrie

__all__ = [
    "BinaryTrie",
    "TrieNode",
    "covering_route",
    "expansion_ratio",
    "iter_nodes",
    "iter_regions",
    "leaf_push",
    "leaf_pushed_routes",
    "routed_subtree_sizes",
]
