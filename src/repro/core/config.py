"""Top-level configuration of a CLUE system instance."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.compress.labels import CompressionMode
from repro.engine.simulator import EngineConfig
from repro.update.ttf import UpdateCostModel


@dataclass
class SystemConfig:
    """Everything needed to instantiate :class:`repro.core.system.ClueSystem`.

    Defaults mirror the paper's experimental settings: four chips, four
    clocks per lookup, 256-deep FIFOs, 1024-prefix DRed partitions, eight
    table partitions per chip (32 total, Table II), don't-care ONRTC.
    """

    engine: EngineConfig = field(default_factory=EngineConfig)
    partitions_per_chip: int = 8
    compression_mode: CompressionMode = CompressionMode.DONT_CARE
    #: Use bounded-work (lazy) ONRTC maintenance instead of exact minimal
    #: maintenance; pair with :meth:`repro.core.system.ClueSystem.recompress`
    #: to shed drift during idle periods.
    lazy_compression: bool = False
    cost_model: UpdateCostModel = field(default_factory=UpdateCostModel)
    #: Optional measured per-partition loads for adversarial chip mapping
    #: (Figure 15 / Table II).  ``None`` = natural contiguous mapping.
    partition_loads: Optional[Sequence[int]] = None
    #: Bounded control-plane update queue in front of the pipeline; offers
    #: beyond it are shed (BGP re-advertisement is the retry path).
    update_queue_capacity: int = 256
    #: Queue occupancy at which the scheduler enters storm mode (defer
    #: TCAM writes) and at which it exits (flush the deferred batch).
    storm_high_watermark: float = 0.75
    storm_low_watermark: float = 0.25

    @property
    def partition_count(self) -> int:
        return self.engine.chip_count * self.partitions_per_chip
