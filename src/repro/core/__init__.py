"""Integrated CLUE system: compression + parallel lookup + fast update."""

from repro.core.config import SystemConfig
from repro.core.metrics import SystemReport
from repro.core.system import ChipAuditReport, ClueSystem, RebalanceReport

__all__ = [
    "ChipAuditReport",
    "ClueSystem",
    "RebalanceReport",
    "SystemConfig",
    "SystemReport",
]
