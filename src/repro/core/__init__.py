"""Integrated CLUE system: compression + parallel lookup + fast update."""

from repro.core.config import SystemConfig
from repro.core.metrics import SystemReport
from repro.core.system import ClueSystem, RebalanceReport

__all__ = ["ClueSystem", "RebalanceReport", "SystemConfig", "SystemReport"]
