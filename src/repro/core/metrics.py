"""Cross-cutting report of a full CLUE system run."""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Dict, List, Optional

from repro.compress.onrtc import CompressionReport
from repro.engine.stats import EngineStats
from repro.update.ttf import TtfReport


@dataclass
class RecoveryStats:
    """Durability and audit counters for one system lifetime.

    ``time_to_recovered_us`` is the TTF-style headline of the crash
    story: wall time from "restore requested" to "state rebuilt, journal
    suffix replayed, invariants re-proved" — the update-path analogue of
    the paper's time-to-forward.
    """

    #: Operations appended to the write-ahead journal.
    journal_records: int = 0
    #: fsync batches issued by the journal.
    journal_syncs: int = 0
    #: Checkpoints written.
    snapshots_written: int = 0
    #: Successful restores performed into this process.
    restores: int = 0
    #: Journal records replayed by those restores.
    replayed_updates: int = 0
    #: Wall time of the most recent restore (load + rebuild + replay).
    time_to_recovered_us: float = 0.0
    #: Invariant-audit passes (full or incremental).
    audit_runs: int = 0
    #: Invariant violations those audits recorded.
    audit_violations: int = 0

    @property
    def active(self) -> bool:
        """True once any durability or audit machinery has run."""
        return bool(
            self.journal_records
            or self.snapshots_written
            or self.restores
            or self.audit_runs
        )

    def as_dict(self) -> Dict[str, object]:
        """Every counter as JSON-ready scalars."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RecoveryStats":
        """Inverse of :meth:`as_dict` (strict: unknown keys raise)."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown RecoveryStats fields: {sorted(unknown)}"
            )
        return cls(**data)  # type: ignore[arg-type]


@dataclass
class SystemReport:
    """What one integrated run produced, for printing or assertions.

    Bundles the three pillars' metrics: compression (entries saved),
    lookup (speedup/hit rate/balance) and update (TTF distribution).
    """

    compression: CompressionReport
    engine_stats: Optional[EngineStats] = None
    ttf: Optional[TtfReport] = None
    tcam_entries_per_chip: Optional[List[int]] = None
    #: Entries the self-healing audit (verify_chips) has repaired.
    chip_repairs: Optional[int] = None
    #: Durability counters (journal/checkpoint/restore/invariant audit).
    recovery: Optional[RecoveryStats] = None

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready nested dict (the admin STATS payload's shape).

        Engine and recovery stats round-trip exactly through their own
        ``from_dict`` constructors; compression and TTF are summarised
        (the raw TTF samples stay server-side — shipping every sample
        over the wire would scale with update count).
        """
        data: Dict[str, object] = {
            "compression": {
                "original_entries": self.compression.original_entries,
                "compressed_entries": self.compression.compressed_entries,
                "mode": self.compression.mode.name,
            },
            "engine_stats": (
                self.engine_stats.as_dict()
                if self.engine_stats is not None
                else None
            ),
            "tcam_entries_per_chip": (
                list(self.tcam_entries_per_chip)
                if self.tcam_entries_per_chip is not None
                else None
            ),
            "chip_repairs": self.chip_repairs,
            "recovery": (
                self.recovery.as_dict() if self.recovery is not None else None
            ),
        }
        if self.ttf is not None and len(self.ttf):
            total = self.ttf.total()
            data["ttf"] = {
                "samples": len(self.ttf),
                "total_mean_us": total.mean_us,
                "total_max_us": total.max_us,
                "ttf1_mean_us": self.ttf.ttf1().mean_us,
                "ttf2_mean_us": self.ttf.ttf2().mean_us,
                "ttf3_mean_us": self.ttf.ttf3().mean_us,
            }
        else:
            data["ttf"] = None
        return data

    def summary_lines(self, lookup_cycles: int = 4) -> List[str]:
        """Human-readable one-liners, used by examples and benches."""
        lines = [
            (
                f"compression: {self.compression.original_entries} -> "
                f"{self.compression.compressed_entries} entries "
                f"({self.compression.ratio:.1%})"
            )
        ]
        if self.tcam_entries_per_chip is not None:
            lines.append(
                "tcam entries/chip: "
                + ", ".join(str(count) for count in self.tcam_entries_per_chip)
            )
        if self.engine_stats is not None:
            stats = self.engine_stats
            lines.append(
                f"lookup: speedup {stats.speedup(lookup_cycles):.2f}, "
                f"DRed hit rate {stats.dred_hit_rate:.1%}, "
                f"loads {['%.1f%%' % (100 * s) for s in stats.chip_load_shares()]}"
            )
        if self.engine_stats is not None and (
            self.engine_stats.chip_failures
            or self.engine_stats.shed_updates
            or self.engine_stats.corrupted_entries
        ):
            stats = self.engine_stats
            lines.append(
                f"faults: {stats.chip_failures} chip failures "
                f"({stats.chip_downtime_cycles} downtime chip-cycles, "
                f"availability {stats.availability():.1%}), "
                f"{stats.failed_over_packets} packets failed over, "
                f"{stats.shed_updates} updates shed, "
                f"{stats.deferred_updates} TCAM writes deferred"
            )
        if self.chip_repairs:
            lines.append(f"audit: {self.chip_repairs} entries repaired")
        if self.recovery is not None and self.recovery.active:
            recovery = self.recovery
            line = (
                f"durability: {recovery.journal_records} journaled ops "
                f"({recovery.journal_syncs} fsync batches), "
                f"{recovery.snapshots_written} snapshots"
            )
            if recovery.restores:
                line += (
                    f", {recovery.restores} restores "
                    f"({recovery.replayed_updates} replayed, "
                    f"time to recovered "
                    f"{recovery.time_to_recovered_us:.0f} us)"
                )
            if recovery.audit_runs:
                line += (
                    f", invariant audits {recovery.audit_runs} "
                    f"({recovery.audit_violations} violations)"
                )
            lines.append(line)
        if self.ttf is not None and len(self.ttf):
            lines.append(
                f"update: TTF mean {self.ttf.total().mean_us:.3f} us "
                f"(ttf1 {self.ttf.ttf1().mean_us:.3f}, "
                f"ttf2 {self.ttf.ttf2().mean_us:.3f}, "
                f"ttf3 {self.ttf.ttf3().mean_us:.3f})"
            )
        return lines
