"""Cross-cutting report of a full CLUE system run."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.compress.onrtc import CompressionReport
from repro.engine.stats import EngineStats
from repro.update.ttf import TtfReport


@dataclass
class SystemReport:
    """What one integrated run produced, for printing or assertions.

    Bundles the three pillars' metrics: compression (entries saved),
    lookup (speedup/hit rate/balance) and update (TTF distribution).
    """

    compression: CompressionReport
    engine_stats: Optional[EngineStats] = None
    ttf: Optional[TtfReport] = None
    tcam_entries_per_chip: Optional[List[int]] = None
    #: Entries the self-healing audit (verify_chips) has repaired.
    chip_repairs: Optional[int] = None

    def summary_lines(self, lookup_cycles: int = 4) -> List[str]:
        """Human-readable one-liners, used by examples and benches."""
        lines = [
            (
                f"compression: {self.compression.original_entries} -> "
                f"{self.compression.compressed_entries} entries "
                f"({self.compression.ratio:.1%})"
            )
        ]
        if self.tcam_entries_per_chip is not None:
            lines.append(
                "tcam entries/chip: "
                + ", ".join(str(count) for count in self.tcam_entries_per_chip)
            )
        if self.engine_stats is not None:
            stats = self.engine_stats
            lines.append(
                f"lookup: speedup {stats.speedup(lookup_cycles):.2f}, "
                f"DRed hit rate {stats.dred_hit_rate:.1%}, "
                f"loads {['%.1f%%' % (100 * s) for s in stats.chip_load_shares()]}"
            )
        if self.engine_stats is not None and (
            self.engine_stats.chip_failures
            or self.engine_stats.shed_updates
            or self.engine_stats.corrupted_entries
        ):
            stats = self.engine_stats
            lines.append(
                f"faults: {stats.chip_failures} chip failures "
                f"({stats.chip_downtime_cycles} downtime chip-cycles, "
                f"availability {stats.availability():.1%}), "
                f"{stats.failed_over_packets} packets failed over, "
                f"{stats.shed_updates} updates shed, "
                f"{stats.deferred_updates} TCAM writes deferred"
            )
        if self.chip_repairs:
            lines.append(f"audit: {self.chip_repairs} entries repaired")
        if self.ttf is not None and len(self.ttf):
            lines.append(
                f"update: TTF mean {self.ttf.total().mean_us:.3f} us "
                f"(ttf1 {self.ttf.ttf1().mean_us:.3f}, "
                f"ttf2 {self.ttf.ttf2().mean_us:.3f}, "
                f"ttf3 {self.ttf.ttf3().mean_us:.3f})"
            )
        return lines
