"""ClueSystem — the integrated forwarding plane (the paper's full design).

This façade wires all three pillars into one object that behaves like a
line card:

* construction compresses the table with ONRTC, splits it into exactly
  even range partitions, loads them onto the simulated chips and builds
  the range Indexing Logic;
* :meth:`process_traffic` drives the parallel lookup engine with dynamic
  redundancy;
* :meth:`apply_update` runs one BGP message through the whole update
  pipeline (trie → TCAM → DRed) *and* propagates the entry diff into the
  live chips, so lookups remain correct while the table churns — the
  integration the paper argues the three problems must be solved together.

The same DRed banks are shared between the lookup engine (which fills them
on main-table hits) and the update pipeline (which invalidates on
withdraw), exactly as in the hardware design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.config import SystemConfig
from repro.core.metrics import SystemReport
from repro.compress.onrtc import CompressionReport, TableDiff
from repro.engine.builders import map_partitions_to_chips
from repro.engine.schemes import CluePolicy
from repro.engine.simulator import LookupEngine
from repro.engine.stats import EngineStats
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule
from repro.net.prefix import Prefix
from repro.partition.even import even_partition
from repro.partition.index_logic import RangeIndex
from repro.trie.trie import BinaryTrie
from repro.update.pipeline import ClueUpdatePipeline, UpdateScheduler
from repro.update.ttf import TtfSample
from repro.workload.updategen import UpdateGenerator, UpdateMessage

Route = Tuple[Prefix, int]


@dataclass
class RebalanceReport:
    """What one idle-time repartitioning did."""

    moved_entries: int
    flushed_dred_entries: int
    partition_sizes: List[int]
    #: Chips the table was spread over (failed chips are excluded).
    survivor_chips: List[int]

    @property
    def is_even(self) -> bool:
        return max(self.partition_sizes) - min(self.partition_sizes) <= 1


@dataclass
class ChipAuditReport:
    """Outcome of one :meth:`ClueSystem.verify_chips` pass."""

    chips_checked: List[int]
    entries_checked: int = 0
    hops_repaired: int = 0
    stray_removed: int = 0
    missing_restored: int = 0

    @property
    def repairs(self) -> int:
        """Total drift corrected (or merely detected with ``repair=False``)."""
        return self.hops_repaired + self.stray_removed + self.missing_restored

    @property
    def clean(self) -> bool:
        return self.repairs == 0


class ClueSystem:
    """A complete CLUE forwarding plane over a routing table.

    >>> from repro.workload import generate_rib, RibParameters
    >>> system = ClueSystem(generate_rib(1, RibParameters(size=512)))
    >>> system.compression_report().ratio < 1.0
    True
    """

    def __init__(
        self,
        routes: Iterable[Route],
        config: Optional[SystemConfig] = None,
    ) -> None:
        routes = list(routes)
        self.config = config or SystemConfig()

        # Pillar 1+3: compression with incremental maintenance, the TCAM
        # mirror and the (for now bank-less) DRed updater.
        self.pipeline = ClueUpdatePipeline(
            routes,
            mode=self.config.compression_mode,
            cost_model=self.config.cost_model,
            lazy=self.config.lazy_compression,
        )
        self._original_size = len(routes)

        # Pillar 2: even partitioning and the parallel engine.
        compressed = self.pipeline.trie_stage.table.routes()
        partition_count = self.config.partition_count
        self.partition_result = even_partition(compressed, partition_count)
        self.index = RangeIndex.from_partition(self.partition_result)
        self.partition_to_chip = map_partitions_to_chips(
            partition_count,
            self.config.engine.chip_count,
            self.config.partition_loads,
        )
        tables: List[List[Route]] = [
            [] for _ in range(self.config.engine.chip_count)
        ]
        for partition in self.partition_result.partitions:
            tables[self.partition_to_chip[partition.index]].extend(
                partition.routes
            )
        self.engine = LookupEngine(
            tables,
            home_of=self._home_of,
            scheme=CluePolicy(),
            config=self.config.engine,
            reference=self.pipeline.trie_stage.table.source,
        )
        # Share the engine's DRed banks with the update pipeline so table
        # changes invalidate live cached entries.
        self.pipeline.dred_stage.caches = [
            chip.dred for chip in self.engine.chips if chip.dred is not None
        ]
        # Backpressured admission path for update storms (the direct
        # apply_update() path stays available for calm streams).
        self.scheduler = UpdateScheduler(
            self.pipeline,
            capacity=self.config.update_queue_capacity,
            high_watermark=self.config.storm_high_watermark,
            low_watermark=self.config.storm_low_watermark,
            on_diff=self._apply_diff_to_chips,
        )
        # Round-robin cursor of the incremental chip audit.
        self._audit_cursor = 0
        #: Running total of entries verify_chips() has repaired.
        self.audit_repairs = 0

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------

    def _home_of(self, address: int) -> int:
        return self.partition_to_chip[self.index.home_of(address)]

    def lookup(self, address: int) -> Optional[int]:
        """One-off LPM against the current table (control-plane path)."""
        return self.pipeline.trie_stage.table.source.lookup(address)

    def process_traffic(
        self, addresses: Iterator[int], packet_count: int
    ) -> EngineStats:
        """Run a packet burst through the parallel engine."""
        return self.engine.run(addresses, packet_count)

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------

    def apply_update(self, message: UpdateMessage) -> TtfSample:
        """Run one BGP update through trie, TCAM, DRed and the live chips."""
        sample = self.pipeline.apply(message)
        diff = self.pipeline.last_diff
        if diff is not None:
            self._apply_diff_to_chips(diff)
        return sample

    def _chips_covering(self, prefix: Prefix) -> List[int]:
        """Every chip whose address range the prefix overlaps.

        Partition boundaries are aligned with entry boundaries *at
        partitioning time* (disjointness guarantees it), but an entry added
        later — don't-care merging can emit wide covering entries — may
        span several of the frozen ranges.  Such an entry must live in
        every chip whose range it serves, or lookups homed to the later
        ranges would miss.  :meth:`rebalance` collapses the replicas back
        to one copy each.
        """
        first = self.index.home_of(prefix.network)
        last = self.index.home_of(prefix.broadcast)
        return sorted(
            {
                self.partition_to_chip[partition]
                for partition in range(first, last + 1)
            }
        )

    def _apply_diff_to_chips(self, diff: TableDiff) -> None:
        for prefix, _hop in diff.removes:
            for chip_index in self._chips_covering(prefix):
                self.engine.chips[chip_index].table.delete(prefix)
        for prefix, hop in diff.adds:
            for chip_index in self._chips_covering(prefix):
                self.engine.chips[chip_index].table.insert(prefix, hop)

    def apply_updates(self, messages: Iterable[UpdateMessage]) -> List[TtfSample]:
        """Apply a stream of updates."""
        return [self.apply_update(message) for message in messages]

    # ------------------------------------------------------------------
    # Backpressured update path (storm survival)
    # ------------------------------------------------------------------

    def offer_update(self, message: UpdateMessage) -> bool:
        """Admit one update through the bounded queue; False = shed."""
        accepted = self.scheduler.offer(message)
        self._sync_scheduler_stats()
        return accepted

    def pump_updates(self, budget: int = 8) -> int:
        """Apply up to ``budget`` queued updates (storm mode may defer
        their TCAM writes); returns how many ran."""
        applied = self.scheduler.pump(budget)
        self._sync_scheduler_stats()
        return applied

    def drain_updates(self) -> int:
        """Empty the update queue and flush any deferred TCAM writes."""
        applied = self.scheduler.drain()
        self._sync_scheduler_stats()
        return applied

    def _sync_scheduler_stats(self) -> None:
        stats = self.engine.stats
        stats.shed_updates = self.scheduler.stats.shed
        stats.deferred_updates = self.scheduler.stats.deferred

    # ------------------------------------------------------------------
    # Fault tolerance
    # ------------------------------------------------------------------

    def fail_chip(self, chip_index: int) -> None:
        """Take one chip down; its traffic fails over to survivors' DReds.

        The control plane keeps mirroring table diffs into the dead chip's
        shadow table, so :meth:`recover_chip` brings it back consistent.
        Call :meth:`rebalance` to re-spread the table over the survivors
        once the outage looks long-lived.
        """
        self.engine.kill_chip(chip_index)

    def recover_chip(self, chip_index: int) -> None:
        """Bring a failed chip back into service."""
        self.engine.revive_chip(chip_index)

    def attach_faults(
        self,
        schedule: FaultSchedule,
        storm_seed: Optional[int] = None,
    ) -> FaultInjector:
        """Arm a fault schedule against the live engine.

        Storm events synthesise ``count`` BGP updates (seeded, against the
        current table) and push them through the backpressured scheduler —
        shedding and TCAM-write deferral happen exactly as they would under
        a real burst.  Returns the injector (also installed on the engine).
        """
        generator = UpdateGenerator(
            list(self.pipeline.trie_stage.table.source.routes()),
            seed=schedule.seed if storm_seed is None else storm_seed,
        )

        def storm_sink(cycle: int, count: int) -> None:
            del cycle
            for message in generator.take(count):
                self.offer_update(message)
            self.pump_updates(budget=count)

        injector = FaultInjector(self.engine, schedule, storm_sink=storm_sink)
        self.engine.fault_injector = injector
        return injector

    def verify_chips(
        self,
        chips: Optional[Sequence[int]] = None,
        repair: bool = True,
    ) -> ChipAuditReport:
        """Cross-check chip tables against the compressed table; heal drift.

        For every audited chip, the expected content is derived from the
        control plane's compressed table and the live index (an entry
        belongs to each chip whose range it covers).  Three kinds of drift
        are detected — wrong next hop (e.g. injected slot corruption),
        stray entries, and missing entries — and repaired in place when
        ``repair`` is true.  ``chips=None`` audits everything; pass a
        subset (or use :meth:`audit_step`) to spread the scan over idle
        windows.
        """
        chip_count = self.config.engine.chip_count
        targets = sorted(set(chips if chips is not None else range(chip_count)))
        table = self.pipeline.trie_stage.table.table
        expected: List[dict] = [dict() for _ in range(chip_count)]
        target_set = set(targets)
        for prefix, hop in table.items():
            for chip_index in self._chips_covering(prefix):
                if chip_index in target_set:
                    expected[chip_index][prefix] = hop
        report = ChipAuditReport(chips_checked=targets)
        for chip_index in targets:
            chip = self.engine.chips[chip_index]
            actual = chip.table.as_dict()
            wanted = expected[chip_index]
            report.entries_checked += len(actual.keys() | wanted.keys())
            for prefix, hop in wanted.items():
                stored = actual.get(prefix)
                if stored is None:
                    report.missing_restored += 1
                    if repair:
                        chip.table.insert(prefix, hop)
                elif stored != hop:
                    report.hops_repaired += 1
                    if repair:
                        chip.table.insert(prefix, hop)
            for prefix in actual:
                if prefix not in wanted:
                    report.stray_removed += 1
                    if repair:
                        chip.table.delete(prefix)
        if repair:
            self.audit_repairs += report.repairs
        return report

    def audit_step(self, repair: bool = True) -> ChipAuditReport:
        """Audit the next chip in round-robin order (incremental form)."""
        chip_index = self._audit_cursor
        self._audit_cursor = (chip_index + 1) % self.config.engine.chip_count
        return self.verify_chips(chips=[chip_index], repair=repair)

    def check_dred_exclusion(self) -> bool:
        """CLUE's invariant: DRed *i* never holds chip *i*'s own prefixes."""
        for chip in self.engine.chips:
            if chip.dred is None:
                continue
            for prefix in chip.dred._entries:
                if chip.table.get(prefix) is not None:
                    return False
        return True

    # ------------------------------------------------------------------
    # Maintenance (idle-time re-optimisation)
    # ------------------------------------------------------------------

    def recompress(self) -> TableDiff:
        """Shed lazy-maintenance drift: swap the minimal table back in.

        Only meaningful when the system runs with
        ``SystemConfig.lazy_compression``; with exact maintenance the diff
        is empty.  The diff is propagated to the TCAM mirror and the live
        chips like any update.
        """
        table = self.pipeline.trie_stage.table
        if not hasattr(table, "recompress"):
            return TableDiff()
        diff = table.recompress()
        self.pipeline.tcam_stage.apply_diff(diff)
        self._apply_diff_to_chips(diff)
        return diff

    def rebalance(self) -> "RebalanceReport":
        """Re-partition the (possibly drifted) table into exact even ranges.

        Churn makes partitions drift apart: updates land wherever their
        addresses fall, so some ranges grow while others shrink.  A real
        control plane re-runs the (cheap) even partitioning during idle
        time and reloads the chips; this does exactly that, reporting how
        many entries had to move between chips.  DRed banks are flushed —
        ownership changes would otherwise break the exclusion invariant —
        and simply refill from traffic.

        Failed chips are excluded: after a chip death the table is re-spread
        exactly evenly over the N−1 survivors (disjointness makes the
        re-split O(M) with no covering redundancy); a later rebalance after
        :meth:`recover_chip` folds the chip back in.
        """
        survivors = self.engine.alive_chips
        if not survivors:
            raise RuntimeError("cannot rebalance with every chip failed")
        compressed = self.pipeline.trie_stage.table.routes()
        partition_count = len(survivors) * self.config.partitions_per_chip
        new_result = even_partition(compressed, partition_count)
        new_index = RangeIndex.from_partition(new_result)
        new_mapping = [
            survivors[local]
            for local in map_partitions_to_chips(
                partition_count, len(survivors), None
            )
        ]

        old_homes = {
            prefix: chip_index
            for chip_index, chip in enumerate(self.engine.chips)
            for prefix, _hop in chip.table.routes()
        }
        new_tables: List[List[Route]] = [
            [] for _ in range(self.config.engine.chip_count)
        ]
        moved = 0
        for partition in new_result.partitions:
            chip_index = new_mapping[partition.index]
            for route in partition.routes:
                new_tables[chip_index].append(route)
                if old_homes.get(route[0]) != chip_index:
                    moved += 1

        flushed = 0
        for chip_index, chip in enumerate(self.engine.chips):
            chip.table = BinaryTrie.from_routes(new_tables[chip_index])
            chip.table_slots = len(chip.table)
            if chip.dred is not None:
                flushed += len(chip.dred)
                for prefix in list(chip.dred._entries):
                    chip.dred.delete(prefix)

        self.partition_result = new_result
        self.index = new_index
        self.partition_to_chip = new_mapping
        return RebalanceReport(
            moved_entries=moved,
            flushed_dred_entries=flushed,
            partition_sizes=new_result.sizes(),
            survivor_chips=survivors,
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def compression_report(self) -> CompressionReport:
        return CompressionReport(
            original_entries=len(self.pipeline.trie_stage.table.source),
            compressed_entries=len(self.pipeline.trie_stage.table),
            mode=self.config.compression_mode,
        )

    def report(self) -> SystemReport:
        return SystemReport(
            compression=self.compression_report(),
            engine_stats=self.engine.stats,
            ttf=self.pipeline.report,
            tcam_entries_per_chip=[
                len(chip.table) for chip in self.engine.chips
            ],
            chip_repairs=self.audit_repairs,
        )
