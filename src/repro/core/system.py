"""ClueSystem — the integrated forwarding plane (the paper's full design).

This façade wires all three pillars into one object that behaves like a
line card:

* construction compresses the table with ONRTC, splits it into exactly
  even range partitions, loads them onto the simulated chips and builds
  the range Indexing Logic;
* :meth:`process_traffic` drives the parallel lookup engine with dynamic
  redundancy;
* :meth:`apply_update` runs one BGP message through the whole update
  pipeline (trie → TCAM → DRed) *and* propagates the entry diff into the
  live chips, so lookups remain correct while the table churns — the
  integration the paper argues the three problems must be solved together.

The same DRed banks are shared between the lookup engine (which fills them
on main-table hits) and the update pipeline (which invalidates on
withdraw), exactly as in the hardware design.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.compress.labels import CompressionMode
from repro.core.config import SystemConfig
from repro.core.metrics import RecoveryStats, SystemReport
from repro.compress.onrtc import CompressionReport, TableDiff
from repro.engine.builders import map_partitions_to_chips
from repro.engine.schemes import CluePolicy
from repro.engine.simulator import EngineConfig, LookupEngine
from repro.engine.stats import EngineStats
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule
from repro.net.prefix import Prefix
from repro.partition.base import Partition, PartitionResult
from repro.partition.even import even_partition
from repro.partition.index_logic import RangeIndex
from repro.update.pipeline import ClueUpdatePipeline, UpdateScheduler
from repro.update.ttf import TtfSample
from repro.workload.updategen import UpdateGenerator, UpdateMessage

Route = Tuple[Prefix, int]

#: Version of the :meth:`ClueSystem.capture_state` layout.
STATE_VERSION = 1


@dataclass
class RebalanceReport:
    """What one idle-time repartitioning did."""

    moved_entries: int
    flushed_dred_entries: int
    partition_sizes: List[int]
    #: Chips the table was spread over (failed chips are excluded).
    survivor_chips: List[int]

    @property
    def is_even(self) -> bool:
        return max(self.partition_sizes) - min(self.partition_sizes) <= 1


@dataclass
class ChipAuditReport:
    """Outcome of one :meth:`ClueSystem.verify_chips` pass."""

    chips_checked: List[int]
    entries_checked: int = 0
    hops_repaired: int = 0
    stray_removed: int = 0
    missing_restored: int = 0

    @property
    def repairs(self) -> int:
        """Total drift corrected (or merely detected with ``repair=False``)."""
        return self.hops_repaired + self.stray_removed + self.missing_restored

    @property
    def clean(self) -> bool:
        return self.repairs == 0


class ClueSystem:
    """A complete CLUE forwarding plane over a routing table.

    >>> from repro.workload import generate_rib, RibParameters
    >>> system = ClueSystem(generate_rib(1, RibParameters(size=512)))
    >>> system.compression_report().ratio < 1.0
    True
    """

    def __init__(
        self,
        routes: Iterable[Route],
        config: Optional[SystemConfig] = None,
    ) -> None:
        routes = list(routes)
        self.config = config or SystemConfig()

        # Pillar 1+3: compression with incremental maintenance, the TCAM
        # mirror and the (for now bank-less) DRed updater.
        self.pipeline = ClueUpdatePipeline(
            routes,
            mode=self.config.compression_mode,
            cost_model=self.config.cost_model,
            lazy=self.config.lazy_compression,
        )
        self._original_size = len(routes)

        # Pillar 2: even partitioning and the parallel engine.
        compressed = self.pipeline.trie_stage.table.routes()
        partition_count = self.config.partition_count
        self.partition_result = even_partition(compressed, partition_count)
        self.index = RangeIndex.from_partition(self.partition_result)
        self.partition_to_chip = map_partitions_to_chips(
            partition_count,
            self.config.engine.chip_count,
            self.config.partition_loads,
        )
        tables: List[List[Route]] = [
            [] for _ in range(self.config.engine.chip_count)
        ]
        for partition in self.partition_result.partitions:
            tables[self.partition_to_chip[partition.index]].extend(
                partition.routes
            )
        self.engine = LookupEngine(
            tables,
            home_of=self._home_of,
            scheme=CluePolicy(),
            config=self.config.engine,
            reference=self.pipeline.trie_stage.table.source,
        )
        # ONRTC + even partitioning produce pairwise-disjoint chip tables
        # (boundary-spanning entries are exact replicas); certify that so
        # the engine's fused loop can take its O(1) DRed path.  The
        # certificate is content-addressed (table ids + mutation counters)
        # and self-invalidates on the first pipeline update.
        self.engine.mark_tables_disjoint()
        # Share the engine's DRed banks with the update pipeline so table
        # changes invalidate live cached entries.
        self.pipeline.dred_stage.caches = [
            chip.dred for chip in self.engine.chips if chip.dred is not None
        ]
        # Backpressured admission path for update storms (the direct
        # apply_update() path stays available for calm streams).
        self.scheduler = UpdateScheduler(
            self.pipeline,
            capacity=self.config.update_queue_capacity,
            high_watermark=self.config.storm_high_watermark,
            low_watermark=self.config.storm_low_watermark,
            on_diff=self._apply_diff_to_chips,
        )
        # Round-robin cursor of the incremental chip audit.
        self._audit_cursor = 0
        #: Running total of entries verify_chips() has repaired.
        self.audit_repairs = 0
        #: Durability and invariant-audit counters (journal/checkpoint/
        #: restore machinery fills these in; see repro.persist).
        self.recovery_stats = RecoveryStats()
        # Persistent incremental auditor (keeps its rotation cursor and
        # candidate-trie cache across invariant_step calls).
        self._invariant_auditor = None

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------

    def _home_of(self, address: int) -> int:
        return self.partition_to_chip[self.index.home_of(address)]

    def lookup(self, address: int) -> Optional[int]:
        """One-off LPM against the current table (control-plane path)."""
        return self.pipeline.trie_stage.table.source.lookup(address)

    def process_traffic(
        self, addresses: Iterator[int], packet_count: int
    ) -> EngineStats:
        """Run a packet burst through the parallel engine."""
        return self.engine.run(addresses, packet_count)

    def process_lookups(
        self, addresses: Sequence[int]
    ) -> List[Optional[int]]:
        """Answer a batch of lookups through the engine, in arrival order.

        This is the RPC-shaped data path (see :mod:`repro.serve`): the
        batch runs through the same parallel engine as
        :meth:`process_traffic` — DRed redundancy, diversion, statistics
        and all — and the per-address next hops are harvested from the
        reorder buffer (``None`` = no matching route).  The harvested
        completions are released from the buffer so a long-lived serving
        process stays bounded in memory.
        """
        addresses = list(addresses)
        released = self.engine.reorder.released
        start = len(released)
        self.engine.run(iter(addresses), len(addresses))
        hops = [completion.next_hop for completion in released[start:]]
        del released[start:]
        return hops

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------

    def apply_update(self, message: UpdateMessage) -> TtfSample:
        """Run one BGP update through trie, TCAM, DRed and the live chips."""
        sample = self.pipeline.apply(message)
        diff = self.pipeline.last_diff
        if diff is not None:
            self._apply_diff_to_chips(diff)
        return sample

    def _chips_covering(self, prefix: Prefix) -> List[int]:
        """Every chip whose address range the prefix overlaps.

        Partition boundaries are aligned with entry boundaries *at
        partitioning time* (disjointness guarantees it), but an entry added
        later — don't-care merging can emit wide covering entries — may
        span several of the frozen ranges.  Such an entry must live in
        every chip whose range it serves, or lookups homed to the later
        ranges would miss.  :meth:`rebalance` collapses the replicas back
        to one copy each.
        """
        first = self.index.home_of(prefix.network)
        last = self.index.home_of(prefix.broadcast)
        return sorted(
            {
                self.partition_to_chip[partition]
                for partition in range(first, last + 1)
            }
        )

    def _apply_diff_to_chips(self, diff: TableDiff) -> None:
        for prefix, _hop in diff.removes:
            for chip_index in self._chips_covering(prefix):
                self.engine.chips[chip_index].table.delete(prefix)
        for prefix, hop in diff.adds:
            for chip_index in self._chips_covering(prefix):
                self.engine.chips[chip_index].table.insert(prefix, hop)

    def apply_updates(self, messages: Iterable[UpdateMessage]) -> List[TtfSample]:
        """Apply a stream of updates."""
        return [self.apply_update(message) for message in messages]

    # ------------------------------------------------------------------
    # Backpressured update path (storm survival)
    # ------------------------------------------------------------------

    def offer_update(self, message: UpdateMessage) -> bool:
        """Admit one update through the bounded queue; False = shed."""
        accepted = self.scheduler.offer(message)
        self._sync_scheduler_stats()
        return accepted

    def pump_updates(self, budget: int = 8) -> int:
        """Apply up to ``budget`` queued updates (storm mode may defer
        their TCAM writes); returns how many ran."""
        applied = self.scheduler.pump(budget)
        self._sync_scheduler_stats()
        return applied

    def drain_updates(self) -> int:
        """Empty the update queue and flush any deferred TCAM writes."""
        applied = self.scheduler.drain()
        self._sync_scheduler_stats()
        return applied

    def _sync_scheduler_stats(self) -> None:
        stats = self.engine.stats
        stats.shed_updates = self.scheduler.stats.shed
        stats.deferred_updates = self.scheduler.stats.deferred

    # ------------------------------------------------------------------
    # Fault tolerance
    # ------------------------------------------------------------------

    def fail_chip(self, chip_index: int) -> None:
        """Take one chip down; its traffic fails over to survivors' DReds.

        The control plane keeps mirroring table diffs into the dead chip's
        shadow table, so :meth:`recover_chip` brings it back consistent.
        Call :meth:`rebalance` to re-spread the table over the survivors
        once the outage looks long-lived.
        """
        self.engine.kill_chip(chip_index)

    def recover_chip(self, chip_index: int) -> None:
        """Bring a failed chip back into service."""
        self.engine.revive_chip(chip_index)

    def attach_faults(
        self,
        schedule: FaultSchedule,
        storm_seed: Optional[int] = None,
    ) -> FaultInjector:
        """Arm a fault schedule against the live engine.

        Storm events synthesise ``count`` BGP updates (seeded, against the
        current table) and push them through the backpressured scheduler —
        shedding and TCAM-write deferral happen exactly as they would under
        a real burst.  Returns the injector (also installed on the engine).
        """
        generator = UpdateGenerator(
            list(self.pipeline.trie_stage.table.source.routes()),
            seed=schedule.seed if storm_seed is None else storm_seed,
        )

        def storm_sink(cycle: int, count: int) -> None:
            del cycle
            for message in generator.take(count):
                self.offer_update(message)
            self.pump_updates(budget=count)

        injector = FaultInjector(self.engine, schedule, storm_sink=storm_sink)
        self.engine.fault_injector = injector
        return injector

    def verify_chips(
        self,
        chips: Optional[Sequence[int]] = None,
        repair: bool = True,
    ) -> ChipAuditReport:
        """Cross-check chip tables against the compressed table; heal drift.

        For every audited chip, the expected content is derived from the
        control plane's compressed table and the live index (an entry
        belongs to each chip whose range it covers).  Three kinds of drift
        are detected — wrong next hop (e.g. injected slot corruption),
        stray entries, and missing entries — and repaired in place when
        ``repair`` is true.  ``chips=None`` audits everything; pass a
        subset (or use :meth:`audit_step`) to spread the scan over idle
        windows.
        """
        chip_count = self.config.engine.chip_count
        targets = sorted(set(chips if chips is not None else range(chip_count)))
        table = self.pipeline.trie_stage.table.table
        expected: List[dict] = [dict() for _ in range(chip_count)]
        target_set = set(targets)
        for prefix, hop in table.items():
            for chip_index in self._chips_covering(prefix):
                if chip_index in target_set:
                    expected[chip_index][prefix] = hop
        report = ChipAuditReport(chips_checked=targets)
        for chip_index in targets:
            chip = self.engine.chips[chip_index]
            actual = chip.table.as_dict()
            wanted = expected[chip_index]
            report.entries_checked += len(actual.keys() | wanted.keys())
            for prefix, hop in wanted.items():
                stored = actual.get(prefix)
                if stored is None:
                    report.missing_restored += 1
                    if repair:
                        chip.table.insert(prefix, hop)
                elif stored != hop:
                    report.hops_repaired += 1
                    if repair:
                        chip.table.insert(prefix, hop)
            for prefix in actual:
                if prefix not in wanted:
                    report.stray_removed += 1
                    if repair:
                        chip.table.delete(prefix)
        if repair:
            self.audit_repairs += report.repairs
        return report

    def audit_step(self, repair: bool = True) -> ChipAuditReport:
        """Audit the next chip in round-robin order (incremental form)."""
        chip_index = self._audit_cursor
        self._audit_cursor = (chip_index + 1) % self.config.engine.chip_count
        return self.verify_chips(chips=[chip_index], repair=repair)

    def check_dred_exclusion(self) -> bool:
        """CLUE's invariant: DRed *i* never holds chip *i*'s own prefixes."""
        for chip in self.engine.chips:
            if chip.dred is None:
                continue
            for prefix in chip.dred._entries:
                if chip.table.get(prefix) is not None:
                    return False
        return True

    # ------------------------------------------------------------------
    # Maintenance (idle-time re-optimisation)
    # ------------------------------------------------------------------

    def recompress(self) -> TableDiff:
        """Shed lazy-maintenance drift: swap the minimal table back in.

        Only meaningful when the system runs with
        ``SystemConfig.lazy_compression``; with exact maintenance the diff
        is empty.  The diff is propagated to the TCAM mirror and the live
        chips like any update.
        """
        table = self.pipeline.trie_stage.table
        if not hasattr(table, "recompress"):
            return TableDiff()
        diff = table.recompress()
        self.pipeline.tcam_stage.apply_diff(diff)
        self._apply_diff_to_chips(diff)
        return diff

    def rebalance(self) -> "RebalanceReport":
        """Re-partition the (possibly drifted) table into exact even ranges.

        Churn makes partitions drift apart: updates land wherever their
        addresses fall, so some ranges grow while others shrink.  A real
        control plane re-runs the (cheap) even partitioning during idle
        time and reloads the chips; this does exactly that, reporting how
        many entries had to move between chips.  DRed banks are flushed —
        ownership changes would otherwise break the exclusion invariant —
        and simply refill from traffic.

        Failed chips are excluded: after a chip death the table is re-spread
        exactly evenly over the N−1 survivors (disjointness makes the
        re-split O(M) with no covering redundancy); a later rebalance after
        :meth:`recover_chip` folds the chip back in.
        """
        survivors = self.engine.alive_chips
        if not survivors:
            raise RuntimeError("cannot rebalance with every chip failed")
        compressed = self.pipeline.trie_stage.table.routes()
        partition_count = len(survivors) * self.config.partitions_per_chip
        new_result = even_partition(compressed, partition_count)
        new_index = RangeIndex.from_partition(new_result)
        new_mapping = [
            survivors[local]
            for local in map_partitions_to_chips(
                partition_count, len(survivors), None
            )
        ]

        old_homes = {
            prefix: chip_index
            for chip_index, chip in enumerate(self.engine.chips)
            for prefix, _hop in chip.table.routes()
        }
        new_tables: List[List[Route]] = [
            [] for _ in range(self.config.engine.chip_count)
        ]
        moved = 0
        for partition in new_result.partitions:
            chip_index = new_mapping[partition.index]
            for route in partition.routes:
                new_tables[chip_index].append(route)
                if old_homes.get(route[0]) != chip_index:
                    moved += 1

        flushed = 0
        for chip_index, chip in enumerate(self.engine.chips):
            chip.load_routes(new_tables[chip_index])
            if chip.dred is not None:
                flushed += len(chip.dred)
                for prefix in list(chip.dred._entries):
                    chip.dred.delete(prefix)

        self.partition_result = new_result
        self.index = new_index
        self.partition_to_chip = new_mapping
        # Freshly re-partitioned disjoint content: renew the certificate
        # (load_routes swapped the tables, invalidating the old one).
        self.engine.mark_tables_disjoint()
        return RebalanceReport(
            moved_entries=moved,
            flushed_dred_entries=flushed,
            partition_sizes=new_result.sizes(),
            survivor_chips=survivors,
        )

    # ------------------------------------------------------------------
    # Durability (snapshot capture / restore / fingerprint)
    # ------------------------------------------------------------------

    def capture_state(self) -> Dict:
        """The full control-plane state as a JSON-ready dict.

        Everything the crash-consistency contract covers is here: the
        source trie (ground truth), the compressed table it determines,
        the live partitioning (boundaries + chip mapping, which drift
        from the config after :meth:`rebalance`), per-chip TCAM content
        and liveness, DRed content *in LRU order*, and the scheduler's
        queue, storm flag and deferred-diff batch.  Data-plane counters
        (engine stats, TTF samples) are metrics, not state, and are not
        captured.

        Raises :class:`ValueError` under ``lazy_compression`` — the lazy
        table depends on update history, so rebuilding it from the source
        trie would not be deterministic.
        """
        from repro.persist import codec

        if self.config.lazy_compression:
            raise ValueError(
                "state capture requires exact ONRTC maintenance "
                "(lazy_compression must be off); the lazy table is a "
                "function of update history, not of the trie"
            )
        table = self.pipeline.trie_stage.table
        return {
            "version": STATE_VERSION,
            "config": self._config_state(),
            "source_routes": codec.encode_routes(table.source.routes()),
            "compressed": codec.encode_routes(table.table.items()),
            "boundaries": list(self.index.boundaries),
            "partition_to_chip": list(self.partition_to_chip),
            "chips": self._chip_states(),
            "scheduler": self._scheduler_state(include_stats=True),
            "audit_repairs": self.audit_repairs,
            "audit_cursor": self._audit_cursor,
        }

    @classmethod
    def from_state(
        cls, state: Dict, config: Optional[SystemConfig] = None
    ) -> "ClueSystem":
        """Rebuild a system from a :meth:`capture_state` dict.

        The compressed table is *recomputed* from the snapshot's source
        routes (ONRTC is a pure function of the trie) and verified
        against the snapshot's recorded table — a mismatch means the
        snapshot is internally inconsistent and raises
        :class:`ValueError`, which the restore path treats like any
        other corrupt snapshot (fall back to an older one).

        ``config`` overrides the serialized configuration; note the cost
        model (TTF conversion constants) is not serialized — pass a
        config to restore a non-default one.
        """
        from repro.persist import codec

        try:
            version = int(state["version"])
            if version != STATE_VERSION:
                raise ValueError(
                    f"snapshot state v{version} unsupported "
                    f"(this build reads v{STATE_VERSION})"
                )
            if config is None:
                config = cls._config_from_state(state["config"])
            system = cls(codec.decode_routes(state["source_routes"]), config)
            recompressed = codec.encode_routes(
                system.pipeline.trie_stage.table.table.items()
            )
            if recompressed != state["compressed"]:
                raise ValueError(
                    "snapshot is internally inconsistent: its compressed "
                    "table is not the deterministic recompression of its "
                    "source trie"
                )
            system._restore_partitions(state)
            system._restore_chips(state["chips"])
            system._restore_scheduler(state["scheduler"])
            system.audit_repairs = int(state.get("audit_repairs", 0))
            system._audit_cursor = int(state.get("audit_cursor", 0))
            return system
        except (KeyError, TypeError, IndexError) as exc:
            raise ValueError(f"malformed snapshot state: {exc!r}") from exc

    def state_fingerprint(self) -> str:
        """SHA-256 over the state the crash-recovery contract guarantees.

        Counters and metrics are excluded on purpose: a restored system
        replaying a journal suffix must converge to the same *forwarding
        behaviour* as the uninterrupted run — tables, partitioning, DRed
        content, queue content and deferred TCAM writes — not to the
        same bean counts.
        """
        from repro.persist import codec
        from repro.persist.snapshot import state_digest

        table = self.pipeline.trie_stage.table
        return state_digest(
            {
                "compressed": codec.encode_routes(table.table.items()),
                "boundaries": list(self.index.boundaries),
                "partition_to_chip": list(self.partition_to_chip),
                "chips": self._chip_states(),
                "scheduler": self._scheduler_state(include_stats=False),
            }
        )

    def control_fingerprint(self) -> str:
        """SHA-256 over the state the *journal alone* determines.

        The replication watermark check compares primary and backup after
        each shipped batch, but only updates travel in the journal —
        lookups mutate DRed (LRU order, evictions) on the primary without
        leaving a record, so the full :meth:`state_fingerprint` diverges
        between replicas the moment lookup traffic interleaves with
        shipping.  This digest drops DRed content and covers exactly what
        replaying the shipped records must reproduce: the compressed
        table, the partitioning, per-chip TCAM content and liveness, and
        the scheduler's queue/storm/deferred-diff state.
        """
        from repro.persist import codec
        from repro.persist.snapshot import state_digest

        table = self.pipeline.trie_stage.table
        chips = [
            {"table": chip["table"], "alive": chip["alive"]}
            for chip in self._chip_states()
        ]
        return state_digest(
            {
                "compressed": codec.encode_routes(table.table.items()),
                "boundaries": list(self.index.boundaries),
                "partition_to_chip": list(self.partition_to_chip),
                "chips": chips,
                "scheduler": self._scheduler_state(include_stats=False),
            }
        )

    # -- capture/restore helpers ---------------------------------------

    def _config_state(self) -> Dict:
        engine = self.config.engine
        return {
            "engine": {
                "chip_count": engine.chip_count,
                "lookup_cycles": engine.lookup_cycles,
                "queue_capacity": engine.queue_capacity,
                "dred_capacity": engine.dred_capacity,
                "arrivals_per_cycle": engine.arrivals_per_cycle,
                "max_dred_attempts": engine.max_dred_attempts,
                "control_path_cycles": engine.control_path_cycles,
                "lookup_backend": engine.lookup_backend,
            },
            "partitions_per_chip": self.config.partitions_per_chip,
            "compression_mode": self.config.compression_mode.name,
            "update_queue_capacity": self.config.update_queue_capacity,
            "storm_high_watermark": self.config.storm_high_watermark,
            "storm_low_watermark": self.config.storm_low_watermark,
        }

    @staticmethod
    def _config_from_state(data: Dict) -> SystemConfig:
        engine = data["engine"]
        try:
            mode = CompressionMode[data["compression_mode"]]
        except KeyError as exc:
            raise ValueError(
                f"unknown compression mode {data['compression_mode']!r}"
            ) from exc
        return SystemConfig(
            engine=EngineConfig(
                chip_count=int(engine["chip_count"]),
                lookup_cycles=int(engine["lookup_cycles"]),
                queue_capacity=int(engine["queue_capacity"]),
                dred_capacity=int(engine["dred_capacity"]),
                arrivals_per_cycle=float(engine["arrivals_per_cycle"]),
                max_dred_attempts=int(engine["max_dred_attempts"]),
                control_path_cycles=int(engine["control_path_cycles"]),
                # Absent in v1 snapshots written before the backend knob.
                lookup_backend=str(engine.get("lookup_backend", "trie")),
            ),
            partitions_per_chip=int(data["partitions_per_chip"]),
            compression_mode=mode,
            update_queue_capacity=int(data["update_queue_capacity"]),
            storm_high_watermark=float(data["storm_high_watermark"]),
            storm_low_watermark=float(data["storm_low_watermark"]),
        )

    def _chip_states(self) -> List[Dict]:
        from repro.persist import codec

        chips = []
        for chip in self.engine.chips:
            dred = None
            if chip.dred is not None:
                # OrderedDict iteration == LRU order; eviction behaviour
                # after restore depends on preserving it exactly.
                dred = [
                    [str(prefix), entry.next_hop, entry.owner]
                    for prefix, entry in chip.dred._entries.items()
                ]
            chips.append(
                {
                    "table": codec.encode_routes(chip.table.routes()),
                    "alive": chip.alive,
                    "dred": dred,
                }
            )
        return chips

    def _scheduler_state(self, include_stats: bool) -> Dict:
        from repro.persist import codec

        scheduler = self.scheduler
        queue = scheduler.queue
        state = {
            "queue": [codec.encode_message(m) for m in queue.items()],
            "storm_mode": scheduler.storm_mode,
            "deferred": [
                [seq, codec.encode_diff(diff)]
                for seq, diff in scheduler.pending_diffs()
            ],
            "defer_seq": scheduler._defer_seq,
        }
        if include_stats:
            state["queue_counters"] = [
                queue.offered,
                queue.accepted,
                queue.shed,
                queue.deferred,
                queue.peak_occupancy,
            ]
            state["stats"] = {
                field.name: getattr(scheduler.stats, field.name)
                for field in dataclasses.fields(scheduler.stats)
            }
        return state

    def _restore_partitions(self, state: Dict) -> None:
        boundaries = [int(b) for b in state["boundaries"]]
        self.index = RangeIndex(boundaries)
        self.partition_to_chip = [int(c) for c in state["partition_to_chip"]]
        # The partition objects are rederivable: bucket the compressed
        # table by the restored boundaries.
        partitions = [Partition(index) for index in range(len(boundaries))]
        for route in self.pipeline.trie_stage.table.routes():
            partitions[self.index.home_of(route[0].network)].routes.append(
                route
            )
        self.partition_result = PartitionResult(
            algorithm="clue-even", partitions=partitions
        )

    def _restore_chips(self, chip_states: List[Dict]) -> None:
        from repro.persist import codec

        if len(chip_states) != len(self.engine.chips):
            raise ValueError(
                f"snapshot has {len(chip_states)} chips, "
                f"engine has {len(self.engine.chips)}"
            )
        for chip, chip_state in zip(self.engine.chips, chip_states):
            chip.load_routes(codec.decode_routes(chip_state["table"]))
            # Set liveness directly: kill_chip() would count a fresh
            # failure in the engine stats.
            chip.alive = bool(chip_state["alive"])
            if chip.dred is not None:
                for prefix in list(chip.dred._entries):
                    chip.dred.delete(prefix)
                for text, hop, owner in chip_state.get("dred") or []:
                    chip.dred.insert(Prefix.parse(text), int(hop), int(owner))

    def _restore_scheduler(self, state: Dict) -> None:
        from repro.persist import codec

        scheduler = self.scheduler
        for text in state["queue"]:
            scheduler.queue.offer(codec.decode_message(text))
        scheduler.storm_mode = bool(state["storm_mode"])
        deferred = [
            (int(seq), codec.decode_diff(diff))
            for seq, diff in state["deferred"]
        ]
        scheduler.restore_deferred(deferred, int(state["defer_seq"]))
        if deferred:
            self._rewind_tcam_mirror([diff for _seq, diff in deferred])
        if "queue_counters" in state:
            queue = scheduler.queue
            (
                queue.offered,
                queue.accepted,
                queue.shed,
                queue.deferred,
                queue.peak_occupancy,
            ) = [int(value) for value in state["queue_counters"]]
        for name, value in state.get("stats", {}).items():
            setattr(scheduler.stats, name, value)
        self._sync_scheduler_stats()

    def _rewind_tcam_mirror(self, deferred: List[TableDiff]) -> None:
        """Rebuild the TCAM mirror *behind* the trie by the deferred batch.

        A snapshot taken in storm mode records a trie that is ahead of
        the TCAM mirror by exactly the deferred diffs; the constructor,
        however, builds the mirror from the *current* table.  Undo the
        deferred diffs in reverse order to recover the mirror's true
        (stale) content, so the replayed flush applies them cleanly.
        """
        from repro.update.tcam_update import ClueTcamMirror

        content = dict(self.pipeline.trie_stage.table.table)
        for diff in reversed(deferred):
            for prefix, _hop in diff.adds:
                if content.pop(prefix, None) is None:
                    raise ValueError(
                        f"deferred diff adds {prefix}, which the snapshot "
                        f"table does not contain"
                    )
            for prefix, hop in diff.removes:
                content[prefix] = hop
        self.pipeline.tcam_stage = ClueTcamMirror(
            sorted(content.items(), key=lambda route: route[0].sort_key())
        )

    # ------------------------------------------------------------------
    # Invariant auditing (see repro.persist.audit)
    # ------------------------------------------------------------------

    def audit_invariants(
        self, sample_size: int = 256, seed: int = 0, halt: bool = False
    ):
        """Full invariant pass: disjointness, trie↔table equivalence on
        sampled addresses, partition coverage/evenness, DRed exclusion.

        Violations land in :attr:`recovery_stats`; with ``halt`` a broken
        invariant raises :class:`~repro.persist.audit.InvariantViolationError`.
        """
        from repro.persist.audit import InvariantAuditor

        auditor = InvariantAuditor(self, sample_size=sample_size, seed=seed)
        report = auditor.run(halt=False)
        self.recovery_stats.audit_runs += 1
        self.recovery_stats.audit_violations += len(report.violations)
        if halt and not report.ok:
            from repro.persist.audit import InvariantViolationError

            raise InvariantViolationError(report)
        return report

    def invariant_step(self, budget: int = 64, halt: bool = False):
        """One bounded increment of the invariant audit (round-robin over
        the checks, the way :meth:`audit_step` spreads the chip scan)."""
        from repro.persist.audit import InvariantAuditor, InvariantViolationError

        if self._invariant_auditor is None:
            self._invariant_auditor = InvariantAuditor(self)
        report = self._invariant_auditor.step(budget=budget)
        self.recovery_stats.audit_runs += 1
        self.recovery_stats.audit_violations += len(report.violations)
        if halt and not report.ok:
            raise InvariantViolationError(report)
        return report

    def enable_continuous_audit(
        self, period: int = 1024, budget: int = 64, halt: bool = False
    ) -> None:
        """Audit invariants every ``period`` engine cycles while traffic
        runs (chains with any observer already on ``engine.on_cycle``)."""
        if period < 1:
            raise ValueError("audit period must be positive")
        previous = self.engine.on_cycle

        def observer(cycle: int) -> None:
            if previous is not None:
                previous(cycle)
            if cycle and cycle % period == 0:
                self.invariant_step(budget=budget, halt=halt)

        self.engine.on_cycle = observer

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def compression_report(self) -> CompressionReport:
        return CompressionReport(
            original_entries=len(self.pipeline.trie_stage.table.source),
            compressed_entries=len(self.pipeline.trie_stage.table),
            mode=self.config.compression_mode,
        )

    def report(self) -> SystemReport:
        return SystemReport(
            compression=self.compression_report(),
            engine_stats=self.engine.stats,
            ttf=self.pipeline.report,
            tcam_entries_per_chip=[
                len(chip.table) for chip in self.engine.chips
            ],
            chip_repairs=self.audit_repairs,
            recovery=self.recovery_stats,
        )
