"""ClueSystem — the integrated forwarding plane (the paper's full design).

This façade wires all three pillars into one object that behaves like a
line card:

* construction compresses the table with ONRTC, splits it into exactly
  even range partitions, loads them onto the simulated chips and builds
  the range Indexing Logic;
* :meth:`process_traffic` drives the parallel lookup engine with dynamic
  redundancy;
* :meth:`apply_update` runs one BGP message through the whole update
  pipeline (trie → TCAM → DRed) *and* propagates the entry diff into the
  live chips, so lookups remain correct while the table churns — the
  integration the paper argues the three problems must be solved together.

The same DRed banks are shared between the lookup engine (which fills them
on main-table hits) and the update pipeline (which invalidates on
withdraw), exactly as in the hardware design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.core.config import SystemConfig
from repro.core.metrics import SystemReport
from repro.compress.onrtc import CompressionReport, TableDiff
from repro.engine.builders import map_partitions_to_chips
from repro.engine.schemes import CluePolicy
from repro.engine.simulator import LookupEngine
from repro.engine.stats import EngineStats
from repro.net.prefix import Prefix
from repro.partition.even import even_partition
from repro.partition.index_logic import RangeIndex
from repro.trie.trie import BinaryTrie
from repro.update.pipeline import ClueUpdatePipeline
from repro.update.ttf import TtfSample
from repro.workload.updategen import UpdateMessage

Route = Tuple[Prefix, int]


@dataclass
class RebalanceReport:
    """What one idle-time repartitioning did."""

    moved_entries: int
    flushed_dred_entries: int
    partition_sizes: List[int]

    @property
    def is_even(self) -> bool:
        return max(self.partition_sizes) - min(self.partition_sizes) <= 1


class ClueSystem:
    """A complete CLUE forwarding plane over a routing table.

    >>> from repro.workload import generate_rib, RibParameters
    >>> system = ClueSystem(generate_rib(1, RibParameters(size=512)))
    >>> system.compression_report().ratio < 1.0
    True
    """

    def __init__(
        self,
        routes: Iterable[Route],
        config: Optional[SystemConfig] = None,
    ) -> None:
        routes = list(routes)
        self.config = config or SystemConfig()

        # Pillar 1+3: compression with incremental maintenance, the TCAM
        # mirror and the (for now bank-less) DRed updater.
        self.pipeline = ClueUpdatePipeline(
            routes,
            mode=self.config.compression_mode,
            cost_model=self.config.cost_model,
            lazy=self.config.lazy_compression,
        )
        self._original_size = len(routes)

        # Pillar 2: even partitioning and the parallel engine.
        compressed = self.pipeline.trie_stage.table.routes()
        partition_count = self.config.partition_count
        self.partition_result = even_partition(compressed, partition_count)
        self.index = RangeIndex.from_partition(self.partition_result)
        self.partition_to_chip = map_partitions_to_chips(
            partition_count,
            self.config.engine.chip_count,
            self.config.partition_loads,
        )
        tables: List[List[Route]] = [
            [] for _ in range(self.config.engine.chip_count)
        ]
        for partition in self.partition_result.partitions:
            tables[self.partition_to_chip[partition.index]].extend(
                partition.routes
            )
        self.engine = LookupEngine(
            tables,
            home_of=self._home_of,
            scheme=CluePolicy(),
            config=self.config.engine,
            reference=self.pipeline.trie_stage.table.source,
        )
        # Share the engine's DRed banks with the update pipeline so table
        # changes invalidate live cached entries.
        self.pipeline.dred_stage.caches = [
            chip.dred for chip in self.engine.chips if chip.dred is not None
        ]

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------

    def _home_of(self, address: int) -> int:
        return self.partition_to_chip[self.index.home_of(address)]

    def lookup(self, address: int) -> Optional[int]:
        """One-off LPM against the current table (control-plane path)."""
        return self.pipeline.trie_stage.table.source.lookup(address)

    def process_traffic(
        self, addresses: Iterator[int], packet_count: int
    ) -> EngineStats:
        """Run a packet burst through the parallel engine."""
        return self.engine.run(addresses, packet_count)

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------

    def apply_update(self, message: UpdateMessage) -> TtfSample:
        """Run one BGP update through trie, TCAM, DRed and the live chips."""
        sample = self.pipeline.apply(message)
        diff = self.pipeline.last_diff
        if diff is not None:
            self._apply_diff_to_chips(diff)
        return sample

    def _chips_covering(self, prefix: Prefix) -> List[int]:
        """Every chip whose address range the prefix overlaps.

        Partition boundaries are aligned with entry boundaries *at
        partitioning time* (disjointness guarantees it), but an entry added
        later — don't-care merging can emit wide covering entries — may
        span several of the frozen ranges.  Such an entry must live in
        every chip whose range it serves, or lookups homed to the later
        ranges would miss.  :meth:`rebalance` collapses the replicas back
        to one copy each.
        """
        first = self.index.home_of(prefix.network)
        last = self.index.home_of(prefix.broadcast)
        return sorted(
            {
                self.partition_to_chip[partition]
                for partition in range(first, last + 1)
            }
        )

    def _apply_diff_to_chips(self, diff: TableDiff) -> None:
        for prefix, _hop in diff.removes:
            for chip_index in self._chips_covering(prefix):
                self.engine.chips[chip_index].table.delete(prefix)
        for prefix, hop in diff.adds:
            for chip_index in self._chips_covering(prefix):
                self.engine.chips[chip_index].table.insert(prefix, hop)

    def apply_updates(self, messages: Iterable[UpdateMessage]) -> List[TtfSample]:
        """Apply a stream of updates."""
        return [self.apply_update(message) for message in messages]

    # ------------------------------------------------------------------
    # Maintenance (idle-time re-optimisation)
    # ------------------------------------------------------------------

    def recompress(self) -> TableDiff:
        """Shed lazy-maintenance drift: swap the minimal table back in.

        Only meaningful when the system runs with
        ``SystemConfig.lazy_compression``; with exact maintenance the diff
        is empty.  The diff is propagated to the TCAM mirror and the live
        chips like any update.
        """
        table = self.pipeline.trie_stage.table
        if not hasattr(table, "recompress"):
            return TableDiff()
        diff = table.recompress()
        self.pipeline.tcam_stage.apply_diff(diff)
        self._apply_diff_to_chips(diff)
        return diff

    def rebalance(self) -> "RebalanceReport":
        """Re-partition the (possibly drifted) table into exact even ranges.

        Churn makes partitions drift apart: updates land wherever their
        addresses fall, so some ranges grow while others shrink.  A real
        control plane re-runs the (cheap) even partitioning during idle
        time and reloads the chips; this does exactly that, reporting how
        many entries had to move between chips.  DRed banks are flushed —
        ownership changes would otherwise break the exclusion invariant —
        and simply refill from traffic.
        """
        compressed = self.pipeline.trie_stage.table.routes()
        partition_count = self.config.partition_count
        new_result = even_partition(compressed, partition_count)
        new_index = RangeIndex.from_partition(new_result)
        new_mapping = map_partitions_to_chips(
            partition_count, self.config.engine.chip_count, None
        )

        old_homes = {
            prefix: chip_index
            for chip_index, chip in enumerate(self.engine.chips)
            for prefix, _hop in chip.table.routes()
        }
        new_tables: List[List[Route]] = [
            [] for _ in range(self.config.engine.chip_count)
        ]
        moved = 0
        for partition in new_result.partitions:
            chip_index = new_mapping[partition.index]
            for route in partition.routes:
                new_tables[chip_index].append(route)
                if old_homes.get(route[0]) != chip_index:
                    moved += 1

        flushed = 0
        for chip_index, chip in enumerate(self.engine.chips):
            chip.table = BinaryTrie.from_routes(new_tables[chip_index])
            chip.table_slots = len(chip.table)
            if chip.dred is not None:
                flushed += len(chip.dred)
                for prefix in list(chip.dred._entries):
                    chip.dred.delete(prefix)

        self.partition_result = new_result
        self.index = new_index
        self.partition_to_chip = new_mapping
        return RebalanceReport(
            moved_entries=moved,
            flushed_dred_entries=flushed,
            partition_sizes=new_result.sizes(),
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def compression_report(self) -> CompressionReport:
        return CompressionReport(
            original_entries=len(self.pipeline.trie_stage.table.source),
            compressed_entries=len(self.pipeline.trie_stage.table),
            mode=self.config.compression_mode,
        )

    def report(self) -> SystemReport:
        return SystemReport(
            compression=self.compression_report(),
            engine_stats=self.engine.stats,
            ttf=self.pipeline.report,
            tcam_entries_per_chip=[
                len(chip.table) for chip in self.engine.chips
            ],
        )
