"""CLUE reproduction: routing table Compression, parallel Lookup, fast UpdatE.

Reproduction of *CLUE: Achieving Fast Update over Compressed Table for
Parallel Lookup with Reduced Dynamic Redundancy* (Yang et al., ICDCS 2012).

Start with :mod:`repro.core` for the integrated engine, or the individual
pillars: :mod:`repro.compress` (ONRTC), :mod:`repro.engine` (parallel TCAM
lookup with dynamic redundancy), :mod:`repro.update` (TTF pipeline).
"""

__version__ = "1.1.0"
