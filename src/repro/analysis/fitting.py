"""Curve fitting for the evaluation figures.

Figure 16 overlays a cubic fit on the measured (hit rate, speedup) points;
this module provides the same fit without pulling plotting machinery into
the library.  Least squares is solved with plain normal equations over a
Vandermonde matrix — the systems are 4×4, so no numerical library is
needed.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def polyfit(
    xs: Sequence[float], ys: Sequence[float], degree: int
) -> List[float]:
    """Least-squares polynomial coefficients, lowest order first.

    Requires at least ``degree + 1`` points.
    """
    if len(xs) != len(ys):
        raise ValueError("x and y lengths differ")
    terms = degree + 1
    if len(xs) < terms:
        raise ValueError("not enough points for the requested degree")
    # Normal equations: (VᵀV) a = Vᵀy with V the Vandermonde matrix.
    gram = [[0.0] * terms for _ in range(terms)]
    moment = [0.0] * terms
    for x, y in zip(xs, ys):
        powers = [1.0]
        for _ in range(2 * degree):
            powers.append(powers[-1] * x)
        for row in range(terms):
            moment[row] += y * powers[row]
            for col in range(terms):
                gram[row][col] += powers[row + col]
    return _solve(gram, moment)


def polyval(coefficients: Sequence[float], x: float) -> float:
    """Evaluate a polynomial given coefficients lowest order first."""
    result = 0.0
    for coefficient in reversed(coefficients):
        result = result * x + coefficient
    return result


def cubic_fit(
    points: Sequence[Tuple[float, float]]
) -> List[float]:
    """The Figure 16 fit: cubic through (hit rate, speedup) samples."""
    xs = [point[0] for point in points]
    ys = [point[1] for point in points]
    return polyfit(xs, ys, 3)


def _solve(matrix: List[List[float]], vector: List[float]) -> List[float]:
    """Gaussian elimination with partial pivoting (tiny dense systems)."""
    size = len(vector)
    augmented = [row[:] + [vector[index]] for index, row in enumerate(matrix)]
    for column in range(size):
        pivot_row = max(
            range(column, size), key=lambda row: abs(augmented[row][column])
        )
        if abs(augmented[pivot_row][column]) < 1e-12:
            raise ValueError("singular system (degenerate fit points)")
        augmented[column], augmented[pivot_row] = (
            augmented[pivot_row],
            augmented[column],
        )
        pivot = augmented[column][column]
        for row in range(size):
            if row == column:
                continue
            factor = augmented[row][column] / pivot
            for col in range(column, size + 1):
                augmented[row][col] -= factor * augmented[column][col]
    return [augmented[index][size] / augmented[index][index] for index in range(size)]
