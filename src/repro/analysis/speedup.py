"""The speedup-factor bound of Section III-D.

With N chips, DRed hit rate h and the adversarial workload that homes all
traffic on one chip, the paper derives the worst-case speedup

    t = (N − 1) · h + 1                                  (equation 5)

valid whenever h ≥ (N−2)/(N−1) (equation 4) — the regime where chip 1's
spare capacity can absorb the DRed misses.  Real traffic satisfies
t ≥ (N−1)h + 1, which Figure 16 confirms and our simulator reproduces
(tests/integration/test_speedup_bound.py).
"""

from __future__ import annotations


def worst_case_speedup(chip_count: int, hit_rate: float) -> float:
    """t = (N−1)·h + 1 — the guaranteed speedup floor."""
    if chip_count < 2:
        raise ValueError("the bound needs at least two chips")
    if not 0.0 <= hit_rate <= 1.0:
        raise ValueError("hit rate must be in [0, 1]")
    return (chip_count - 1) * hit_rate + 1.0


def required_hit_rate(chip_count: int) -> float:
    """h ≥ (N−2)/(N−1) — the hit rate at which t ≥ N−1 is guaranteed."""
    if chip_count < 2:
        raise ValueError("the bound needs at least two chips")
    return (chip_count - 2) / (chip_count - 1)


def bound_satisfied(
    chip_count: int,
    hit_rate: float,
    speedup: float,
    tolerance: float = 0.02,
) -> bool:
    """Whether a measured (h, t) point respects the worst-case floor.

    The bound's derivation assumes h in its validity domain; below
    ``required_hit_rate`` the system can re-divert misses and the floor
    does not apply, so such points are vacuously accepted.
    """
    if hit_rate < required_hit_rate(chip_count):
        return True
    return speedup >= worst_case_speedup(chip_count, hit_rate) - tolerance


def implied_utilisation(chip_count: int, speedup: float) -> float:
    """u from equation (1): t = N + u − 1, clamped to [0, 1]."""
    return min(1.0, max(0.0, speedup - chip_count + 1))
