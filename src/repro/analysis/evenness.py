"""Distribution-evenness metrics for partition sizes and chip loads.

Figure 9 (partition evenness) and Figure 15 (traffic balance) both reduce
to "how even is this vector" — quantified here with the standard measures.
"""

from __future__ import annotations

import math
from typing import Sequence


def max_mean_ratio(values: Sequence[float]) -> float:
    """max/mean — 1.0 is perfectly even; the paper's implicit metric."""
    if not values:
        raise ValueError("empty distribution")
    total = sum(values)
    if total == 0:
        return 1.0
    return max(values) / (total / len(values))


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 even, 1/n maximally concentrated."""
    if not values:
        raise ValueError("empty distribution")
    total = sum(values)
    squares = sum(value * value for value in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)


def coefficient_of_variation(values: Sequence[float]) -> float:
    """stddev/mean; 0.0 is perfectly even."""
    if not values:
        raise ValueError("empty distribution")
    count = len(values)
    average = sum(values) / count
    if average == 0:
        return 0.0
    variance = sum((value - average) ** 2 for value in values) / count
    return math.sqrt(variance) / average


def spread(values: Sequence[float]) -> float:
    """max − min, in the input's unit."""
    if not values:
        raise ValueError("empty distribution")
    return max(values) - min(values)
