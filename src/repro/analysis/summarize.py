"""Plain-text report formatting shared by benchmarks and examples.

Benchmarks print the paper's tables and figure series as aligned text so a
reader can diff them against the published numbers without a plotting
stack.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Fixed-width table with a header rule, ready to print."""
    materialised: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    rule = "  ".join("-" * width for width in widths)
    body = [line(headers), rule]
    body.extend(line(row) for row in materialised)
    return "\n".join(body)


def format_percent(value: float, digits: int = 2) -> str:
    """``0.7153`` → ``'71.53%'``."""
    return f"{value * 100:.{digits}f}%"


def format_series(
    label: str, values: Sequence[float], digits: int = 4
) -> str:
    """One labelled numeric series on a line (figure data dumps)."""
    rendered = " ".join(f"{value:.{digits}f}" for value in values)
    return f"{label}: {rendered}"
