"""Analytical models and reporting helpers."""

from repro.analysis.evenness import (
    coefficient_of_variation,
    jain_fairness,
    max_mean_ratio,
    spread,
)
from repro.analysis.fitting import cubic_fit, polyfit, polyval
from repro.analysis.speedup import (
    bound_satisfied,
    implied_utilisation,
    required_hit_rate,
    worst_case_speedup,
)
from repro.analysis.summarize import format_percent, format_series, format_table

__all__ = [
    "bound_satisfied",
    "coefficient_of_variation",
    "cubic_fit",
    "format_percent",
    "format_series",
    "format_table",
    "implied_utilisation",
    "jain_fairness",
    "max_mean_ratio",
    "polyfit",
    "polyval",
    "required_hit_rate",
    "spread",
    "worst_case_speedup",
]
