"""PersistenceManager — crash consistency for a live :class:`ClueSystem`.

The write path is classic redo logging: every control-plane operation is
appended to the :class:`~repro.persist.journal.Journal` *before* it runs
(`journal-before-apply`), and every ``checkpoint_every`` operations the
full state is serialized through :class:`~repro.persist.snapshot.SnapshotStore`.
Restore loads the newest valid snapshot, rebuilds the system
deterministically (:meth:`ClueSystem.from_state`), replays the journal
suffix with ``seq`` greater than the snapshot's, re-proves the control
plane's invariants, and reports a TTF-style *time to recovered*.

Replay is exact because every journaled operation is deterministic given
the state it runs against: ONRTC diffs are pure functions of the trie,
the scheduler's storm entry/exit depends only on queue occupancy, and
DRed invalidation depends only on the diff.  Internal storm-exit flushes
are *not* replayed from the journal (they recur on their own inside the
replayed ``pump``/``drain``); their journaled ``flush-auto`` markers are
instead used to verify the replay reproduced the exact same batching.

Operations must be routed through the manager (it wraps the system's
update entry points); anything applied behind its back is invisible to
the journal and unrecoverable — same contract as any WAL.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.persist import codec
from repro.persist.audit import AuditReport
from repro.persist.journal import Journal, JournalError
from repro.persist.snapshot import SnapshotError, SnapshotStore, load_snapshot

PathLike = Union[str, Path]

JOURNAL_DIR = "journal"
SNAPSHOT_DIR = "snapshots"

#: Journal record kinds the replay path executes.
_REPLAYED_KINDS = ("apply", "offer", "pump", "drain", "flush")
#: Kinds recorded for verification/bookkeeping only.
_MARKER_KINDS = ("flush-auto", "checkpoint")


@dataclass
class RecoveryReport:
    """What one :meth:`PersistenceManager.restore` did."""

    snapshot_path: str
    snapshot_seq: int
    #: Journal records replayed on top of the snapshot.
    replayed_records: int
    #: Snapshots that were skipped as corrupt/inconsistent (newest first).
    skipped_snapshots: List[str] = field(default_factory=list)
    #: Wall time from "restore requested" to "invariants re-proved".
    time_to_recovered_us: float = 0.0
    #: The post-restore invariant audit.
    audit: Optional[AuditReport] = None

    def summary(self) -> str:
        lines = [
            f"restored from {self.snapshot_path} (seq {self.snapshot_seq}), "
            f"{self.replayed_records} journal records replayed, "
            f"time to recovered {self.time_to_recovered_us:.0f} us"
        ]
        for skipped in self.skipped_snapshots:
            lines.append(f"  skipped snapshot: {skipped}")
        if self.audit is not None:
            lines.append(f"  invariants: {self.audit.summary()}")
        return "\n".join(lines)


@dataclass
class StorageAudit:
    """What :meth:`PersistenceManager.verify_storage` found on disk.

    The campaign runner's journal/snapshot oracle: after a cell drives a
    durable topology, the state directory itself must still be a valid
    recovery basis — every journal record readable with contiguous
    sequences, at least one snapshot loading with a verified digest, and
    the journal suffix actually covering the newest usable snapshot.
    """

    journal_records: int = 0
    journal_first_seq: int = 0
    journal_last_seq: int = 0
    valid_snapshots: int = 0
    #: ``path.name: reason`` for snapshots that failed digest/header checks.
    corrupt_snapshots: List[str] = field(default_factory=list)
    #: Human-readable violations; empty means the storage is sound.
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def summary(self) -> str:
        verdict = "ok" if self.ok else "FAILED"
        line = (
            f"storage {verdict}: {self.journal_records} journal records "
            f"(seq {self.journal_first_seq}..{self.journal_last_seq}), "
            f"{self.valid_snapshots} valid snapshots"
        )
        if self.corrupt_snapshots:
            line += f", {len(self.corrupt_snapshots)} corrupt"
        for problem in self.problems:
            line += f"\n  problem: {problem}"
        return line


class PersistenceManager:
    """Journal-before-apply wrapper plus checkpoint/restore for one system.

    ``checkpoint_every=N`` snapshots the state after every N journaled
    operations (0 disables automatic checkpoints).  A fresh manager takes
    an initial checkpoint immediately: the journal alone cannot bootstrap
    a system (the initial RIB is not an update), so restore always needs
    at least one snapshot beneath the log.
    """

    def __init__(
        self,
        system,
        directory: PathLike,
        sync_interval: int = 64,
        segment_records: int = 4096,
        checkpoint_every: int = 0,
        keep_snapshots: int = 2,
        initial_checkpoint: bool = True,
        _journal: Optional[Journal] = None,
        _snapshots: Optional[SnapshotStore] = None,
    ) -> None:
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        self.system = system
        self.directory = Path(directory)
        self.checkpoint_every = checkpoint_every
        resuming = _journal is not None
        if not resuming:
            self._guard_fresh_directory()
        self.journal = _journal or Journal(
            self.directory / JOURNAL_DIR,
            segment_records=segment_records,
            sync_interval=sync_interval,
        )
        self.snapshots = _snapshots or SnapshotStore(
            self.directory / SNAPSHOT_DIR, keep=keep_snapshots
        )
        self._ops_since_checkpoint = 0
        #: In-memory tail of appended records a replication shipper has
        #: not collected yet (None = shipping disabled).
        self._ship_log: Optional[List[Tuple[int, str, str]]] = None
        # Storm-exit (and any other non-empty) flushes are journaled as
        # verification markers the moment the scheduler reports them.
        self.system.scheduler.on_flush = self._record_flush
        if not resuming and initial_checkpoint:
            self.checkpoint()

    def _guard_fresh_directory(self) -> None:
        """Refuse to silently shadow existing state with a new journal."""
        for sub in (JOURNAL_DIR, SNAPSHOT_DIR):
            path = self.directory / sub
            if path.is_dir() and any(path.iterdir()):
                raise ValueError(
                    f"persistent state already exists under {path}; "
                    f"use PersistenceManager.restore() to resume it"
                )

    # -- journal-before-apply update path ------------------------------

    def _append(self, kind: str, payload: str = "") -> None:
        record = self.journal.append(kind, payload)
        if self._ship_log is not None:
            self._ship_log.append((record.seq, kind, payload))
        stats = self.system.recovery_stats
        stats.journal_records += 1
        stats.journal_syncs = self.journal.sync_count

    def _journal_op(self, kind: str, payload: str = "") -> None:
        self._append(kind, payload)
        self._ops_since_checkpoint += 1

    def _record_flush(self, count: int) -> None:
        self._append("flush-auto", str(count))

    def apply_update(self, message):
        """Journal, then run one update through the direct pipeline path."""
        self._journal_op("apply", codec.encode_message(message))
        sample = self.system.apply_update(message)
        self._maybe_checkpoint()
        return sample

    def offer_update(self, message) -> bool:
        """Journal, then admit one update through the bounded queue."""
        self._journal_op("offer", codec.encode_message(message))
        accepted = self.system.offer_update(message)
        self._maybe_checkpoint()
        return accepted

    def pump_updates(self, budget: int = 8) -> int:
        """Journal, then apply up to ``budget`` queued updates."""
        self._journal_op("pump", str(budget))
        applied = self.system.pump_updates(budget)
        self._maybe_checkpoint()
        return applied

    def drain_updates(self) -> int:
        """Journal, then empty the queue and flush deferred TCAM writes."""
        self._journal_op("drain")
        applied = self.system.drain_updates()
        self._maybe_checkpoint()
        return applied

    def flush_updates(self) -> int:
        """Journal an explicit flush boundary, then flush deferred diffs."""
        self._journal_op("flush")
        return self.system.scheduler.flush()

    def commit_batch(self, messages, budget: Optional[int] = None):
        """Group-commit one update batch; durable before the return.

        The serving plane's ack path: every message is journaled and
        offered through the bounded queue (shed messages still leave a
        journal record — replay re-sheds them identically), one ``pump``
        with a deterministic budget (the batch size unless overridden)
        advances the pipeline, and a single force-fsync makes the whole
        batch durable.  Exactly one fsync per batch is what keeps the
        durable-ack path fast under storms.

        Returns ``(accepted, shed, applied)``.
        """
        messages = list(messages)
        accepted = 0
        for message in messages:
            if self.offer_update(message):
                accepted += 1
        if budget is None:
            budget = max(1, len(messages))
        applied = self.pump_updates(budget)
        self.sync()
        return accepted, len(messages) - accepted, applied

    # -- journal shipping (replication export) --------------------------

    @property
    def last_seq(self) -> int:
        """Sequence of the newest journaled record."""
        return self.journal.last_seq

    def begin_shipping(self) -> int:
        """Start buffering appended records for a replication shipper.

        Returns the journal sequence a bootstrap snapshot taken *now*
        covers; every record appended after this call accumulates in an
        in-memory tail — shipping one batch then costs O(batch), not a
        re-read of every segment — until :meth:`collect_shipment` drains
        it.  The journal is synced first so the shipped stream never
        outruns primary durability.
        """
        self.journal.sync()
        self._ship_log = []
        return self.journal.last_seq

    def collect_shipment(self) -> List[Tuple[int, str, str]]:
        """Drain the buffered tail as ``[(seq, kind, payload), ...]``."""
        if self._ship_log is None:
            return []
        batch, self._ship_log = self._ship_log, []
        return batch

    def end_shipping(self) -> None:
        """Stop buffering (the shipper detached)."""
        self._ship_log = None

    def export_since(self, seq: int) -> List[Tuple[int, str, str]]:
        """Journal records with sequence > ``seq``, read from disk.

        The catch-up path: a shipper that lost its buffer (reconnect)
        re-reads the suffix the backup is missing.  Records truncated
        away by a checkpoint are gone — callers needing older history
        must re-bootstrap from a snapshot instead.
        """
        return [
            (record.seq, record.kind, record.payload)
            for record in self.journal.records(after_seq=seq)
        ]

    # -- checkpointing --------------------------------------------------

    def _maybe_checkpoint(self) -> None:
        if (
            self.checkpoint_every
            and self._ops_since_checkpoint >= self.checkpoint_every
        ):
            self.checkpoint()

    def checkpoint(self) -> Path:
        """Snapshot the state at the current journal position.

        The journal is synced first so the snapshot never claims a
        position the log cannot prove; afterwards, segments made wholly
        obsolete by the *oldest retained* snapshot are truncated away.
        """
        self.journal.sync()
        state = self.system.capture_state()
        seq = self.journal.last_seq
        path = self.snapshots.write(state, seq)
        self._append("checkpoint", str(seq))
        self.journal.sync()
        self.journal.truncate_through(self.snapshots.oldest_seq())
        self.system.recovery_stats.snapshots_written += 1
        self._ops_since_checkpoint = 0
        return path

    def sync(self) -> None:
        """Force-fsync the journal (everything so far is durable)."""
        self.journal.sync()
        self.system.recovery_stats.journal_syncs = self.journal.sync_count

    def close(self) -> None:
        """Durable shutdown (no checkpoint; the journal is enough)."""
        self.journal.close()

    # -- storage audit ---------------------------------------------------

    def verify_storage(self) -> StorageAudit:
        """Audit the on-disk journal + snapshots as a recovery basis.

        Read-only apart from an initial :meth:`sync` (the buffered tail
        must be on disk before it can be audited).  Walks every retained
        journal record — the iterator itself enforces checksums and
        sequence contiguity — and attempts to load every snapshot, then
        cross-checks that the newest usable snapshot sits inside the
        journal's retained window, i.e. that :meth:`restore` would
        succeed from what is on disk right now.
        """
        audit = StorageAudit()
        if self.journal._handle is not None:
            self.sync()
        first = last = 0
        try:
            for record in self.journal.records():
                if not first:
                    first = record.seq
                last = record.seq
                audit.journal_records += 1
        except JournalError as exc:
            audit.problems.append(f"journal unreadable: {exc}")
        audit.journal_first_seq = first
        audit.journal_last_seq = last
        newest_valid = -1
        for path in self.snapshots.paths():
            try:
                seq, _state = load_snapshot(path)
            except SnapshotError as exc:
                audit.corrupt_snapshots.append(f"{path.name}: {exc}")
                continue
            audit.valid_snapshots += 1
            newest_valid = max(newest_valid, seq)
        if newest_valid < 0:
            audit.problems.append("no usable snapshot on disk")
            return audit
        if last and newest_valid > last:
            audit.problems.append(
                f"newest snapshot seq {newest_valid} beyond the "
                f"journal's last record {last}"
            )
        if first and newest_valid + 1 < first:
            audit.problems.append(
                f"journal starts at seq {first}, leaving a replay gap "
                f"after the newest snapshot (seq {newest_valid})"
            )
        return audit

    def crash(self, power_loss: bool = False) -> None:
        """Die ungracefully, for crash drills.

        ``power_loss=True`` additionally destroys the unsynced journal
        tail — the strictest model restore must survive.
        """
        self.journal.crash(power_loss=power_loss)

    # -- restore --------------------------------------------------------

    @classmethod
    def restore(
        cls,
        directory: PathLike,
        config=None,
        sync_interval: int = 64,
        segment_records: int = 4096,
        checkpoint_every: int = 0,
        keep_snapshots: int = 2,
        audit_sample: int = 256,
        halt_on_violation: bool = False,
    ) -> Tuple["PersistenceManager", RecoveryReport]:
        """Rebuild the system from disk; returns ``(manager, report)``.

        Walks snapshots newest-first: a snapshot that fails its digest,
        or turns out internally inconsistent when rebuilt, is skipped and
        the predecessor is tried (the journal retains the longer suffix
        that predecessor needs).  Raises
        :class:`~repro.persist.snapshot.SnapshotError` when no snapshot
        is usable and :class:`~repro.persist.journal.JournalError` when
        the journal itself is damaged or replay diverges.
        """
        from repro.core.system import ClueSystem

        start = time.perf_counter()
        directory = Path(directory)
        snapshots = SnapshotStore(directory / SNAPSHOT_DIR, keep=keep_snapshots)
        # Opening the journal performs WAL recovery (torn-tail truncation).
        journal = Journal(
            directory / JOURNAL_DIR,
            segment_records=segment_records,
            sync_interval=sync_interval,
        )
        skipped: List[str] = []
        system = None
        used_seq = 0
        used_path: Optional[Path] = None
        replayed = 0
        for path in reversed(snapshots.paths()):
            try:
                seq, state = load_snapshot(path)
                candidate = ClueSystem.from_state(state, config)
            except ValueError as exc:
                # SnapshotError (bad digest/header) and from_state's
                # inconsistency errors both land here: fall back.
                skipped.append(f"{path.name}: {exc}")
                continue
            replayed = cls._replay(candidate, journal, after_seq=seq)
            system, used_seq, used_path = candidate, seq, path
            break
        if system is None:
            detail = "; ".join(skipped) if skipped else "none found"
            raise SnapshotError(
                f"no usable snapshot under {directory}: {detail}"
            )
        audit = system.audit_invariants(
            sample_size=audit_sample, halt=halt_on_violation
        )
        elapsed_us = (time.perf_counter() - start) * 1e6
        stats = system.recovery_stats
        stats.restores += 1
        stats.replayed_updates += replayed
        stats.time_to_recovered_us = elapsed_us
        manager = cls(
            system,
            directory,
            checkpoint_every=checkpoint_every,
            _journal=journal,
            _snapshots=snapshots,
        )
        manager._ops_since_checkpoint = replayed
        report = RecoveryReport(
            snapshot_path=str(used_path),
            snapshot_seq=used_seq,
            replayed_records=replayed,
            skipped_snapshots=skipped,
            time_to_recovered_us=elapsed_us,
            audit=audit,
        )
        return manager, report

    @staticmethod
    def _replay(system, journal: Journal, after_seq: int) -> int:
        """Re-execute the journal suffix; returns executed record count.

        ``flush-auto`` markers are skipped (the flushes they mark recur
        inside the replayed operations) but their counts verify that the
        replay reproduced the original TCAM flush batching exactly.
        """
        replayed = 0
        expected_flushed = system.scheduler.stats.flushed_diffs
        for record in journal.records(after_seq=after_seq):
            kind, payload = record.kind, record.payload
            if kind == "apply":
                system.apply_update(codec.decode_message(payload))
            elif kind == "offer":
                system.offer_update(codec.decode_message(payload))
            elif kind == "pump":
                system.pump_updates(int(payload))
            elif kind == "drain":
                system.drain_updates()
            elif kind == "flush":
                system.scheduler.flush()
            elif kind == "flush-auto":
                expected_flushed += int(payload)
                continue
            elif kind == "checkpoint":
                continue
            else:
                raise JournalError(
                    f"record {record.seq}: unknown kind {kind!r}"
                )
            replayed += 1
        actual_flushed = system.scheduler.stats.flushed_diffs
        if actual_flushed != expected_flushed:
            raise JournalError(
                f"replay diverged from the journal: {actual_flushed} "
                f"TCAM diffs flushed vs {expected_flushed} journaled"
            )
        return replayed
