"""Continuous invariant auditing for the integrated CLUE system.

The compressed table's pairwise disjointness is the contract everything
else rests on: priority-encoder-free lookup, O(1) TCAM update, and exact
even range partitioning.  After a restore — and incrementally while the
simulator runs — the auditor re-proves the contract:

* **disjoint** — no two compressed entries overlap;
* **equivalence** — the compressed table forwards sampled addresses
  exactly like the control-plane trie (``covered_only`` under don't-care
  compression, strict otherwise);
* **partition** — range boundaries are monotone from 0, every chip holds
  exactly the entries its ranges imply (drift detected via
  ``verify_chips(repair=False)``), and the per-chip spread stays within a
  tolerance;
* **dred-exclusion** — DRed *i* never caches a prefix chip *i* owns.

:meth:`InvariantAuditor.run` performs the full pass (the restore path);
:meth:`InvariantAuditor.step` spends a bounded budget on one check at a
time, round-robin, so a simulation can audit continuously the way
``ClueSystem.audit_step`` spreads the chip scan.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.compress.labels import CompressionMode
from repro.compress.verify import find_overlap
from repro.net.prefix import ADDRESS_SPACE
from repro.trie.trie import BinaryTrie

#: Check names in rotation order for the incremental form.
AUDIT_CHECKS = ("disjoint", "equivalence", "partition", "dred-exclusion")


@dataclass(frozen=True)
class InvariantViolation:
    """One broken invariant, with enough detail to debug it."""

    check: str
    detail: str


@dataclass
class AuditReport:
    """Outcome of one full or incremental audit pass."""

    checks_run: List[str] = field(default_factory=list)
    violations: List[InvariantViolation] = field(default_factory=list)
    addresses_sampled: int = 0
    entries_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def merge(self, other: "AuditReport") -> "AuditReport":
        self.checks_run.extend(other.checks_run)
        self.violations.extend(other.violations)
        self.addresses_sampled += other.addresses_sampled
        self.entries_checked += other.entries_checked
        return self

    def summary(self) -> str:
        if self.ok:
            return (
                f"ok ({', '.join(self.checks_run)}; "
                f"{self.addresses_sampled} addresses sampled)"
            )
        lines = [f"{len(self.violations)} violation(s):"]
        lines += [f"  [{v.check}] {v.detail}" for v in self.violations]
        return "\n".join(lines)


class InvariantViolationError(RuntimeError):
    """Raised when an audit is asked to halt on a broken invariant."""

    def __init__(self, report: AuditReport) -> None:
        super().__init__(f"control-plane invariant broken: {report.summary()}")
        self.report = report


class InvariantAuditor:
    """Audits one :class:`~repro.core.system.ClueSystem` instance."""

    def __init__(
        self,
        system,
        sample_size: int = 256,
        seed: int = 0,
        evenness_tolerance: float = 4.0,
    ) -> None:
        if sample_size < 1:
            raise ValueError("sample size must be positive")
        if evenness_tolerance < 1.0:
            raise ValueError("evenness tolerance is a max/mean ratio >= 1")
        self.system = system
        self.sample_size = sample_size
        self.evenness_tolerance = evenness_tolerance
        self._rng = random.Random(seed)
        self._check_cursor = 0
        self._chip_cursor = 0
        # The reference LPM view of the compressed table, cached until the
        # pipeline applies another update.
        self._candidate_trie: Optional[BinaryTrie] = None
        self._candidate_stamp = -1

    # -- full pass ---------------------------------------------------------

    def run(self, halt: bool = False) -> AuditReport:
        """Run every check; optionally raise on the first violation."""
        report = AuditReport()
        report.merge(self._check_disjoint())
        report.merge(self._check_equivalence(self.sample_size))
        report.merge(self._check_partition(chips=None))
        report.merge(self._check_dred_exclusion())
        if halt and not report.ok:
            raise InvariantViolationError(report)
        return report

    # -- incremental pass --------------------------------------------------

    def step(self, budget: int = 64, halt: bool = False) -> AuditReport:
        """Run the next check in rotation, bounded by ``budget``.

        ``budget`` caps the sampled addresses of the equivalence check;
        the partition check audits a single chip per step.  Four steps
        cover the whole rotation.
        """
        if budget < 1:
            raise ValueError("audit budget must be positive")
        check = AUDIT_CHECKS[self._check_cursor]
        self._check_cursor = (self._check_cursor + 1) % len(AUDIT_CHECKS)
        if check == "disjoint":
            report = self._check_disjoint()
        elif check == "equivalence":
            report = self._check_equivalence(min(budget, self.sample_size))
        elif check == "partition":
            chip = self._chip_cursor
            self._chip_cursor = (
                chip + 1
            ) % self.system.config.engine.chip_count
            report = self._check_partition(chips=[chip])
        else:
            report = self._check_dred_exclusion()
        if halt and not report.ok:
            raise InvariantViolationError(report)
        return report

    # -- individual checks -------------------------------------------------

    def _table(self):
        return self.system.pipeline.trie_stage.table

    def _check_disjoint(self) -> AuditReport:
        report = AuditReport(checks_run=["disjoint"])
        table = self._table().table
        report.entries_checked += len(table)
        overlap = find_overlap(table)
        if overlap is not None:
            report.violations.append(
                InvariantViolation(
                    "disjoint",
                    f"compressed entries {overlap[0]} and {overlap[1]} "
                    f"overlap",
                )
            )
        return report

    def _candidate(self) -> BinaryTrie:
        stamp = self.system.pipeline.totals.updates
        if self._candidate_trie is None or stamp != self._candidate_stamp:
            self._candidate_trie = BinaryTrie.from_routes(
                self._table().table.items()
            )
            self._candidate_stamp = stamp
        return self._candidate_trie

    def _sample_addresses(self, count: int) -> List[int]:
        """Half uniform, half pinned to entry boundaries (where LPM answers
        change, so where a broken table actually shows)."""
        addresses: List[int] = []
        prefixes = list(self._table().table)
        for _ in range(count - count // 2):
            addresses.append(self._rng.randrange(ADDRESS_SPACE))
        if prefixes:
            for _ in range(count // 2):
                prefix = prefixes[self._rng.randrange(len(prefixes))]
                addresses.append(
                    prefix.network
                    if self._rng.random() < 0.5
                    else prefix.broadcast
                )
        return addresses

    def _check_equivalence(self, count: int) -> AuditReport:
        report = AuditReport(checks_run=["equivalence"])
        table = self._table()
        covered_only = table.mode is CompressionMode.DONT_CARE
        candidate = self._candidate()
        source = table.source
        for address in self._sample_addresses(count):
            report.addresses_sampled += 1
            expected = source.lookup(address)
            if covered_only and expected is None:
                continue
            actual = candidate.lookup(address)
            if actual != expected:
                report.violations.append(
                    InvariantViolation(
                        "equivalence",
                        f"address {address:#010x}: trie says {expected}, "
                        f"compressed table says {actual}",
                    )
                )
                break
        return report

    def _check_partition(
        self, chips: Optional[Sequence[int]]
    ) -> AuditReport:
        report = AuditReport(checks_run=["partition"])
        boundaries = self.system.index.boundaries
        if boundaries[0] != 0 or boundaries != sorted(boundaries):
            report.violations.append(
                InvariantViolation(
                    "partition",
                    "range boundaries are not monotone from address 0",
                )
            )
        drift = self.system.verify_chips(chips=chips, repair=False)
        report.entries_checked += drift.entries_checked
        if not drift.clean:
            report.violations.append(
                InvariantViolation(
                    "partition",
                    f"chips {drift.chips_checked} drifted from the "
                    f"compressed table: {drift.hops_repaired} wrong hops, "
                    f"{drift.stray_removed} stray, "
                    f"{drift.missing_restored} missing",
                )
            )
        if chips is None:
            sizes = [
                len(chip.table)
                for chip in self.system.engine.chips
                if chip.alive
            ]
            if sizes and max(sizes) > 0:
                mean = sum(sizes) / len(sizes)
                if mean > 0 and max(sizes) / mean > self.evenness_tolerance:
                    report.violations.append(
                        InvariantViolation(
                            "partition",
                            f"per-chip spread {sizes} exceeds "
                            f"max/mean tolerance {self.evenness_tolerance}",
                        )
                    )
        return report

    def _check_dred_exclusion(self) -> AuditReport:
        report = AuditReport(checks_run=["dred-exclusion"])
        if not self.system.check_dred_exclusion():
            report.violations.append(
                InvariantViolation(
                    "dred-exclusion",
                    "a DRed bank caches a prefix its own chip serves",
                )
            )
        return report
