"""Text encodings shared by the journal and the snapshot format.

Everything the persistence layer stores is ASCII text inside a checksummed
frame: trivially inspectable, diffable, and byte-exact.  Timestamps use
``repr(float)`` (not the lossy ``%.6f`` of the human trace format) so a
message survives a journal round-trip bit-for-bit — replay equivalence is
checked with state fingerprints, which would notice any drift.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.compress.onrtc import TableDiff
from repro.net.prefix import Prefix
from repro.workload.updategen import UpdateKind, UpdateMessage

Route = Tuple[Prefix, int]


class CodecError(ValueError):
    """A persisted payload did not decode."""


# -- update messages ------------------------------------------------------


def encode_message(message: UpdateMessage) -> str:
    """One-line encoding: ``announce <prefix> <hop> <ts>`` / ``withdraw ...``."""
    if message.kind is UpdateKind.ANNOUNCE:
        return (
            f"announce {message.prefix} {message.next_hop} "
            f"{message.timestamp!r}"
        )
    return f"withdraw {message.prefix} {message.timestamp!r}"


def decode_message(text: str) -> UpdateMessage:
    """Inverse of :func:`encode_message`."""
    parts = text.split()
    try:
        if len(parts) == 4 and parts[0] == "announce":
            return UpdateMessage(
                UpdateKind.ANNOUNCE,
                Prefix.parse(parts[1]),
                int(parts[2]),
                float(parts[3]),
            )
        if len(parts) == 3 and parts[0] == "withdraw":
            return UpdateMessage(
                UpdateKind.WITHDRAW,
                Prefix.parse(parts[1]),
                None,
                float(parts[2]),
            )
    except ValueError as exc:
        raise CodecError(f"bad update payload {text!r}: {exc}") from exc
    raise CodecError(f"unrecognised update payload {text!r}")


# -- routes (snapshot JSON leaves) ----------------------------------------


def encode_routes(routes) -> List[List]:
    """Routes as JSON-ready ``[prefix, hop]`` pairs in address order."""
    return encode_route_list(
        sorted(routes, key=lambda route: route[0].sort_key())
    )


def encode_route_list(routes) -> List[List]:
    """Like :func:`encode_routes` but preserving the given order (diffs and
    LRU chains are order-sensitive)."""
    return [[str(prefix), hop] for prefix, hop in routes]


def decode_routes(pairs: List[List]) -> List[Route]:
    """Inverse of :func:`encode_routes`."""
    try:
        return [(Prefix.parse(text), int(hop)) for text, hop in pairs]
    except (ValueError, TypeError) as exc:
        raise CodecError(f"bad route list: {exc}") from exc


# -- table diffs (deferred TCAM writes in a snapshot) ---------------------


def encode_diff(diff: TableDiff) -> Dict:
    return {
        "adds": encode_route_list(diff.adds),
        "removes": encode_route_list(diff.removes),
        "relabelled": diff.relabelled,
    }


def decode_diff(data: Dict) -> TableDiff:
    try:
        return TableDiff(
            adds=decode_routes(data["adds"]),
            removes=decode_routes(data["removes"]),
            relabelled=int(data.get("relabelled", 0)),
        )
    except (KeyError, TypeError) as exc:
        raise CodecError(f"bad diff payload: {exc}") from exc
