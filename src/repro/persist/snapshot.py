"""Versioned, digest-protected snapshots of control-plane state.

A snapshot file is one ASCII header line followed by canonical JSON::

    clue-snapshot v1 seq=<journal-seq> sha256=<hex digest of the JSON>
    {"boundaries": [...], "chips": [...], ...}

The digest covers the whole payload, so any flipped byte is detected at
load time; the ``seq`` names the journal position the state corresponds
to, so :class:`~repro.persist.manager.PersistenceManager` knows exactly
which journal suffix to replay on top.  Files are written to a temp name
and atomically renamed — a crash mid-checkpoint leaves the previous
snapshot untouched, which is what the fallback path in
:meth:`SnapshotStore.valid_snapshots` relies on.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Iterator, List, Tuple, Union

SNAPSHOT_VERSION = 1

_MAGIC = "clue-snapshot"
_FILE_PREFIX = "snap-"
_FILE_SUFFIX = ".ckpt"

PathLike = Union[str, Path]


class SnapshotError(ValueError):
    """A snapshot file is missing, corrupt, or from an unknown version."""


def dumps_state(state: Dict) -> bytes:
    """Canonical JSON bytes (sorted keys, no whitespace jitter)."""
    return json.dumps(
        state, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")


def state_digest(state: Dict) -> str:
    """SHA-256 hex digest of the canonical encoding of ``state``."""
    return hashlib.sha256(dumps_state(state)).hexdigest()


def save_snapshot(path: PathLike, state: Dict, seq: int) -> None:
    """Write ``state`` at journal position ``seq``; atomic and fsynced."""
    path = Path(path)
    payload = dumps_state(state)
    digest = hashlib.sha256(payload).hexdigest()
    header = f"{_MAGIC} v{SNAPSHOT_VERSION} seq={seq} sha256={digest}\n"
    temp = path.with_suffix(path.suffix + ".tmp")
    with open(temp, "wb") as handle:
        handle.write(header.encode("ascii"))
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)


def load_snapshot(path: PathLike) -> Tuple[int, Dict]:
    """Read and verify one snapshot; returns ``(seq, state)``.

    Raises :class:`SnapshotError` on a missing file, malformed header,
    unknown version, or digest mismatch.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    newline = raw.find(b"\n")
    if newline < 0:
        raise SnapshotError(f"{path}: truncated snapshot (no header)")
    try:
        header = raw[:newline].decode("ascii")
    except UnicodeDecodeError as exc:
        raise SnapshotError(f"{path}: undecodable header") from exc
    parts = header.split()
    if (
        len(parts) != 4
        or parts[0] != _MAGIC
        or not parts[2].startswith("seq=")
        or not parts[3].startswith("sha256=")
    ):
        raise SnapshotError(f"{path}: malformed snapshot header")
    if parts[1] != f"v{SNAPSHOT_VERSION}":
        raise SnapshotError(
            f"{path}: unsupported snapshot version {parts[1]} "
            f"(this build reads v{SNAPSHOT_VERSION})"
        )
    try:
        seq = int(parts[2][len("seq=") :])
    except ValueError as exc:
        raise SnapshotError(f"{path}: bad sequence in header") from exc
    digest = parts[3][len("sha256=") :]
    payload = raw[newline + 1 :]
    if hashlib.sha256(payload).hexdigest() != digest:
        raise SnapshotError(f"{path}: digest mismatch (corrupt payload)")
    try:
        state = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"{path}: undecodable payload: {exc}") from exc
    return seq, state


class SnapshotStore:
    """A directory of numbered snapshots with retention and fallback.

    ``keep`` bounds how many snapshots are retained — more than one, so a
    snapshot that turns out corrupt at restore time still has a
    predecessor to fall back to (the journal retains the matching suffix,
    see :meth:`repro.persist.journal.Journal.truncate_through`).
    """

    def __init__(self, directory: PathLike, keep: int = 2) -> None:
        if keep < 1:
            raise ValueError("must retain at least one snapshot")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep

    def paths(self) -> List[Path]:
        """Snapshot files, oldest first."""
        return sorted(self.directory.glob(f"{_FILE_PREFIX}*{_FILE_SUFFIX}"))

    def write(self, state: Dict, seq: int) -> Path:
        """Persist one snapshot and prune beyond the retention bound."""
        path = self.directory / f"{_FILE_PREFIX}{seq:010d}{_FILE_SUFFIX}"
        save_snapshot(path, state, seq)
        for stale in self.paths()[: -self.keep]:
            stale.unlink()
        return path

    def oldest_seq(self) -> int:
        """Journal position of the oldest retained snapshot (0 when none).

        The journal must keep every record after this point — older ones
        can never be replayed and are safe to truncate.
        """
        paths = self.paths()
        if not paths:
            return 0
        name = paths[0].name
        try:
            return int(name[len(_FILE_PREFIX) : -len(_FILE_SUFFIX)])
        except ValueError:
            return 0

    def valid_snapshots(self) -> Iterator[Tuple[int, Dict, Path]]:
        """Yield loadable snapshots newest-first, skipping corrupt files."""
        for path in reversed(self.paths()):
            try:
                seq, state = load_snapshot(path)
            except SnapshotError:
                continue
            yield seq, state, path

    def load_latest(self) -> Tuple[int, Dict, Path]:
        """The newest valid snapshot.

        Raises :class:`SnapshotError` when the directory holds none (or
        only corrupt ones).
        """
        for seq, state, path in self.valid_snapshots():
            return seq, state, path
        raise SnapshotError(
            f"no valid snapshot in {self.directory} "
            f"({len(self.paths())} file(s) present)"
        )
