"""Write-ahead journal for control-plane update operations.

Every operation that mutates the control plane is appended here *before*
it is applied (redo logging).  The journal is a directory of rotating
segment files; each record is framed as

    +----------------+----------------+------------------------+
    | length (4B BE) | CRC32 (4B BE)  | payload (ASCII)        |
    +----------------+----------------+------------------------+

where the payload is ``"<seq> <kind> <rest>"`` with a monotonically
increasing sequence number.  Durability discipline:

* the Python buffer is flushed on every append, so an in-process crash
  (``kill -9`` semantics) loses nothing;
* ``fsync`` runs every ``sync_interval`` records (batching amortises the
  syscall over bursts) — a *power loss* can lose at most the tail since
  the last sync, which :meth:`Journal.crash` can simulate;
* on open, a torn tail (half-written frame, CRC mismatch) is truncated
  away, exactly like a database WAL recovery.

Segments rotate every ``segment_records`` appends; :meth:`truncate_through`
deletes segments made obsolete by a checkpoint.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

_FRAME = struct.Struct(">II")
#: Upper bound on one payload; anything larger is corruption, not data.
_MAX_PAYLOAD = 1 << 20

SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".log"

PathLike = Union[str, Path]


class JournalError(ValueError):
    """The journal is structurally damaged beyond tail truncation."""


@dataclass(frozen=True)
class JournalRecord:
    """One journaled operation."""

    seq: int
    kind: str
    payload: str = ""

    def encode(self) -> bytes:
        body = f"{self.seq} {self.kind}"
        if self.payload:
            body += f" {self.payload}"
        return body.encode("ascii")

    @classmethod
    def decode(cls, data: bytes) -> "JournalRecord":
        try:
            text = data.decode("ascii")
            seq_text, _, rest = text.partition(" ")
            kind, _, payload = rest.partition(" ")
            seq = int(seq_text)
        except (UnicodeDecodeError, ValueError) as exc:
            raise JournalError(f"undecodable journal record: {exc}") from exc
        if not kind:
            raise JournalError(f"journal record {seq} has no kind")
        return cls(seq=seq, kind=kind, payload=payload)


def _frame(payload: bytes) -> bytes:
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def _scan_segment(data: bytes) -> Tuple[List[JournalRecord], int]:
    """Decode frames from ``data``; returns records + valid byte length.

    Scanning stops at the first frame that is incomplete or fails its CRC
    — everything before that point is good, everything after is a torn
    tail (or trailing corruption, indistinguishable from one).
    """
    records: List[JournalRecord] = []
    offset = 0
    size = len(data)
    while offset + _FRAME.size <= size:
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        end = start + length
        if length > _MAX_PAYLOAD or end > size:
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break
        records.append(JournalRecord.decode(payload))
        offset = end
    return records, offset


def _segment_name(index: int) -> str:
    return f"{SEGMENT_PREFIX}{index:08d}{SEGMENT_SUFFIX}"


class Journal:
    """Append-only WAL over a directory of rotating segments.

    >>> import tempfile
    >>> with tempfile.TemporaryDirectory() as tmp:
    ...     journal = Journal(tmp)
    ...     journal.append("apply", "announce 10.0.0.0/8 3 0.5").seq
    ...     journal.close()
    ...     [r.kind for r in Journal(tmp).records()]
    1
    ['apply']
    """

    def __init__(
        self,
        directory: PathLike,
        segment_records: int = 4096,
        sync_interval: int = 64,
    ) -> None:
        if segment_records < 1:
            raise ValueError("segments must hold at least one record")
        if sync_interval < 1:
            raise ValueError("sync interval must be at least one record")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_records = segment_records
        self.sync_interval = sync_interval
        #: Records fsynced to disk (survive power loss).
        self.durable_seq = 0
        #: fsync calls issued (the batching the benchmark measures).
        self.sync_count = 0
        self._handle = None
        self._segment_index = 0
        self._segment_count = 0  # records in the open segment
        self._unsynced = 0
        self.last_seq = 0
        self._recover()

    # -- recovery ----------------------------------------------------------

    def segment_paths(self) -> List[Path]:
        """Existing segment files in rotation order."""
        return sorted(self.directory.glob(f"{SEGMENT_PREFIX}*{SEGMENT_SUFFIX}"))

    def _recover(self) -> None:
        """Open for append: truncate any torn tail, resume the sequence."""
        segments = self.segment_paths()
        last_seq = 0
        for position, path in enumerate(segments):
            data = path.read_bytes()
            records, valid = _scan_segment(data)
            if valid < len(data):
                if position != len(segments) - 1:
                    raise JournalError(
                        f"{path.name}: corrupt frame in a non-final segment"
                    )
                with open(path, "r+b") as handle:
                    handle.truncate(valid)
            for record in records:
                if last_seq and record.seq != last_seq + 1:
                    raise JournalError(
                        f"{path.name}: sequence gap "
                        f"({last_seq} -> {record.seq})"
                    )
                last_seq = record.seq
            if position == len(segments) - 1:
                self._segment_index = int(
                    path.name[len(SEGMENT_PREFIX) : -len(SEGMENT_SUFFIX)]
                )
                self._segment_count = len(records)
        self.last_seq = last_seq
        self.durable_seq = last_seq
        if not segments:
            self._segment_index = 1
        self._open_segment()

    def _open_segment(self) -> None:
        path = self.directory / _segment_name(self._segment_index)
        self._handle = open(path, "ab")

    # -- append path -------------------------------------------------------

    def append(self, kind: str, payload: str = "") -> JournalRecord:
        """Frame and write one record; returns it (with its sequence)."""
        if self._handle is None:
            raise JournalError("journal is closed")
        if self._segment_count >= self.segment_records:
            self._rotate()
        record = JournalRecord(self.last_seq + 1, kind, payload)
        self._handle.write(_frame(record.encode()))
        # Flush the Python buffer so a process kill loses nothing; only a
        # power loss can eat records, bounded by the fsync batch below.
        self._handle.flush()
        self.last_seq = record.seq
        self._segment_count += 1
        self._unsynced += 1
        if self._unsynced >= self.sync_interval:
            self.sync()
        return record

    def sync(self) -> None:
        """fsync the open segment; everything appended so far is durable."""
        if self._handle is None or self._unsynced == 0:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.durable_seq = self.last_seq
        self.sync_count += 1
        self._unsynced = 0

    def _rotate(self) -> None:
        self.sync()
        self._handle.close()
        self._segment_index += 1
        self._segment_count = 0
        self._open_segment()

    def close(self) -> None:
        """Durable close (syncs first)."""
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None

    def crash(self, power_loss: bool = False) -> None:
        """Abandon the journal the way a dying process would.

        With ``power_loss`` the tail written since the last fsync is
        destroyed too (the page cache never reached the platter) — the
        strictest failure model the recovery path must survive.
        """
        if self._handle is None:
            return
        if power_loss:
            path = self.directory / _segment_name(self._segment_index)
            synced_records = self._segment_count - self._unsynced
            data = path.read_bytes()
            offset = 0
            for _ in range(synced_records):
                length, _crc = _FRAME.unpack_from(data, offset)
                offset += _FRAME.size + length
            with open(path, "r+b") as handle:
                handle.truncate(offset)
            self.last_seq = self.durable_seq
        self._handle.close()
        self._handle = None

    # -- read path ---------------------------------------------------------

    def records(self, after_seq: int = 0) -> Iterator[JournalRecord]:
        """Yield records with ``seq > after_seq`` across all segments."""
        previous: Optional[int] = None
        for path in self.segment_paths():
            data = path.read_bytes()
            segment_records, _valid = _scan_segment(data)
            for record in segment_records:
                if previous is not None and record.seq != previous + 1:
                    raise JournalError(
                        f"{path.name}: sequence gap "
                        f"({previous} -> {record.seq})"
                    )
                previous = record.seq
                if record.seq > after_seq:
                    yield record

    def first_seq(self) -> int:
        """Sequence of the oldest retained record (0 when empty)."""
        for record in self.records():
            return record.seq
        return 0

    # -- maintenance -------------------------------------------------------

    def truncate_through(self, seq: int) -> int:
        """Delete whole segments whose records are all ``<= seq``.

        Called after a checkpoint: records at or before the snapshot's
        sequence can never be replayed again.  The open segment is never
        deleted.  Returns the number of segments removed.
        """
        removed = 0
        current = self.directory / _segment_name(self._segment_index)
        for path in self.segment_paths():
            if path == current:
                break
            data = path.read_bytes()
            segment_records, _valid = _scan_segment(data)
            if segment_records and segment_records[-1].seq <= seq:
                path.unlink()
                removed += 1
            else:
                break
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.records())
