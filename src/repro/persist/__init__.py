"""Crash consistency for the CLUE control plane.

The paper's O(1) TCAM update only holds while the compressed table stays
pairwise disjoint; a control-plane process that dies mid-update would
silently break that invariant and, with it, priority-encoder-free lookup.
This package makes the control plane killable at any point:

* :mod:`repro.persist.journal` — a checksummed, length-prefixed
  write-ahead journal of every update operation, with fsync batching,
  segment rotation and torn-tail truncation;
* :mod:`repro.persist.snapshot` — versioned, digest-protected snapshots
  of the full control-plane state;
* :mod:`repro.persist.audit` — the invariant auditor that re-proves
  disjointness, forwarding equivalence, partition coverage and DRed
  exclusion after every restore (and incrementally during simulation);
* :mod:`repro.persist.manager` — :class:`PersistenceManager`, which ties
  journal + snapshots to a live :class:`~repro.core.system.ClueSystem`
  (journal-before-apply, checkpoint-every-N) and rebuilds a byte-identical
  system from disk via :meth:`PersistenceManager.restore`.
"""

from repro.persist.audit import (
    AuditReport,
    InvariantAuditor,
    InvariantViolation,
    InvariantViolationError,
)
from repro.persist.journal import Journal, JournalError, JournalRecord
from repro.persist.manager import (
    PersistenceManager,
    RecoveryReport,
    StorageAudit,
)
from repro.persist.snapshot import (
    SnapshotError,
    SnapshotStore,
    load_snapshot,
    save_snapshot,
)

__all__ = [
    "AuditReport",
    "InvariantAuditor",
    "InvariantViolation",
    "InvariantViolationError",
    "Journal",
    "JournalError",
    "JournalRecord",
    "PersistenceManager",
    "RecoveryReport",
    "StorageAudit",
    "SnapshotError",
    "SnapshotStore",
    "load_snapshot",
    "save_snapshot",
]
