"""Named fault profiles — the fault axis of a campaign spec.

A :class:`FaultProfile` names one reproducible :class:`FaultSchedule`
shape so a campaign cell can say ``fault = "chip-flap"`` instead of
hand-building event lists.  Engine-level events are pinned to small
absolute cycles (every profile fires within the first few hundred
engine cycles, so even a 1k-packet smoke cell exercises it); the
process-level ``kill-primary`` profile pins its kill to the middle of
the *driving horizon* — the HA runner interprets that cycle as an
update-batch index, exactly like the chaos scenarios.

Profile flags tell the campaign expansion what a combination can
legally promise:

* ``journal_safe=False`` (storms) — the events push updates into the
  scheduler behind any write-ahead journal, so durable topologies must
  exclude the cell (the same rule ``serve --journal --faults`` enforces);
* ``external_updates=True`` — the profile mutates the table outside the
  driver's acked stream, so differential oracles that mirror acked
  updates onto a reference trie are inapplicable and auto-skip;
* ``self_heal=True`` — the runner schedules a ``verify_chips`` repair
  pass (the PR 1 self-healing audit) before the oracles run, modelling
  a production box whose background audit is on;
* ``process_level=True`` — only the chaos/HA runner may execute it
  (the in-engine injector refuses process kills).

``corrupt-silent`` is the deliberately-broken seed the acceptance
criteria demand: same corruption as ``corrupt`` but with the healing
audit off, so the ``chip-audit`` oracle must fail and name it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.faults.schedule import FaultSchedule


@dataclass(frozen=True)
class FaultProfile:
    """One named, reproducible fault-schedule shape."""

    name: str
    description: str
    _build: Callable[[int, int, int], FaultSchedule]
    #: False: events bypass a write-ahead journal (update storms) — the
    #: profile is incompatible with durable topologies.
    journal_safe: bool = True
    #: True: the profile injects updates outside the driver's acked
    #: stream, so mirror-based differential oracles must skip.
    external_updates: bool = False
    #: True: the runner repairs chips (verify_chips) before oracles.
    self_heal: bool = False
    #: True: contains process kills — only the HA/chaos runner applies.
    process_level: bool = False

    def build(self, seed: int, chip_count: int, horizon: int) -> FaultSchedule:
        """The concrete schedule for one cell.

        ``horizon`` is the driving horizon: update batches for process
        kills, ignored by the fixed-cycle engine events.
        """
        if chip_count < 1:
            raise ValueError("need at least one chip")
        return self._build(seed, chip_count, horizon)


def _none(seed: int, chips: int, horizon: int) -> FaultSchedule:
    return FaultSchedule(seed=seed)


def _chip_flap(seed: int, chips: int, horizon: int) -> FaultSchedule:
    return FaultSchedule(seed=seed).chip_down(40, 0).chip_up(400, 0)


def _corrupt(seed: int, chips: int, horizon: int) -> FaultSchedule:
    return FaultSchedule(seed=seed).corrupt(60, chips - 1)


def _stall(seed: int, chips: int, horizon: int) -> FaultSchedule:
    return (
        FaultSchedule(seed=seed)
        .stall(80, 0, 24)
        .stall(160, chips - 1, 48)
    )


def _storm(seed: int, chips: int, horizon: int) -> FaultSchedule:
    return FaultSchedule(seed=seed).storm(100, 200).storm(320, 120)


def _kill_primary(seed: int, chips: int, horizon: int) -> FaultSchedule:
    # Engine faults ride along (the chaos mid-storm composition); the
    # kill lands mid-horizon, while updates are still in flight.
    return (
        FaultSchedule(seed=seed)
        .chip_down(40, 0)
        .chip_up(300, 0)
        .stall(200, chips - 1, 16)
        .kill_primary(max(2, horizon // 2))
    )


FAULT_PROFILES: Dict[str, FaultProfile] = {
    profile.name: profile
    for profile in (
        FaultProfile(
            name="none",
            description="no faults: the calibration baseline",
            _build=_none,
        ),
        FaultProfile(
            name="chip-flap",
            description="chip 0 dies at cycle 40, recovers at 400",
            _build=_chip_flap,
        ),
        FaultProfile(
            name="corrupt",
            description="one silent slot corruption, healing audit on",
            _build=_corrupt,
            self_heal=True,
        ),
        FaultProfile(
            name="corrupt-silent",
            description="slot corruption with the healing audit OFF "
            "(a deliberately broken seed: chip-audit must fail)",
            _build=_corrupt,
        ),
        FaultProfile(
            name="stall",
            description="two access-port stall windows",
            _build=_stall,
        ),
        FaultProfile(
            name="storm",
            description="two injected BGP update bursts (bypass journal)",
            _build=_storm,
            journal_safe=False,
            external_updates=True,
        ),
        FaultProfile(
            name="kill-primary",
            description="SIGKILL the primary mid-drive, chip faults armed",
            _build=_kill_primary,
            process_level=True,
        ),
    )
}


def fault_profile(name: str) -> FaultProfile:
    """Look up a profile by name; unknown names list the registry."""
    try:
        return FAULT_PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown fault profile {name!r}; "
            f"known: {', '.join(sorted(FAULT_PROFILES))}"
        ) from None
