"""Deterministic fault schedules for the forwarding plane.

A :class:`FaultSchedule` is an ordered list of :class:`FaultEvent` records,
each pinned to a simulator cycle.  The taxonomy covers the failure modes a
deployed line card actually sees:

* **chip death / recovery** — a whole TCAM chip stops answering (power,
  seating, thermal shutdown) and possibly comes back;
* **transient slot corruption** — a single stored entry silently flips
  (SEU/bit rot); the chip keeps answering, *wrongly*, until an audit
  repairs it;
* **queue-stall windows** — the chip's access port is occupied for a
  window of cycles (e.g. a firmware housekeeping burst);
* **BGP update storms** — a burst of routing updates arrives at once and
  must be absorbed without stalling lookups.

Schedules are plain data: build them programmatically, generate them with
:meth:`FaultSchedule.random` (seedable, reproducible), or read/write the
text format via :func:`repro.workload.traces.load_faults` /
:func:`~repro.workload.traces.save_faults`.  The ``seed`` carried by the
schedule also drives every random choice the injector makes while applying
it (e.g. which slot a corruption hits), so a (schedule, engine) pair always
replays identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, List, Optional


class FaultKind(Enum):
    """What kind of fault an event injects."""

    CHIP_DOWN = "chip-down"
    CHIP_UP = "chip-up"
    CORRUPT = "corrupt"
    STALL = "stall"
    STORM = "storm"
    #: Process-level kills (SIGKILL a whole replica).  These are *cluster*
    #: faults: the chaos runner interprets them against live server
    #: processes; the in-engine injector refuses them, and
    #: :meth:`FaultSchedule.engine_only` strips them before a schedule is
    #: handed to ``--faults``.
    KILL_PRIMARY = "kill-primary"
    KILL_BACKUP = "kill-backup"


#: Kinds the chaos runner executes against processes, not the engine.
PROCESS_KINDS = frozenset({FaultKind.KILL_PRIMARY, FaultKind.KILL_BACKUP})


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``chip`` names the target chip for chip/slot events (``None`` for
    storms, which hit the control plane); ``duration`` is the stall window
    in cycles; ``count`` the number of updates in a storm burst.
    """

    cycle: int
    kind: FaultKind
    chip: Optional[int] = None
    duration: int = 0
    count: int = 0

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ValueError("fault cycle must be non-negative")
        needs_chip = self.kind in (
            FaultKind.CHIP_DOWN,
            FaultKind.CHIP_UP,
            FaultKind.CORRUPT,
            FaultKind.STALL,
        )
        if needs_chip and (self.chip is None or self.chip < 0):
            raise ValueError(f"{self.kind.value} event needs a chip index")
        if self.kind is FaultKind.STALL and self.duration < 1:
            raise ValueError("stall window must be at least one cycle")
        if self.kind is FaultKind.STORM and self.count < 1:
            raise ValueError("storm burst must carry at least one update")


@dataclass
class FaultSchedule:
    """An ordered, seedable collection of fault events.

    >>> schedule = FaultSchedule(seed=7)
    >>> schedule.chip_down(100, chip=2).chip_up(600, chip=2)  # doctest: +ELLIPSIS
    FaultSchedule(...)
    >>> [event.kind.value for event in schedule.events]
    ['chip-down', 'chip-up']
    """

    events: List[FaultEvent] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=lambda event: event.cycle)

    # -- builders (fluent, for tests and programmatic schedules) ---------

    def add(self, event: FaultEvent) -> "FaultSchedule":
        """Insert one event, keeping cycle order (stable for ties)."""
        position = len(self.events)
        while position and self.events[position - 1].cycle > event.cycle:
            position -= 1
        self.events.insert(position, event)
        return self

    def chip_down(self, cycle: int, chip: int) -> "FaultSchedule":
        return self.add(FaultEvent(cycle, FaultKind.CHIP_DOWN, chip=chip))

    def chip_up(self, cycle: int, chip: int) -> "FaultSchedule":
        return self.add(FaultEvent(cycle, FaultKind.CHIP_UP, chip=chip))

    def corrupt(self, cycle: int, chip: int) -> "FaultSchedule":
        return self.add(FaultEvent(cycle, FaultKind.CORRUPT, chip=chip))

    def stall(self, cycle: int, chip: int, cycles: int) -> "FaultSchedule":
        return self.add(
            FaultEvent(cycle, FaultKind.STALL, chip=chip, duration=cycles)
        )

    def storm(self, cycle: int, count: int) -> "FaultSchedule":
        return self.add(FaultEvent(cycle, FaultKind.STORM, count=count))

    def kill_primary(self, cycle: int) -> "FaultSchedule":
        return self.add(FaultEvent(cycle, FaultKind.KILL_PRIMARY))

    def kill_backup(self, cycle: int) -> "FaultSchedule":
        return self.add(FaultEvent(cycle, FaultKind.KILL_BACKUP))

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def has_storms(self) -> bool:
        """True when any event injects a BGP update storm.

        Storm events push synthesized updates straight into the
        scheduler, *behind* any write-ahead journal wrapping the system —
        so a durable serving plane must refuse schedules with storms
        (chip deaths, corruption and stalls never touch the journal and
        stay allowed).
        """
        return any(
            event.kind is FaultKind.STORM for event in self.events
        )

    @property
    def has_process_kills(self) -> bool:
        """True when any event kills a whole replica process."""
        return any(event.kind in PROCESS_KINDS for event in self.events)

    def process_kills(self) -> List[FaultEvent]:
        """The process-level events, in cycle order (chaos runner input)."""
        return [e for e in self.events if e.kind in PROCESS_KINDS]

    def engine_only(self) -> "FaultSchedule":
        """A copy without process-level events, safe for ``--faults``."""
        return FaultSchedule(
            events=[e for e in self.events if e.kind not in PROCESS_KINDS],
            seed=self.seed,
        )

    def chips_touched(self) -> List[int]:
        """Distinct chip indices named by any event, sorted."""
        return sorted(
            {event.chip for event in self.events if event.chip is not None}
        )

    def last_cycle(self) -> int:
        """Cycle of the latest event (0 for an empty schedule)."""
        return self.events[-1].cycle if self.events else 0

    def validate(self, chip_count: int) -> "FaultSchedule":
        """Check every chip index fits a ``chip_count``-chip engine.

        A schedule written for a bigger box would otherwise surface as an
        ``IndexError`` deep inside the injector mid-run; the CLI calls
        this up front so the mismatch reports as a one-line operational
        error instead.  Returns ``self`` for chaining.
        """
        if chip_count < 1:
            raise ValueError("need at least one chip")
        for event in self.events:
            if event.chip is not None and event.chip >= chip_count:
                raise ValueError(
                    f"fault event at cycle {event.cycle} targets chip "
                    f"{event.chip}, but the engine only has "
                    f"{chip_count} chip(s)"
                )
        return self

    # -- generation --------------------------------------------------------

    @classmethod
    def random(
        cls,
        seed: int,
        horizon: int,
        chip_count: int,
        chip_failures: int = 1,
        corruptions: int = 2,
        stalls: int = 2,
        storms: int = 1,
        recovery_cycles: Optional[int] = None,
        storm_size: int = 256,
    ) -> "FaultSchedule":
        """A reproducible random schedule over ``horizon`` cycles.

        Each chip failure is paired with a recovery ``recovery_cycles``
        later (default: a quarter of the horizon) when it fits before the
        horizon.  The same ``seed`` always yields the same schedule.
        """
        if horizon < 1:
            raise ValueError("horizon must be at least one cycle")
        if chip_count < 1:
            raise ValueError("need at least one chip")
        rng = random.Random(seed)
        outage = recovery_cycles or max(1, horizon // 4)
        schedule = cls(seed=seed)
        for _ in range(chip_failures):
            chip = rng.randrange(chip_count)
            down_at = rng.randrange(horizon)
            schedule.chip_down(down_at, chip)
            if down_at + outage < horizon:
                schedule.chip_up(down_at + outage, chip)
        for _ in range(corruptions):
            schedule.corrupt(rng.randrange(horizon), rng.randrange(chip_count))
        for _ in range(stalls):
            schedule.stall(
                rng.randrange(horizon),
                rng.randrange(chip_count),
                rng.randrange(4, 64),
            )
        for _ in range(storms):
            schedule.storm(
                rng.randrange(horizon), max(1, rng.randrange(storm_size) + 1)
            )
        return schedule


def merge_schedules(schedules: Iterable[FaultSchedule]) -> FaultSchedule:
    """Combine several schedules into one, keeping cycle order.

    The merged schedule inherits the first schedule's seed.
    """
    schedules = list(schedules)
    seed = schedules[0].seed if schedules else 0
    events: List[FaultEvent] = []
    for schedule in schedules:
        events.extend(schedule.events)
    return FaultSchedule(events=events, seed=seed)
