"""Fault injection and graceful degradation for the forwarding plane."""

from repro.faults.injector import STORM_STALL_CYCLES, FaultInjector
from repro.faults.schedule import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    merge_schedules,
)

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultSchedule",
    "STORM_STALL_CYCLES",
    "merge_schedules",
]
