"""Fault injection and graceful degradation for the forwarding plane."""

from repro.faults.injector import STORM_STALL_CYCLES, FaultInjector
from repro.faults.profiles import (
    FAULT_PROFILES,
    FaultProfile,
    fault_profile,
)
from repro.faults.schedule import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    merge_schedules,
)

__all__ = [
    "FAULT_PROFILES",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultProfile",
    "FaultSchedule",
    "STORM_STALL_CYCLES",
    "fault_profile",
    "merge_schedules",
]
