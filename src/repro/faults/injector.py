"""FaultInjector — replays a :class:`~repro.faults.schedule.FaultSchedule`
into a live :class:`~repro.engine.simulator.LookupEngine`.

The engine consults :meth:`FaultInjector.tick` once per simulated cycle
(attach via ``engine.fault_injector = injector``); every event whose cycle
has come due is applied, in order:

* ``chip-down`` / ``chip-up`` → :meth:`LookupEngine.kill_chip` /
  :meth:`~LookupEngine.revive_chip`; the engine's dispatch then fails the
  dead chip's traffic over to survivors' DReds;
* ``corrupt`` → one deterministic (seeded) entry of the chip's table gets
  its next hop flipped — the silent-wrong-answer fault an audit such as
  :meth:`repro.core.system.ClueSystem.verify_chips` must catch;
* ``stall`` → :meth:`LookupEngine.inject_stall` (the chip's access port is
  busy for the window);
* ``storm`` → handed to ``storm_sink(cycle, count)`` when the caller wired
  one (the integrated system turns it into a burst of BGP updates through
  the backpressured scheduler); without a sink the storm degrades to
  update-write stalls spread round-robin over the surviving chips, which
  is what an unprotected line card would experience.

All randomness is drawn from ``random.Random(schedule.seed)``, so a given
(schedule, engine) pair replays identically run after run.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.faults.schedule import FaultEvent, FaultKind, FaultSchedule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.simulator import LookupEngine

#: Cycles one deferred storm update occupies a chip's access port when no
#: storm sink absorbs the burst (one TCAM write per update, CLUE's O(1)).
STORM_STALL_CYCLES = 1


class FaultInjector:
    """Applies scheduled faults to an engine as its clock advances."""

    def __init__(
        self,
        engine: "LookupEngine",
        schedule: FaultSchedule,
        storm_sink: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        self.engine = engine
        self.schedule = schedule
        self.storm_sink = storm_sink
        self._events = list(schedule.events)
        self._position = 0
        self._rng = random.Random(schedule.seed)
        #: Events applied so far, in application order (for reports/tests).
        self.applied: List[FaultEvent] = []

    # ------------------------------------------------------------------

    @property
    def exhausted(self) -> bool:
        """True once every scheduled event has been applied."""
        return self._position >= len(self._events)

    @property
    def next_cycle(self) -> Optional[int]:
        """Cycle of the next unapplied event, or None when exhausted.

        The engine's event-driven run loop uses this to skip idle cycles
        without skipping *over* a scheduled fault; a fault source that
        cannot promise its next firing cycle must simply not define the
        attribute, which disables skipping entirely.
        """
        if self._position >= len(self._events):
            return None
        return self._events[self._position].cycle

    def tick(self, cycle: int) -> int:
        """Apply every event due at or before ``cycle``; returns how many."""
        fired = 0
        while (
            self._position < len(self._events)
            and self._events[self._position].cycle <= cycle
        ):
            event = self._events[self._position]
            self._position += 1
            self._apply(event)
            self.applied.append(event)
            fired += 1
        return fired

    # ------------------------------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        if event.kind is FaultKind.CHIP_DOWN:
            self.engine.kill_chip(event.chip)
        elif event.kind is FaultKind.CHIP_UP:
            self.engine.revive_chip(event.chip)
        elif event.kind is FaultKind.CORRUPT:
            self._corrupt(event.chip)
        elif event.kind is FaultKind.STALL:
            self.engine.inject_stall(event.chip, event.duration)
        elif event.kind is FaultKind.STORM:
            self._storm(event)
        elif event.kind in (FaultKind.KILL_PRIMARY, FaultKind.KILL_BACKUP):
            raise ValueError(
                f"{event.kind.value} is a process-level fault; strip it "
                f"with FaultSchedule.engine_only() — only the chaos "
                f"runner may execute it"
            )
        else:  # pragma: no cover - exhaustive over FaultKind
            raise ValueError(f"unknown fault kind {event.kind!r}")

    def _corrupt(self, chip_index: int) -> None:
        """Flip one stored next hop — a single-event upset in the chip."""
        chip = self.engine.chips[chip_index]
        routes = sorted(
            chip.table.routes(), key=lambda route: route[0].sort_key()
        )
        if not routes:
            return
        prefix, hop = routes[self._rng.randrange(len(routes))]
        chip.table.insert(prefix, hop + 1 + self._rng.randrange(7))
        self.engine.stats.corrupted_entries += 1

    def _storm(self, event: FaultEvent) -> None:
        if self.storm_sink is not None:
            self.storm_sink(event.cycle, event.count)
            return
        # No control-plane sink: the burst hits the chips directly as
        # one TCAM write per update, round-robin over surviving chips.
        alive = [chip.index for chip in self.engine.chips if chip.alive]
        if not alive:
            return
        per_chip = [0] * len(alive)
        for position in range(event.count):
            per_chip[position % len(alive)] += STORM_STALL_CYCLES
        for slot, chip_index in enumerate(alive):
            if per_chip[slot]:
                self.engine.inject_stall(chip_index, per_chip[slot])
