"""Command-line interface: drive the CLUE system on plain-text traces.

Installed as ``repro-clue``; every subcommand reads/writes the trace
formats of :mod:`repro.workload.traces`, so complete experiments can be
scripted without writing Python:

.. code-block:: bash

    repro-clue gen-rib --size 8000 --seed 1 -o table.txt
    repro-clue compress --table table.txt --verify
    repro-clue gen-traffic --table table.txt --count 30000 -o packets.txt
    repro-clue simulate --table table.txt --packets packets.txt --scheme clue
    repro-clue gen-updates --table table.txt --count 2000 -o updates.txt
    repro-clue replay-updates --table table.txt --updates updates.txt
    repro-clue gen-faults --chips 4 --horizon 20000 -o faults.txt
    repro-clue simulate --table table.txt --faults faults.txt
    repro-clue inject-faults --table table.txt --faults faults.txt
    repro-clue simulate --table table.txt --journal state/ \\
        --checkpoint-every 100 --crash-at 350
    repro-clue verify-snapshot --dir state/
    repro-clue restore --dir state/
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.summarize import format_percent, format_table
from repro.compress.labels import CompressionMode
from repro.compress.onrtc import compress
from repro.compress.verify import find_mismatch, is_disjoint_table
from repro.engine.builders import (
    build_clpl_engine,
    build_clue_engine,
    build_round_robin_engine,
    build_slpl_engine,
)
from repro.core import ClueSystem, SystemConfig
from repro.engine.fastlpm import LOOKUP_BACKENDS
from repro.engine.simulator import EngineConfig
from repro.faults import FaultInjector, FaultSchedule
from repro.partition.even import even_partition
from repro.persist import PersistenceManager, load_snapshot
from repro.persist.snapshot import SnapshotStore
from repro.partition.idbit import idbit_partition
from repro.partition.subtree import subtree_partition
from repro.trie.trie import BinaryTrie
from repro.update.pipeline import (
    ClplUpdatePipeline,
    ClueUpdatePipeline,
    default_dred_banks,
)
from repro.workload.ribgen import RibParameters, generate_rib
from repro.workload.traces import (
    TraceFormatError,
    load_faults,
    load_packets,
    load_table,
    load_updates,
    save_faults,
    save_packets,
    save_table,
    save_updates,
)
from repro.workload.trafficgen import TrafficGenerator, TrafficParameters
from repro.workload.updategen import UpdateGenerator, UpdateParameters

_MODES = {
    "strict": CompressionMode.STRICT,
    "dontcare": CompressionMode.DONT_CARE,
}


def _package_version() -> str:
    """Installed distribution version; source-tree fallback for dev runs."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        import repro

        return repro.__version__


def _cmd_gen_rib(args: argparse.Namespace) -> int:
    routes = generate_rib(args.seed, RibParameters(size=args.size))
    save_table(routes, args.output)
    print(f"wrote {len(routes)} routes to {args.output}")
    return 0


def _cmd_gen_traffic(args: argparse.Namespace) -> int:
    routes = load_table(args.table)
    generator = TrafficGenerator(
        routes,
        seed=args.seed,
        parameters=TrafficParameters(zipf_exponent=args.zipf),
    )
    save_packets(generator.take(args.count), args.output)
    print(f"wrote {args.count} packets to {args.output}")
    return 0


def _cmd_gen_updates(args: argparse.Namespace) -> int:
    routes = load_table(args.table)
    if args.structural:
        parameters = UpdateParameters(
            modify_fraction=0.0,
            new_prefix_fraction=0.5,
            withdraw_fraction=0.5,
        )
    else:
        parameters = UpdateParameters()
    generator = UpdateGenerator(routes, seed=args.seed, parameters=parameters)
    save_updates(generator.take(args.count), args.output)
    print(f"wrote {args.count} updates to {args.output}")
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    routes = load_table(args.table)
    trie = BinaryTrie.from_routes(routes)
    mode = _MODES[args.mode]
    table = compress(trie, mode)
    print(
        f"{len(routes)} -> {len(table)} entries "
        f"({format_percent(len(table) / max(1, len(routes)))})"
    )
    if args.verify:
        assert is_disjoint_table(table)
        mismatch = find_mismatch(
            trie, table, covered_only=(mode is CompressionMode.DONT_CARE)
        )
        if mismatch is not None:
            print(f"VERIFICATION FAILED at {mismatch}")
            return 1
        print("verified: disjoint and forwarding-equivalent")
    if args.output:
        save_table(
            sorted(table.items(), key=lambda r: r[0].sort_key()), args.output
        )
        print(f"wrote compressed table to {args.output}")
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    routes = load_table(args.table)
    if args.algorithm == "even":
        trie = BinaryTrie.from_routes(routes)
        compressed = sorted(
            compress(trie, CompressionMode.DONT_CARE).items(),
            key=lambda route: route[0].sort_key(),
        )
        result = even_partition(compressed, args.count)
    elif args.algorithm == "subtree":
        result = subtree_partition(BinaryTrie.from_routes(routes), args.count)
    else:
        result = idbit_partition(routes, args.count)
    print(
        format_table(
            ["metric", "value"],
            [
                ("algorithm", result.algorithm),
                ("partitions", result.count),
                ("max size", result.max_size),
                ("min size", result.min_size),
                ("max/mean", f"{result.imbalance:.3f}"),
                ("redundant entries", result.redundancy),
            ],
        )
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    if not args.profile:
        return _run_simulate(args)
    # Perf work starts from data: wrap the identical run in cProfile and
    # leave both a machine-readable .pstats file and a human top-20 behind.
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        status = _run_simulate(args)
    finally:
        profiler.disable()
        profiler.dump_stats(args.profile)
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)
        print(f"profile written to {args.profile}")
    return status


def _run_simulate(args: argparse.Namespace) -> int:
    if args.journal:
        return _run_durable_simulation(args)
    if args.crash_at is not None or args.checkpoint_every:
        raise ValueError(
            "--crash-at/--checkpoint-every need --journal (the crash "
            "drill journals state so a later restore can recover it)"
        )
    routes = load_table(args.table)
    config = EngineConfig(
        chip_count=args.chips,
        dred_capacity=args.dred,
        queue_capacity=args.queue,
        lookup_backend=args.backend,
    )
    if args.packets:
        addresses: List[int] = load_packets(args.packets)
        count = len(addresses)
        source = iter(addresses)
    else:
        count = args.count
        source = TrafficGenerator(routes, seed=args.seed)
    if args.scheme == "clue":
        built = build_clue_engine(routes, config)
    elif args.scheme == "clpl":
        built = build_clpl_engine(routes, config)
    elif args.scheme == "slpl":
        training = TrafficGenerator(routes, seed=args.seed + 1).take(
            max(1_000, count // 2)
        )
        built = build_slpl_engine(routes, training, config)
    else:
        built = build_round_robin_engine(routes, config)
    if args.faults:
        schedule = load_faults(args.faults).validate(args.chips)
        built.engine.fault_injector = FaultInjector(built.engine, schedule)
    stats = built.engine.run(source, count)
    rows = [
        ("scheme", args.scheme),
        ("packets", stats.completions),
        ("cycles", stats.cycles),
        ("speedup", f"{stats.speedup(config.lookup_cycles):.3f}"),
        (
            "DRed hit rate",
            f"{stats.dred_hit_rate:.3f}" if stats.dred_lookups else "n/a",
        ),
        ("diverted", stats.diverted),
        ("control-plane msgs", stats.control_plane_interactions),
        ("TCAM entries", built.total_tcam_entries),
        (
            "per-chip load",
            " ".join(f"{share:.1%}" for share in stats.chip_load_shares()),
        ),
    ]
    if args.faults:
        rows.extend(
            [
                ("chip failures", stats.chip_failures),
                ("downtime chip-cycles", stats.chip_downtime_cycles),
                ("availability", f"{stats.availability():.3%}"),
                ("failed-over packets", stats.failed_over_packets),
                ("control-path resolutions", stats.control_path_resolutions),
                ("corrupted entries", stats.corrupted_entries),
            ]
        )
    print(format_table(["metric", "value"], rows))
    return 0


def _run_durable_simulation(args: argparse.Namespace) -> int:
    """``simulate --journal``: drive the update path with crash consistency.

    Every update is journaled before it touches the pipeline; state is
    checkpointed every ``--checkpoint-every`` operations.  ``--crash-at K``
    kills the control plane (ungracefully, like SIGKILL) after K updates —
    the state directory is then exactly what ``restore`` must recover from.
    """
    if args.scheme != "clue":
        raise ValueError(
            "--journal requires --scheme clue (only the integrated CLUE "
            "system has a crash-consistent control plane)"
        )
    routes = load_table(args.table)
    if args.updates:
        messages = load_updates(args.updates)
    else:
        messages = UpdateGenerator(routes, seed=args.seed).take(
            args.update_count
        )
    system = ClueSystem(
        routes,
        SystemConfig(
            engine=EngineConfig(
                chip_count=args.chips,
                dred_capacity=args.dred,
                queue_capacity=args.queue,
                lookup_backend=args.backend,
            )
        ),
    )
    manager = PersistenceManager(
        system,
        args.journal,
        checkpoint_every=args.checkpoint_every,
        sync_interval=args.sync_every,
    )
    for index, message in enumerate(messages):
        if args.crash_at is not None and index == args.crash_at:
            manager.crash(power_loss=args.power_loss)
            print(
                f"crashed after {index} of {len(messages)} updates "
                f"(journal seq {system.recovery_stats.journal_records}); "
                f"recover with: repro-clue restore --dir {args.journal}"
            )
            return 0
        manager.offer_update(message)
        if index % 4 == 0:
            manager.pump_updates(budget=4)
    manager.drain_updates()
    manager.checkpoint()
    manager.close()
    for line in system.report().summary_lines(
        lookup_cycles=system.config.engine.lookup_cycles
    ):
        print(line)
    return 0


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    """Recover a state directory and write a fresh checkpoint."""
    manager, report = PersistenceManager.restore(args.dir)
    path = manager.checkpoint()
    manager.close()
    print(report.summary())
    print(f"checkpointed to {path}")
    return 0


def _cmd_restore(args: argparse.Namespace) -> int:
    """Rebuild the system from a state directory and prove it healthy."""
    manager, report = PersistenceManager.restore(
        args.dir, audit_sample=args.audit_sample
    )
    print(report.summary())
    if args.fingerprint:
        print(f"fingerprint: {manager.system.state_fingerprint()}")
    for line in manager.system.report().summary_lines():
        print(line)
    manager.close()
    return 0 if report.audit is None or report.audit.ok else 1


def _cmd_verify_snapshot(args: argparse.Namespace) -> int:
    """Check snapshot integrity without touching the journal.

    Verifies the digest, rebuilds the system from the snapshot alone and
    runs the full invariant audit on the result.
    """
    if args.snapshot:
        paths = [args.snapshot]
    else:
        paths = SnapshotStore(f"{args.dir}/snapshots").paths()
        if not paths:
            raise ValueError(f"no snapshots under {args.dir}")
    failures = 0
    for path in paths:
        seq, state = load_snapshot(path)
        system = ClueSystem.from_state(state)
        audit = system.audit_invariants(sample_size=args.audit_sample)
        status = "ok" if audit.ok else f"INVARIANTS BROKEN: {audit.summary()}"
        print(f"{path}: seq {seq}, digest ok, invariants {status}")
        failures += 0 if audit.ok else 1
    return 1 if failures else 0


def _cmd_gen_faults(args: argparse.Namespace) -> int:
    schedule = FaultSchedule.random(
        seed=args.seed,
        horizon=args.horizon,
        chip_count=args.chips,
        chip_failures=args.chip_failures,
        corruptions=args.corruptions,
        stalls=args.stalls,
        storms=args.storms,
    )
    save_faults(schedule, args.output)
    print(f"wrote {len(schedule)} fault events to {args.output}")
    return 0


def _cmd_inject_faults(args: argparse.Namespace) -> int:
    """Drive the integrated system through a fault schedule and report."""
    routes = load_table(args.table)
    schedule = load_faults(args.faults).validate(args.chips)
    system = ClueSystem(
        routes,
        SystemConfig(
            engine=EngineConfig(
                chip_count=args.chips,
                dred_capacity=args.dred,
                queue_capacity=args.queue,
            ),
            update_queue_capacity=args.update_queue,
        ),
    )
    system.attach_faults(schedule)
    if args.packets:
        addresses: List[int] = load_packets(args.packets)
        count = len(addresses)
        source = iter(addresses)
    else:
        count = args.count
        source = TrafficGenerator(routes, seed=args.seed)
    stats = system.process_traffic(source, count)
    system.drain_updates()
    audit = system.verify_chips()
    rebalanced = None
    if args.rebalance:
        rebalanced = system.rebalance()
    rows = [
        ("packets", stats.completions),
        ("cycles", stats.cycles),
        ("speedup", f"{stats.speedup(system.config.engine.lookup_cycles):.3f}"),
        ("chip failures", stats.chip_failures),
        ("chip recoveries", stats.chip_recoveries),
        ("downtime chip-cycles", stats.chip_downtime_cycles),
        ("availability", f"{stats.availability():.3%}"),
        ("failed-over packets", stats.failed_over_packets),
        ("control-path resolutions", stats.control_path_resolutions),
        ("updates shed", stats.shed_updates),
        ("TCAM writes deferred", stats.deferred_updates),
        ("corrupted entries", stats.corrupted_entries),
        ("audit repairs", audit.repairs),
    ]
    if rebalanced is not None:
        rows.append(
            (
                "rebalanced over",
                f"chips {rebalanced.survivor_chips} "
                f"(even={rebalanced.is_even})",
            )
        )
    print(format_table(["metric", "value"], rows))
    return 0


def _cmd_replay_updates(args: argparse.Namespace) -> int:
    routes = load_table(args.table)
    messages = load_updates(args.updates)
    if args.pipeline == "clue":
        pipeline = ClueUpdatePipeline(
            routes,
            dred_banks=default_dred_banks(args.chips, args.dred, True),
            lazy=args.lazy,
        )
    else:
        pipeline = ClplUpdatePipeline(
            routes,
            dred_banks=default_dred_banks(args.chips, args.dred, False),
        )
    report = pipeline.run(messages)
    rows = [
        ("updates", len(report)),
        ("TTF1 mean (us)", f"{report.ttf1().mean_us:.4f}"),
        ("TTF2 mean (us)", f"{report.ttf2().mean_us:.4f}"),
        ("TTF3 mean (us)", f"{report.ttf3().mean_us:.4f}"),
        ("TTF2+3 mean (us)", f"{report.ttf23().mean_us:.4f}"),
        ("TTF total mean (us)", f"{report.total().mean_us:.4f}"),
        ("TCAM moves", pipeline.totals.tcam_moves),
        ("SRAM accesses", pipeline.totals.sram_accesses),
    ]
    print(format_table(["metric", "value"], rows))
    return 0


def _build_shard_set(args: argparse.Namespace):
    """Build or restore the :class:`ShardSet` a serve command targets."""
    from repro.serve import ShardSet

    config = SystemConfig(
        engine=EngineConfig(
            chip_count=args.chips,
            dred_capacity=args.dred,
            queue_capacity=args.queue,
            lookup_backend=args.backend,
        ),
        update_queue_capacity=args.update_queue,
    )
    shard_index = getattr(args, "shard_index", None)
    if getattr(args, "restore", False):
        if not args.journal:
            raise ValueError("--restore needs --journal DIR to recover from")
        if shard_index is not None:
            shards, reports = ShardSet.restore_worker(
                args.journal,
                shard_index,
                config=config,
                checkpoint_every=args.checkpoint_every,
                sync_interval=args.sync_every,
            )
        else:
            shards, reports = ShardSet.restore(
                args.journal,
                config=config,
                checkpoint_every=args.checkpoint_every,
                sync_interval=args.sync_every,
            )
        for report in reports:
            print(report.summary())
        return shards
    if not args.table:
        raise ValueError("serve needs --table (or --journal with --restore)")
    routes = load_table(args.table)
    if shard_index is not None:
        return ShardSet.build_worker(
            routes,
            args.shards,
            shard_index,
            config=config,
            journal_dir=args.journal,
            checkpoint_every=args.checkpoint_every,
            sync_interval=args.sync_every,
        )
    return ShardSet.build(
        routes,
        shard_count=args.shards,
        config=config,
        journal_dir=args.journal,
        checkpoint_every=args.checkpoint_every,
        sync_interval=args.sync_every,
    )


def _cmd_serve_processes(args: argparse.Namespace) -> int:
    """Parent front: one worker process per shard behind one port.

    The parent re-derives the shard boundaries (or reads them back from
    ``serve.json`` under ``--restore``), spawns ``repro serve
    --shard-index i`` workers on ephemeral loopback ports, and serves
    the unchanged client protocol by fanning requests out over the
    worker control channels.  SIGTERM fans the drain out: every worker
    flushes, writes its final checkpoint and exits before the parent
    does.
    """
    from repro.serve import ServeConfig, ShardSet
    from repro.serve.procs import ProcessFront, ProcessSupervisor, WorkerSpec
    from repro.serve.router import plan_shards

    if args.backup or args.replicate_to:
        raise ValueError(
            "--workers processes does not support replication yet; "
            "run --workers threads for --backup/--replicate-to"
        )
    if args.faults:
        # Fail fast in the parent; each worker re-validates on spawn.
        schedule = load_faults(args.faults).validate(args.chips)
        if schedule.has_process_kills:
            raise ValueError(
                "--faults schedules with kill-primary/kill-backup events "
                "belong to 'repro-clue chaos'"
            )
        if args.journal and schedule.has_storms:
            raise ValueError(
                "--faults schedules with update storms bypass the "
                "journal; drop --journal or remove the storm events"
            )
    journal = args.journal
    if args.restore:
        if not journal:
            raise ValueError("--restore needs --journal DIR to recover from")
        from repro.serve.reshard import resolve_reshard

        # Resolve any pending reshard once, up front: workers racing the
        # rollback concurrently would corrupt the shared directory.
        directory = resolve_reshard(Path(journal))
        meta = ShardSet.read_meta(directory)
        journal = str(directory)
        shard_count = int(meta["shards"])
        boundaries = list(meta["boundaries"])
        epoch = int(meta["epoch"])
    else:
        if not args.table:
            raise ValueError(
                "serve needs --table (or --journal with --restore)"
            )
        shard_count = args.shards
        plan = plan_shards(
            load_table(args.table),
            shard_count,
            mode=SystemConfig().compression_mode,
        )
        boundaries = plan.router.boundaries
        epoch = plan.router.epoch
    spec = WorkerSpec(
        shard_count=shard_count,
        table=args.table,
        journal=journal,
        restore=args.restore,
        chips=args.chips,
        dred=args.dred,
        queue=args.queue,
        update_queue=args.update_queue,
        backend=args.backend,
        window=max(64, args.window),
        pump_budget=args.pump_budget,
        checkpoint_every=args.checkpoint_every,
        sync_every=args.sync_every,
        drain_grace=args.drain_grace,
        faults=args.faults,
    )
    supervisor = ProcessSupervisor(
        spec, boundaries, epoch=epoch, restart_limit=args.worker_restarts
    )
    server = ProcessFront(
        supervisor,
        ServeConfig(
            host=args.host,
            port=args.port,
            inflight_window=args.window,
            drain_grace=args.drain_grace,
            port_file=args.port_file,
        ),
    )

    async def _run() -> int:
        await server.start()
        detail = (
            f"{shard_count} worker process(es), "
            f"{'durable' if spec.durable else 'in-memory'}"
        )
        print(
            f"serving on {args.host}:{server.port} ({detail}); "
            f"SIGTERM drains",
            flush=True,
        )
        await server.wait_stopped()
        return 0

    return asyncio.run(_run())


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the network serving plane until SIGTERM drains it."""
    from repro.serve import ClueServer, ServeConfig

    if args.workers == "processes" and args.shard_index is None:
        return _cmd_serve_processes(args)

    ship_fingerprints = not args.no_ship_fingerprints
    if args.backup:
        if args.table or args.restore or args.faults or args.replicate_to:
            raise ValueError(
                "--backup runs a pure replica: it takes no --table, "
                "--restore, --faults or --replicate-to"
            )
        shards = None
    else:
        schedule = None
        if args.faults:
            schedule = load_faults(args.faults).validate(args.chips)
            if schedule.has_process_kills:
                raise ValueError(
                    "--faults schedules with kill-primary/kill-backup "
                    "events belong to 'repro-clue chaos'; strip them with "
                    "FaultSchedule.engine_only() first"
                )
            if args.journal and schedule.has_storms:
                raise ValueError(
                    "--faults schedules with update storms bypass the "
                    "journal; drop --journal or remove the storm events"
                )
            if args.replicate_to and ship_fingerprints:
                # Chip faults mutate state outside the journal, so the
                # replicas legitimately diverge; keep replicating, stop
                # comparing fingerprints in-protocol.
                ship_fingerprints = False
        if args.replicate_to and not args.journal:
            raise ValueError(
                "--replicate-to ships the journal, so it needs --journal"
            )
        shards = _build_shard_set(args)
        if schedule is not None:
            for worker in shards.workers:
                worker.system.attach_faults(schedule)
    server = ClueServer(
        shards,
        ServeConfig(
            host=args.host,
            port=args.port,
            inflight_window=args.window,
            drain_grace=args.drain_grace,
            pump_budget=args.pump_budget,
            port_file=args.port_file,
            replicate_to=args.replicate_to,
            ack_mode=args.ack_mode,
            ship_fingerprints=ship_fingerprints,
            backup_dir=args.backup,
            auto_promote=not args.no_auto_promote,
            heartbeat_interval=args.heartbeat_interval,
            heartbeat_timeout=args.heartbeat_timeout,
            backup_checkpoint_every=args.checkpoint_every,
            backup_sync_interval=args.sync_every,
        ),
    )

    async def _run() -> int:
        await server.start()
        if shards is None:
            detail = f"backup replica under {args.backup}"
        elif args.shard_index is not None:
            detail = (
                f"worker shard {args.shard_index}/{args.shards}, "
                f"{'durable' if shards.durable else 'in-memory'}"
            )
        else:
            detail = (
                f"{len(shards.workers)} shard(s), "
                f"{'durable' if shards.durable else 'in-memory'}"
            )
            if args.replicate_to:
                detail += f", replicating to {args.replicate_to}"
        print(
            f"serving on {args.host}:{server.port} ({detail}); "
            f"SIGTERM drains",
            flush=True,
        )
        await server.wait_stopped()
        return 0

    return asyncio.run(_run())


def _cmd_failover(args: argparse.Namespace) -> int:
    """Tell a backup replica to promote itself right now."""
    from repro.serve import ServeClient

    with ServeClient(
        args.host,
        args.port,
        timeout=args.timeout,
        connect_attempts=args.connect_attempts,
    ) as client:
        result = client.failover()
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0 if result.get("promoted") or result.get("role") == "primary" else 1


def _cmd_reshard(args: argparse.Namespace) -> int:
    """Start, watch, or inspect a live shard split/merge."""
    import time as _time

    from repro.serve import ServeClient

    request: dict
    if args.status:
        request = {"action": "status"}
    elif args.auto:
        request = {"action": "auto"}
    elif args.split is not None:
        request = {"action": "split", "shard": args.split}
        if args.at is not None:
            request["at"] = args.at
    elif args.merge is not None:
        request = {"action": "merge", "shard": args.merge}
    else:
        raise ValueError(
            "pick one of --split N, --merge N, --auto or --status"
        )
    if not args.status:
        request["stage_delay"] = args.stage_delay
        request["cutover_pause"] = args.cutover_pause
    with ServeClient(
        args.host,
        args.port,
        timeout=args.timeout,
        connect_attempts=args.connect_attempts,
    ) as client:
        result = client.reshard(request)
        if args.status or not result.get("started"):
            print(json.dumps(result, indent=2, sort_keys=True))
            return 0
        if not args.wait:
            print(json.dumps(result, indent=2, sort_keys=True))
            return 0
        deadline = _time.monotonic() + args.wait_timeout
        status = client.reshard({"action": "status"})
        while status.get("in_progress") and _time.monotonic() < deadline:
            _time.sleep(0.1)
            status = client.reshard({"action": "status"})
    print(json.dumps(status, indent=2, sort_keys=True))
    stage = (status.get("reshard") or {}).get("stage")
    if status.get("in_progress"):
        print("error: reshard still running at --wait-timeout",
              file=sys.stderr)
        return 1
    return 0 if stage == "done" else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run the cluster chaos campaign against real server processes."""
    from repro.serve.chaos import ChaosConfig, run_campaign

    config = ChaosConfig(
        quick=args.quick,
        seed=args.seed,
        workdir=args.workdir,
    )
    results = run_campaign(config, scenarios=args.scenario or None)
    if args.output:
        with open(args.output, "w", encoding="ascii") as handle:
            json.dump(
                [result.as_dict() for result in results],
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        print(f"wrote {args.output}")
    failed = [result for result in results if not result.ok]
    print(
        f"chaos: {len(results) - len(failed)}/{len(results)} scenarios ok"
    )
    return 1 if failed else 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    """Expand a declarative campaign spec and judge every cell."""
    from pathlib import Path

    from repro.campaign import (
        load_spec,
        render_markdown,
        run_campaign,
        write_json,
        write_markdown,
    )

    spec = load_spec(args.spec)
    if args.list:
        cells, excluded = spec.expand(
            subset=args.subset, cells=args.cells or None,
            max_cells=args.max_cells,
        )
        for cell in cells:
            print(cell.id)
        for cell_id, reason in excluded:
            print(f"# excluded {cell_id}: {reason}")
        print(f"# {len(cells)} cells, {len(excluded)} excluded")
        return 0
    result = run_campaign(
        spec,
        spec_path=args.spec,
        subset=args.subset,
        cells=args.cells or None,
        max_cells=args.max_cells,
        workdir=Path(args.workdir) if args.workdir else None,
    )
    if args.output:
        write_json(result, Path(args.output))
        print(f"wrote {args.output}")
    if args.markdown:
        write_markdown(result, Path(args.markdown))
        print(f"wrote {args.markdown}")
    else:
        print(render_markdown(result))
    failed = result.failed
    print(
        f"campaign {result.name}: {len(result.results) - len(failed)}/"
        f"{len(result.results)} cells ok, {len(result.excluded)} excluded"
    )
    return 1 if failed else 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    """Loopback throughput/latency of the serving plane (BENCH_serve)."""
    import contextlib
    import tempfile

    from repro.serve import (
        ServeConfig,
        ServerThread,
        ShardSet,
        generate_batches,
        run_load,
    )
    from repro.serve.loadgen import batches_from_packets

    routes = load_table(args.table)
    config = SystemConfig(
        engine=EngineConfig(
            chip_count=args.chips,
            dred_capacity=args.dred,
            queue_capacity=args.queue,
            lookup_backend=args.backend,
        ),
        update_queue_capacity=args.update_queue,
    )
    if args.packets:
        batches = batches_from_packets(
            load_packets(args.packets), args.batches, args.batch_size
        )
    else:
        batches = generate_batches(
            routes, args.batches, args.batch_size, seed=args.seed
        )
    with contextlib.ExitStack() as stack:
        backup_port = None
        if args.replicate:
            # A replicated bench measures the whole HA write path: a
            # durable primary journaling to disk and shipping to a live
            # backup replica, acking per --ack-mode.
            workdir = Path(
                stack.enter_context(
                    tempfile.TemporaryDirectory(prefix="bench-serve-")
                )
            )
            backup = stack.enter_context(
                ServerThread(
                    None,
                    ServeConfig(
                        backup_dir=str(workdir / "backup"),
                        auto_promote=False,
                    ),
                )
            )
            backup_port = backup.server.port
            shards = ShardSet.build(
                routes,
                shard_count=args.shards,
                config=config,
                journal_dir=workdir / "journal",
            )
            serve_config = ServeConfig(
                inflight_window=max(args.window, 1),
                replicate_to=f"127.0.0.1:{backup_port}",
                ack_mode=args.ack_mode,
            )
        else:
            shards = ShardSet.build(
                routes, shard_count=args.shards, config=config
            )
            serve_config = ServeConfig(inflight_window=max(args.window, 1))
        thread = stack.enter_context(ServerThread(shards, serve_config))
        report = run_load(
            "127.0.0.1",
            thread.server.port,
            batches,
            window=args.window,
            timeout=args.timeout,
            connect_attempts=args.connect_attempts,
        )
        from repro.serve import ServeClient

        with ServeClient(
            "127.0.0.1",
            thread.server.port,
            timeout=args.timeout,
            connect_attempts=args.connect_attempts,
        ) as admin:
            shard_rows = admin.stats().get("shards", [])
        thread.stop()
    mode = (
        f"replicated ({args.ack_mode})" if args.replicate else "standalone"
    )
    print(
        format_table(
            ["metric", "value"],
            [
                ("mode", mode),
                ("requests", report.requests),
                ("lookups", report.lookups),
                ("busy", report.busy),
                ("duration (s)", f"{report.duration_s:.3f}"),
                ("lookups/sec", f"{report.lookups_per_sec:,.0f}"),
                ("p50 latency (us)", f"{report.p50_us:.0f}"),
                ("p99 latency (us)", f"{report.p99_us:.0f}"),
            ],
        )
    )
    if shard_rows:
        # Per-range load accounting: the signal 'repro-clue reshard
        # --auto' splits and merges on.
        print(
            format_table(
                ["shard", "range", "lookup hits", "update hits"],
                [
                    (
                        row.get("shard", i),
                        "[{:#010x}, {:#010x})".format(*row["range"])
                        if row.get("range") else "-",
                        row.get("lookup_hits", 0),
                        row.get("update_hits", 0),
                    )
                    for i, row in enumerate(shard_rows)
                ],
            )
        )
    if args.output:
        with open(args.output, "w", encoding="ascii") as handle:
            json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    if args.floor and report.lookups_per_sec < args.floor:
        print(
            f"FAIL: {report.lookups_per_sec:,.0f} lookups/sec below the "
            f"{args.floor:,.0f} floor",
            file=sys.stderr,
        )
        return 1
    return 0


def _ingest_policy(args: argparse.Namespace) -> "NormalizePolicy":
    from repro.ingest import NormalizePolicy

    return NormalizePolicy(
        port_count=getattr(args, "ports", 24),
        drop_martians=not args.keep_martians,
        keep_default_route=not args.drop_default,
        time_scale=getattr(args, "time_scale", 1.0),
    )


def _print_lines(lines: Sequence[str]) -> None:
    for line in lines:
        print(line)


def _ensure_parent(path: str) -> None:
    Path(path).parent.mkdir(parents=True, exist_ok=True)


def _cmd_ingest_rib(args: argparse.Namespace) -> int:
    from repro.ingest import load_rib, rib_to_table
    from repro.workload.ribgen import length_histogram

    dump = load_rib(args.input)
    dump.counters.verify(dump.records)
    _print_lines(dump.counters.summary_lines())
    peer = None if args.peer == "auto" else int(args.peer)
    routes, report = rib_to_table(dump, _ingest_policy(args), peer_index=peer)
    _print_lines(report.summary_lines())
    _ensure_parent(args.output)
    save_table(routes, args.output)
    print(f"wrote {len(routes)} routes to {args.output}")
    if args.stats:
        histogram = length_histogram(routes)
        print(
            format_table(
                ["prefix length", "routes"],
                [(f"/{length}", count) for length, count in histogram.items()],
            )
        )
    return 0


def _cmd_ingest_updates(args: argparse.Namespace) -> int:
    from repro.ingest import load_updates as load_mrt_updates
    from repro.ingest import update_rates, updates_to_trace
    from repro.net.prefix import parse_address

    dump = load_mrt_updates(args.input)
    dump.counters.verify(dump.records)
    _print_lines(dump.counters.summary_lines())
    base_routes = load_table(args.table) if args.table else []
    peer = None if args.peer == "auto" else parse_address(args.peer)
    trace, report = updates_to_trace(
        dump, base_routes, _ingest_policy(args), peer_ip=peer
    )
    _print_lines(report.summary_lines())
    _ensure_parent(args.output)
    save_updates(trace, args.output)
    print(f"wrote {len(trace)} updates to {args.output}")
    if args.stats:
        rates = update_rates(trace)
        print(
            format_table(
                ["metric", "value"],
                [(key, value) for key, value in rates.items()],
            )
        )
    return 0


def _cmd_ingest_pcap(args: argparse.Namespace) -> int:
    from repro.ingest import load_pcap, packets_to_trace

    dump = load_pcap(args.input)
    dump.counters.verify(dump.records)
    _print_lines(dump.counters.summary_lines())
    addresses, report = packets_to_trace(dump, _ingest_policy(args))
    _print_lines(report.summary_lines())
    _ensure_parent(args.output)
    save_packets(addresses, args.output)
    print(f"wrote {len(addresses)} packets to {args.output}")
    if args.stats:
        order = ">" if dump.big_endian else "<"
        resolution = "ns" if dump.nanosecond else "us"
        print(
            format_table(
                ["metric", "value"],
                [
                    ("byte order", order),
                    ("timestamp resolution", resolution),
                    ("unique destinations", len(set(addresses))),
                ],
            )
        )
    return 0


def _cmd_ingest_fixtures(args: argparse.Namespace) -> int:
    from repro.ingest import FixtureSpec, write_fixture_set

    spec = FixtureSpec(
        seed=args.seed,
        routes=args.routes,
        updates=args.updates,
        packets=args.packets,
    )
    paths = write_fixture_set(args.output, spec)
    for kind, path in sorted(paths.items()):
        print(f"{kind}: {path} ({path.stat().st_size} bytes)")
    return 0


def _cmd_ingest_fetch(args: argparse.Namespace) -> int:
    from repro.ingest import fetch as fetch_module

    if args.source == "ris":
        url = fetch_module.ris_url(args.collector, args.when, args.kind)
    else:
        url = fetch_module.routeviews_url(args.when, args.kind)
    if args.url_only:
        print(url)
        return 0
    if not args.output:
        print("error: fetch needs -o/--output (or use --url-only)",
              file=sys.stderr)
        return 2
    path = fetch_module.fetch(url, args.output)
    print(f"fetched {url} -> {path} ({path.stat().st_size} bytes)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-clue",
        description="CLUE (ICDCS 2012) reproduction toolkit",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {_package_version()}",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    gen_rib = commands.add_parser("gen-rib", help="generate a synthetic RIB")
    gen_rib.add_argument("--size", type=int, default=8_000)
    gen_rib.add_argument("--seed", type=int, default=1)
    gen_rib.add_argument("-o", "--output", required=True)
    gen_rib.set_defaults(handler=_cmd_gen_rib)

    gen_traffic = commands.add_parser(
        "gen-traffic", help="generate a packet trace over a table"
    )
    gen_traffic.add_argument("--table", required=True)
    gen_traffic.add_argument("--count", type=int, default=30_000)
    gen_traffic.add_argument("--seed", type=int, default=1)
    gen_traffic.add_argument("--zipf", type=float, default=1.1)
    gen_traffic.add_argument("-o", "--output", required=True)
    gen_traffic.set_defaults(handler=_cmd_gen_traffic)

    gen_updates = commands.add_parser(
        "gen-updates", help="generate a BGP update trace over a table"
    )
    gen_updates.add_argument("--table", required=True)
    gen_updates.add_argument("--count", type=int, default=2_000)
    gen_updates.add_argument("--seed", type=int, default=1)
    gen_updates.add_argument(
        "--structural",
        action="store_true",
        help="announce-new/withdraw only (the TTF benchmark mix)",
    )
    gen_updates.add_argument("-o", "--output", required=True)
    gen_updates.set_defaults(handler=_cmd_gen_updates)

    compress_cmd = commands.add_parser(
        "compress", help="ONRTC-compress a table"
    )
    compress_cmd.add_argument("--table", required=True)
    compress_cmd.add_argument(
        "--mode", choices=sorted(_MODES), default="dontcare"
    )
    compress_cmd.add_argument("--verify", action="store_true")
    compress_cmd.add_argument("-o", "--output")
    compress_cmd.set_defaults(handler=_cmd_compress)

    partition_cmd = commands.add_parser(
        "partition", help="split a table and report evenness/redundancy"
    )
    partition_cmd.add_argument("--table", required=True)
    partition_cmd.add_argument("--count", type=int, default=32)
    partition_cmd.add_argument(
        "--algorithm", choices=("even", "subtree", "idbit"), default="even"
    )
    partition_cmd.set_defaults(handler=_cmd_partition)

    simulate = commands.add_parser(
        "simulate", help="run the parallel lookup engine"
    )
    simulate.add_argument("--table", required=True)
    simulate.add_argument(
        "--scheme", choices=("clue", "clpl", "slpl", "rr"), default="clue"
    )
    simulate.add_argument("--packets", help="packet trace file")
    simulate.add_argument("--count", type=int, default=20_000)
    simulate.add_argument("--seed", type=int, default=1)
    simulate.add_argument("--chips", type=int, default=4)
    simulate.add_argument("--dred", type=int, default=1_024)
    simulate.add_argument("--queue", type=int, default=256)
    simulate.add_argument(
        "--backend",
        choices=LOOKUP_BACKENDS,
        default="trie",
        help="chip table implementation: reference trie, flattened "
        "stride table, or both cross-checked per lookup",
    )
    simulate.add_argument(
        "--profile",
        metavar="FILE",
        help="profile the run with cProfile: dump stats to FILE and "
        "print the top-20 cumulative entries",
    )
    simulate.add_argument(
        "--faults", help="fault schedule file (see gen-faults)"
    )
    durability = simulate.add_argument_group(
        "durability (crash drill; requires --scheme clue)"
    )
    durability.add_argument(
        "--journal",
        metavar="DIR",
        help="journal every update into DIR before applying it",
    )
    durability.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        help="snapshot state every N journaled operations",
    )
    durability.add_argument(
        "--crash-at",
        type=int,
        help="kill the control plane after N updates (drill for restore)",
    )
    durability.add_argument(
        "--power-loss",
        action="store_true",
        help="crash also destroys the unsynced journal tail",
    )
    durability.add_argument(
        "--updates", help="update trace to apply (default: generated)"
    )
    durability.add_argument(
        "--update-count",
        type=int,
        default=1_000,
        help="updates to generate when --updates is not given",
    )
    durability.add_argument(
        "--sync-every",
        type=int,
        default=64,
        help="fsync the journal every N records",
    )
    simulate.set_defaults(handler=_cmd_simulate)

    checkpoint = commands.add_parser(
        "checkpoint",
        help="recover a journaled state directory and snapshot it",
    )
    checkpoint.add_argument("--dir", required=True)
    checkpoint.set_defaults(handler=_cmd_checkpoint)

    restore = commands.add_parser(
        "restore",
        help="rebuild the system from snapshot + journal and audit it",
    )
    restore.add_argument("--dir", required=True)
    restore.add_argument(
        "--audit-sample",
        type=int,
        default=256,
        help="addresses sampled by the equivalence audit",
    )
    restore.add_argument(
        "--fingerprint",
        action="store_true",
        help="print the recovered state's SHA-256 fingerprint",
    )
    restore.set_defaults(handler=_cmd_restore)

    verify_snapshot = commands.add_parser(
        "verify-snapshot",
        help="verify snapshot digests and re-prove the invariants",
    )
    location = verify_snapshot.add_mutually_exclusive_group(required=True)
    location.add_argument("--snapshot", help="one snapshot file")
    location.add_argument("--dir", help="state directory (all snapshots)")
    verify_snapshot.add_argument("--audit-sample", type=int, default=256)
    verify_snapshot.set_defaults(handler=_cmd_verify_snapshot)

    gen_faults = commands.add_parser(
        "gen-faults", help="generate a random fault schedule"
    )
    gen_faults.add_argument("--seed", type=int, default=1)
    gen_faults.add_argument("--horizon", type=int, default=20_000)
    gen_faults.add_argument("--chips", type=int, default=4)
    gen_faults.add_argument("--chip-failures", type=int, default=1)
    gen_faults.add_argument("--corruptions", type=int, default=2)
    gen_faults.add_argument("--stalls", type=int, default=2)
    gen_faults.add_argument("--storms", type=int, default=1)
    gen_faults.add_argument("-o", "--output", required=True)
    gen_faults.set_defaults(handler=_cmd_gen_faults)

    inject = commands.add_parser(
        "inject-faults",
        help="run the integrated system through a fault schedule",
    )
    inject.add_argument("--table", required=True)
    inject.add_argument("--faults", required=True)
    inject.add_argument("--packets", help="packet trace file")
    inject.add_argument("--count", type=int, default=20_000)
    inject.add_argument("--seed", type=int, default=1)
    inject.add_argument("--chips", type=int, default=4)
    inject.add_argument("--dred", type=int, default=1_024)
    inject.add_argument("--queue", type=int, default=256)
    inject.add_argument(
        "--update-queue",
        type=int,
        default=256,
        help="bounded BGP update queue capacity (storm backpressure)",
    )
    inject.add_argument(
        "--rebalance",
        action="store_true",
        help="re-partition over the surviving chips after the run",
    )
    inject.set_defaults(handler=_cmd_inject_faults)

    replay = commands.add_parser(
        "replay-updates", help="run an update trace through a TTF pipeline"
    )
    replay.add_argument("--table", required=True)
    replay.add_argument("--updates", required=True)
    replay.add_argument(
        "--pipeline", choices=("clue", "clpl"), default="clue"
    )
    replay.add_argument("--lazy", action="store_true")
    replay.add_argument("--chips", type=int, default=4)
    replay.add_argument("--dred", type=int, default=1_024)
    replay.set_defaults(handler=_cmd_replay_updates)

    serve = commands.add_parser(
        "serve",
        help="run the network serving plane (lookup/update RPC over TCP)",
    )
    serve.add_argument("--table", help="routing table (omit with --restore)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="0 = ephemeral (see --port-file)"
    )
    serve.add_argument(
        "--port-file", help="write the bound port to this file after binding"
    )
    serve.add_argument(
        "--shards", type=int, default=1, help="address-range shard workers"
    )
    serve.add_argument(
        "--workers",
        choices=("threads", "processes"),
        default="threads",
        help="threads: every shard in this process (GIL-bound); "
        "processes: one worker process per shard behind a parent front",
    )
    serve.add_argument(
        "--worker-restarts",
        type=int,
        default=1,
        help="journal-restore respawns allowed per crashed worker "
        "(--workers processes; 0 disables restart)",
    )
    serve.add_argument(
        "--shard-index",
        type=int,
        help=argparse.SUPPRESS,  # internal: run as worker for one shard
    )
    serve.add_argument("--chips", type=int, default=4)
    serve.add_argument("--dred", type=int, default=1_024)
    serve.add_argument("--queue", type=int, default=256)
    serve.add_argument(
        "--update-queue",
        type=int,
        default=256,
        help="bounded BGP update queue per shard (storm backpressure)",
    )
    serve.add_argument("--backend", choices=LOOKUP_BACKENDS, default="fast")
    serve.add_argument(
        "--window",
        type=int,
        default=8,
        help="per-connection inflight request window (beyond it: BUSY)",
    )
    serve.add_argument(
        "--drain-grace",
        type=float,
        default=5.0,
        help="seconds drain waits for clients to close before force-close",
    )
    serve.add_argument(
        "--pump-budget",
        type=int,
        help="scheduler pump budget per update batch (default: batch size)",
    )
    serve.add_argument(
        "--faults",
        help="fault schedule armed on every shard (storms need no journal)",
    )
    serve_durability = serve.add_argument_group("durability")
    serve_durability.add_argument(
        "--journal",
        metavar="DIR",
        help="journal every update under DIR/shard-<i> before acking",
    )
    serve_durability.add_argument(
        "--restore",
        action="store_true",
        help="recover state from --journal instead of loading --table",
    )
    serve_durability.add_argument("--checkpoint-every", type=int, default=0)
    serve_durability.add_argument("--sync-every", type=int, default=64)
    serve_ha = serve.add_argument_group("high availability")
    serve_ha.add_argument(
        "--replicate-to",
        metavar="HOST:PORT",
        help="ship committed journal records to a backup replica "
        "(requires --journal)",
    )
    serve_ha.add_argument(
        "--ack-mode",
        choices=("primary", "quorum"),
        default="primary",
        help="primary: ack after local fsync, ship async; quorum: ack "
        "only after the backup has applied and synced the batch",
    )
    serve_ha.add_argument(
        "--no-ship-fingerprints",
        action="store_true",
        help="skip in-protocol fingerprint comparison (implied by "
        "--faults, whose chip faults diverge state outside the journal)",
    )
    serve_ha.add_argument(
        "--backup",
        metavar="DIR",
        help="run as a backup replica storing epochs under DIR "
        "(instead of serving a table)",
    )
    serve_ha.add_argument(
        "--no-auto-promote",
        action="store_true",
        help="backup only promotes on an explicit 'failover' command",
    )
    serve_ha.add_argument(
        "--heartbeat-interval",
        type=float,
        default=1.0,
        help="seconds between primary->backup heartbeats",
    )
    serve_ha.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=5.0,
        help="backup promotes after this long without hearing the primary",
    )
    serve.set_defaults(handler=_cmd_serve)

    failover = commands.add_parser(
        "failover",
        help="tell a backup replica to promote itself to primary",
    )
    failover.add_argument("--host", default="127.0.0.1")
    failover.add_argument("--port", type=int, required=True)
    failover.add_argument("--timeout", type=float, default=30.0)
    failover.add_argument(
        "--connect-attempts",
        type=int,
        default=3,
        help="dial retries (jittered exponential backoff) before failing",
    )
    failover.set_defaults(handler=_cmd_failover)

    reshard = commands.add_parser(
        "reshard",
        help="split or merge a live server's shards without stopping it",
    )
    reshard.add_argument("--host", default="127.0.0.1")
    reshard.add_argument("--port", type=int, required=True)
    reshard_action = reshard.add_mutually_exclusive_group(required=True)
    reshard_action.add_argument(
        "--split", type=int, metavar="SHARD",
        help="split this shard's range in two",
    )
    reshard_action.add_argument(
        "--merge", type=int, metavar="SHARD",
        help="merge this shard with its right neighbour",
    )
    reshard_action.add_argument(
        "--auto", action="store_true",
        help="let the per-range load counters pick the migration",
    )
    reshard_action.add_argument(
        "--status", action="store_true",
        help="print the migration status and exit",
    )
    reshard.add_argument(
        "--at", type=int, metavar="ADDR",
        help="with --split: cut at this address instead of the "
        "even-partition point",
    )
    reshard.add_argument(
        "--stage-delay", type=float, default=0.0,
        help="seconds to linger in each stage (drills widen kill windows)",
    )
    reshard.add_argument(
        "--cutover-pause", type=float, default=0.0,
        help="seconds to shed the data plane with MSG_REDIRECT before "
        "the cutover commit",
    )
    reshard.add_argument(
        "--wait", action="store_true",
        help="poll until the migration reaches done/rolled-back",
    )
    reshard.add_argument(
        "--wait-timeout", type=float, default=120.0,
        help="with --wait: give up (exit 1) after this many seconds",
    )
    reshard.add_argument("--timeout", type=float, default=30.0)
    reshard.add_argument(
        "--connect-attempts",
        type=int,
        default=3,
        help="dial retries (jittered exponential backoff) before failing",
    )
    reshard.set_defaults(handler=_cmd_reshard)

    chaos = commands.add_parser(
        "chaos",
        help="kill-and-verify campaign against real replica processes",
    )
    chaos.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized run: smaller RIB, fewer batches",
    )
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument(
        "--workdir",
        help="keep scenario state under this directory (default: a "
        "temporary directory, removed afterwards)",
    )
    chaos.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help="run only this scenario (repeatable; default: all)",
    )
    chaos.add_argument("-o", "--output", help="write the JSON verdicts")
    chaos.set_defaults(handler=_cmd_chaos)

    campaign = commands.add_parser(
        "campaign",
        help="run a declarative workload × fault × backend × topology "
        "campaign judged by the invariant oracles",
    )
    campaign.add_argument(
        "--spec", required=True, help="campaign spec (.toml or .json)"
    )
    campaign.add_argument(
        "--subset",
        metavar="NAME",
        help="run only the cells named by this [subsets] entry",
    )
    campaign.add_argument(
        "--cells",
        action="append",
        metavar="PATTERN",
        help="run only cells matching this glob over "
        "workload/fault/backend/topology ids (repeatable)",
    )
    campaign.add_argument(
        "--max-cells",
        type=int,
        help="hard cap on how many cells run (after filters)",
    )
    campaign.add_argument(
        "--list",
        action="store_true",
        help="print the expanded cell ids and exclusions, run nothing",
    )
    campaign.add_argument(
        "--workdir",
        help="keep per-cell state under this directory (default: a "
        "temporary directory, removed afterwards)",
    )
    campaign.add_argument("-o", "--output", help="write campaign.json here")
    campaign.add_argument(
        "--markdown", help="write the Markdown summary here instead of stdout"
    )
    campaign.set_defaults(handler=_cmd_campaign)

    ingest = commands.add_parser(
        "ingest",
        help="turn real MRT/pcap traces into the plain-text formats",
    )
    ingest_commands = ingest.add_subparsers(dest="ingest_command", required=True)

    def _policy_flags(sub: argparse.ArgumentParser, ports: bool = True) -> None:
        if ports:
            sub.add_argument(
                "--ports",
                type=int,
                default=24,
                help="egress port count the next-hop hash maps onto",
            )
        sub.add_argument(
            "--keep-martians",
            action="store_true",
            help="keep bogon space (0/8, 127/8, multicast, class E)",
        )
        sub.add_argument(
            "--drop-default",
            action="store_true",
            help="drop the 0.0.0.0/0 default route instead of keeping it",
        )
        sub.add_argument(
            "--stats",
            action="store_true",
            help="print prefix-length histogram / rate statistics",
        )

    ingest_rib = ingest_commands.add_parser(
        "rib",
        help="MRT TABLE_DUMP_V2 RIB dump (bview/rib, .gz/.bz2 ok) -> table",
    )
    ingest_rib.add_argument("input")
    ingest_rib.add_argument("-o", "--output", required=True)
    ingest_rib.add_argument(
        "--peer",
        default="auto",
        help="peer index for the single-peer view (default: most entries)",
    )
    _policy_flags(ingest_rib)
    ingest_rib.set_defaults(handler=_cmd_ingest_rib)

    ingest_updates = ingest_commands.add_parser(
        "updates",
        help="MRT BGP4MP update dump (.gz/.bz2 ok) -> update trace",
    )
    ingest_updates.add_argument("input")
    ingest_updates.add_argument("-o", "--output", required=True)
    ingest_updates.add_argument(
        "--table",
        help="base table (from 'ingest rib') seeding withdraw consistency",
    )
    ingest_updates.add_argument(
        "--peer",
        default="auto",
        help="peer IP for the single-peer view (default: most updates)",
    )
    ingest_updates.add_argument(
        "--time-scale",
        type=float,
        default=1.0,
        help="multiply rebased timestamps (0.01 squeezes 1h into 36s)",
    )
    _policy_flags(ingest_updates)
    ingest_updates.set_defaults(handler=_cmd_ingest_updates)

    ingest_pcap = ingest_commands.add_parser(
        "pcap",
        help="classic libpcap Ethernet capture -> packet trace",
    )
    ingest_pcap.add_argument("input")
    ingest_pcap.add_argument("-o", "--output", required=True)
    _policy_flags(ingest_pcap, ports=False)
    ingest_pcap.set_defaults(handler=_cmd_ingest_pcap)

    ingest_fixtures = ingest_commands.add_parser(
        "fixtures",
        help="write deterministic synthetic MRT/pcap files (no network)",
    )
    ingest_fixtures.add_argument("-o", "--output", required=True)
    ingest_fixtures.add_argument("--seed", type=int, default=7)
    ingest_fixtures.add_argument("--routes", type=int, default=96)
    ingest_fixtures.add_argument("--updates", type=int, default=160)
    ingest_fixtures.add_argument("--packets", type=int, default=256)
    ingest_fixtures.set_defaults(handler=_cmd_ingest_fixtures)

    ingest_fetch = ingest_commands.add_parser(
        "fetch",
        help="download a real RIS/RouteViews archive (never used by CI)",
    )
    ingest_fetch.add_argument(
        "--source", choices=("ris", "routeviews"), default="ris"
    )
    ingest_fetch.add_argument(
        "--collector", default="rrc00", help="RIS collector (e.g. rrc01)"
    )
    ingest_fetch.add_argument(
        "--when", required=True, help="archive timestamp, YYYYMMDD.HHMM"
    )
    ingest_fetch.add_argument("--kind", choices=("rib", "updates"), default="rib")
    ingest_fetch.add_argument("-o", "--output")
    ingest_fetch.add_argument(
        "--url-only", action="store_true", help="print the URL, do not fetch"
    )
    ingest_fetch.set_defaults(handler=_cmd_ingest_fetch)

    bench_serve = commands.add_parser(
        "bench-serve",
        help="measure loopback serving throughput and latency",
    )
    bench_serve.add_argument("--table", required=True)
    bench_serve.add_argument(
        "--packets",
        help="drive an ingested packet trace instead of synthetic traffic",
    )
    bench_serve.add_argument("--batches", type=int, default=200)
    bench_serve.add_argument("--batch-size", type=int, default=1_024)
    bench_serve.add_argument(
        "--window", type=int, default=4, help="pipelined requests in flight"
    )
    bench_serve.add_argument("--shards", type=int, default=1)
    bench_serve.add_argument("--chips", type=int, default=4)
    bench_serve.add_argument("--dred", type=int, default=1_024)
    bench_serve.add_argument("--queue", type=int, default=256)
    bench_serve.add_argument("--update-queue", type=int, default=256)
    bench_serve.add_argument(
        "--backend", choices=LOOKUP_BACKENDS, default="fast"
    )
    bench_serve.add_argument("--seed", type=int, default=1)
    bench_serve.add_argument(
        "--replicate",
        action="store_true",
        help="journal to a temp dir and ship to a live backup replica",
    )
    bench_serve.add_argument(
        "--ack-mode",
        choices=("primary", "quorum"),
        default="primary",
        help="with --replicate: when the primary acks updates",
    )
    bench_serve.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-read client timeout in seconds",
    )
    bench_serve.add_argument(
        "--connect-attempts",
        type=int,
        default=3,
        help="dial retries (jittered exponential backoff) before failing",
    )
    bench_serve.add_argument(
        "--floor",
        type=float,
        default=0.0,
        help="fail (exit 1) below this lookups/sec",
    )
    bench_serve.add_argument("-o", "--output", help="write the JSON report")
    bench_serve.set_defaults(handler=_cmd_bench_serve)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code.

    Operational errors — malformed trace files, unreadable paths, invalid
    parameter values — are reported as one ``error:`` line on stderr with
    exit code 2 instead of a raw traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (TraceFormatError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
