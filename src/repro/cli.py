"""Command-line interface: drive the CLUE system on plain-text traces.

Installed as ``repro-clue``; every subcommand reads/writes the trace
formats of :mod:`repro.workload.traces`, so complete experiments can be
scripted without writing Python:

.. code-block:: bash

    repro-clue gen-rib --size 8000 --seed 1 -o table.txt
    repro-clue compress --table table.txt --verify
    repro-clue gen-traffic --table table.txt --count 30000 -o packets.txt
    repro-clue simulate --table table.txt --packets packets.txt --scheme clue
    repro-clue gen-updates --table table.txt --count 2000 -o updates.txt
    repro-clue replay-updates --table table.txt --updates updates.txt
    repro-clue gen-faults --chips 4 --horizon 20000 -o faults.txt
    repro-clue simulate --table table.txt --faults faults.txt
    repro-clue inject-faults --table table.txt --faults faults.txt
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.summarize import format_percent, format_table
from repro.compress.labels import CompressionMode
from repro.compress.onrtc import compress
from repro.compress.verify import find_mismatch, is_disjoint_table
from repro.engine.builders import (
    build_clpl_engine,
    build_clue_engine,
    build_round_robin_engine,
    build_slpl_engine,
)
from repro.core import ClueSystem, SystemConfig
from repro.engine.simulator import EngineConfig
from repro.faults import FaultInjector, FaultSchedule
from repro.partition.even import even_partition
from repro.partition.idbit import idbit_partition
from repro.partition.subtree import subtree_partition
from repro.trie.trie import BinaryTrie
from repro.update.pipeline import (
    ClplUpdatePipeline,
    ClueUpdatePipeline,
    default_dred_banks,
)
from repro.workload.ribgen import RibParameters, generate_rib
from repro.workload.traces import (
    TraceFormatError,
    load_faults,
    load_packets,
    load_table,
    load_updates,
    save_faults,
    save_packets,
    save_table,
    save_updates,
)
from repro.workload.trafficgen import TrafficGenerator, TrafficParameters
from repro.workload.updategen import UpdateGenerator, UpdateParameters

_MODES = {
    "strict": CompressionMode.STRICT,
    "dontcare": CompressionMode.DONT_CARE,
}


def _cmd_gen_rib(args: argparse.Namespace) -> int:
    routes = generate_rib(args.seed, RibParameters(size=args.size))
    save_table(routes, args.output)
    print(f"wrote {len(routes)} routes to {args.output}")
    return 0


def _cmd_gen_traffic(args: argparse.Namespace) -> int:
    routes = load_table(args.table)
    generator = TrafficGenerator(
        routes,
        seed=args.seed,
        parameters=TrafficParameters(zipf_exponent=args.zipf),
    )
    save_packets(generator.take(args.count), args.output)
    print(f"wrote {args.count} packets to {args.output}")
    return 0


def _cmd_gen_updates(args: argparse.Namespace) -> int:
    routes = load_table(args.table)
    if args.structural:
        parameters = UpdateParameters(
            modify_fraction=0.0,
            new_prefix_fraction=0.5,
            withdraw_fraction=0.5,
        )
    else:
        parameters = UpdateParameters()
    generator = UpdateGenerator(routes, seed=args.seed, parameters=parameters)
    save_updates(generator.take(args.count), args.output)
    print(f"wrote {args.count} updates to {args.output}")
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    routes = load_table(args.table)
    trie = BinaryTrie.from_routes(routes)
    mode = _MODES[args.mode]
    table = compress(trie, mode)
    print(
        f"{len(routes)} -> {len(table)} entries "
        f"({format_percent(len(table) / max(1, len(routes)))})"
    )
    if args.verify:
        assert is_disjoint_table(table)
        mismatch = find_mismatch(
            trie, table, covered_only=(mode is CompressionMode.DONT_CARE)
        )
        if mismatch is not None:
            print(f"VERIFICATION FAILED at {mismatch}")
            return 1
        print("verified: disjoint and forwarding-equivalent")
    if args.output:
        save_table(
            sorted(table.items(), key=lambda r: r[0].sort_key()), args.output
        )
        print(f"wrote compressed table to {args.output}")
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    routes = load_table(args.table)
    if args.algorithm == "even":
        trie = BinaryTrie.from_routes(routes)
        compressed = sorted(
            compress(trie, CompressionMode.DONT_CARE).items(),
            key=lambda route: route[0].sort_key(),
        )
        result = even_partition(compressed, args.count)
    elif args.algorithm == "subtree":
        result = subtree_partition(BinaryTrie.from_routes(routes), args.count)
    else:
        result = idbit_partition(routes, args.count)
    print(
        format_table(
            ["metric", "value"],
            [
                ("algorithm", result.algorithm),
                ("partitions", result.count),
                ("max size", result.max_size),
                ("min size", result.min_size),
                ("max/mean", f"{result.imbalance:.3f}"),
                ("redundant entries", result.redundancy),
            ],
        )
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    routes = load_table(args.table)
    config = EngineConfig(
        chip_count=args.chips,
        dred_capacity=args.dred,
        queue_capacity=args.queue,
    )
    if args.packets:
        addresses: List[int] = load_packets(args.packets)
        count = len(addresses)
        source = iter(addresses)
    else:
        count = args.count
        source = TrafficGenerator(routes, seed=args.seed)
    if args.scheme == "clue":
        built = build_clue_engine(routes, config)
    elif args.scheme == "clpl":
        built = build_clpl_engine(routes, config)
    elif args.scheme == "slpl":
        training = TrafficGenerator(routes, seed=args.seed + 1).take(
            max(1_000, count // 2)
        )
        built = build_slpl_engine(routes, training, config)
    else:
        built = build_round_robin_engine(routes, config)
    if args.faults:
        schedule = load_faults(args.faults)
        built.engine.fault_injector = FaultInjector(built.engine, schedule)
    stats = built.engine.run(source, count)
    rows = [
        ("scheme", args.scheme),
        ("packets", stats.completions),
        ("cycles", stats.cycles),
        ("speedup", f"{stats.speedup(config.lookup_cycles):.3f}"),
        (
            "DRed hit rate",
            f"{stats.dred_hit_rate:.3f}" if stats.dred_lookups else "n/a",
        ),
        ("diverted", stats.diverted),
        ("control-plane msgs", stats.control_plane_interactions),
        ("TCAM entries", built.total_tcam_entries),
        (
            "per-chip load",
            " ".join(f"{share:.1%}" for share in stats.chip_load_shares()),
        ),
    ]
    if args.faults:
        rows.extend(
            [
                ("chip failures", stats.chip_failures),
                ("downtime chip-cycles", stats.chip_downtime_cycles),
                ("availability", f"{stats.availability():.3%}"),
                ("failed-over packets", stats.failed_over_packets),
                ("control-path resolutions", stats.control_path_resolutions),
                ("corrupted entries", stats.corrupted_entries),
            ]
        )
    print(format_table(["metric", "value"], rows))
    return 0


def _cmd_gen_faults(args: argparse.Namespace) -> int:
    schedule = FaultSchedule.random(
        seed=args.seed,
        horizon=args.horizon,
        chip_count=args.chips,
        chip_failures=args.chip_failures,
        corruptions=args.corruptions,
        stalls=args.stalls,
        storms=args.storms,
    )
    save_faults(schedule, args.output)
    print(f"wrote {len(schedule)} fault events to {args.output}")
    return 0


def _cmd_inject_faults(args: argparse.Namespace) -> int:
    """Drive the integrated system through a fault schedule and report."""
    routes = load_table(args.table)
    schedule = load_faults(args.faults)
    system = ClueSystem(
        routes,
        SystemConfig(
            engine=EngineConfig(
                chip_count=args.chips,
                dred_capacity=args.dred,
                queue_capacity=args.queue,
            ),
            update_queue_capacity=args.update_queue,
        ),
    )
    system.attach_faults(schedule)
    if args.packets:
        addresses: List[int] = load_packets(args.packets)
        count = len(addresses)
        source = iter(addresses)
    else:
        count = args.count
        source = TrafficGenerator(routes, seed=args.seed)
    stats = system.process_traffic(source, count)
    system.drain_updates()
    audit = system.verify_chips()
    rebalanced = None
    if args.rebalance:
        rebalanced = system.rebalance()
    rows = [
        ("packets", stats.completions),
        ("cycles", stats.cycles),
        ("speedup", f"{stats.speedup(system.config.engine.lookup_cycles):.3f}"),
        ("chip failures", stats.chip_failures),
        ("chip recoveries", stats.chip_recoveries),
        ("downtime chip-cycles", stats.chip_downtime_cycles),
        ("availability", f"{stats.availability():.3%}"),
        ("failed-over packets", stats.failed_over_packets),
        ("control-path resolutions", stats.control_path_resolutions),
        ("updates shed", stats.shed_updates),
        ("TCAM writes deferred", stats.deferred_updates),
        ("corrupted entries", stats.corrupted_entries),
        ("audit repairs", audit.repairs),
    ]
    if rebalanced is not None:
        rows.append(
            (
                "rebalanced over",
                f"chips {rebalanced.survivor_chips} "
                f"(even={rebalanced.is_even})",
            )
        )
    print(format_table(["metric", "value"], rows))
    return 0


def _cmd_replay_updates(args: argparse.Namespace) -> int:
    routes = load_table(args.table)
    messages = load_updates(args.updates)
    if args.pipeline == "clue":
        pipeline = ClueUpdatePipeline(
            routes,
            dred_banks=default_dred_banks(args.chips, args.dred, True),
            lazy=args.lazy,
        )
    else:
        pipeline = ClplUpdatePipeline(
            routes,
            dred_banks=default_dred_banks(args.chips, args.dred, False),
        )
    report = pipeline.run(messages)
    rows = [
        ("updates", len(report)),
        ("TTF1 mean (us)", f"{report.ttf1().mean_us:.4f}"),
        ("TTF2 mean (us)", f"{report.ttf2().mean_us:.4f}"),
        ("TTF3 mean (us)", f"{report.ttf3().mean_us:.4f}"),
        ("TTF2+3 mean (us)", f"{report.ttf23().mean_us:.4f}"),
        ("TTF total mean (us)", f"{report.total().mean_us:.4f}"),
        ("TCAM moves", pipeline.totals.tcam_moves),
        ("SRAM accesses", pipeline.totals.sram_accesses),
    ]
    print(format_table(["metric", "value"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-clue",
        description="CLUE (ICDCS 2012) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    gen_rib = commands.add_parser("gen-rib", help="generate a synthetic RIB")
    gen_rib.add_argument("--size", type=int, default=8_000)
    gen_rib.add_argument("--seed", type=int, default=1)
    gen_rib.add_argument("-o", "--output", required=True)
    gen_rib.set_defaults(handler=_cmd_gen_rib)

    gen_traffic = commands.add_parser(
        "gen-traffic", help="generate a packet trace over a table"
    )
    gen_traffic.add_argument("--table", required=True)
    gen_traffic.add_argument("--count", type=int, default=30_000)
    gen_traffic.add_argument("--seed", type=int, default=1)
    gen_traffic.add_argument("--zipf", type=float, default=1.1)
    gen_traffic.add_argument("-o", "--output", required=True)
    gen_traffic.set_defaults(handler=_cmd_gen_traffic)

    gen_updates = commands.add_parser(
        "gen-updates", help="generate a BGP update trace over a table"
    )
    gen_updates.add_argument("--table", required=True)
    gen_updates.add_argument("--count", type=int, default=2_000)
    gen_updates.add_argument("--seed", type=int, default=1)
    gen_updates.add_argument(
        "--structural",
        action="store_true",
        help="announce-new/withdraw only (the TTF benchmark mix)",
    )
    gen_updates.add_argument("-o", "--output", required=True)
    gen_updates.set_defaults(handler=_cmd_gen_updates)

    compress_cmd = commands.add_parser(
        "compress", help="ONRTC-compress a table"
    )
    compress_cmd.add_argument("--table", required=True)
    compress_cmd.add_argument(
        "--mode", choices=sorted(_MODES), default="dontcare"
    )
    compress_cmd.add_argument("--verify", action="store_true")
    compress_cmd.add_argument("-o", "--output")
    compress_cmd.set_defaults(handler=_cmd_compress)

    partition_cmd = commands.add_parser(
        "partition", help="split a table and report evenness/redundancy"
    )
    partition_cmd.add_argument("--table", required=True)
    partition_cmd.add_argument("--count", type=int, default=32)
    partition_cmd.add_argument(
        "--algorithm", choices=("even", "subtree", "idbit"), default="even"
    )
    partition_cmd.set_defaults(handler=_cmd_partition)

    simulate = commands.add_parser(
        "simulate", help="run the parallel lookup engine"
    )
    simulate.add_argument("--table", required=True)
    simulate.add_argument(
        "--scheme", choices=("clue", "clpl", "slpl", "rr"), default="clue"
    )
    simulate.add_argument("--packets", help="packet trace file")
    simulate.add_argument("--count", type=int, default=20_000)
    simulate.add_argument("--seed", type=int, default=1)
    simulate.add_argument("--chips", type=int, default=4)
    simulate.add_argument("--dred", type=int, default=1_024)
    simulate.add_argument("--queue", type=int, default=256)
    simulate.add_argument(
        "--faults", help="fault schedule file (see gen-faults)"
    )
    simulate.set_defaults(handler=_cmd_simulate)

    gen_faults = commands.add_parser(
        "gen-faults", help="generate a random fault schedule"
    )
    gen_faults.add_argument("--seed", type=int, default=1)
    gen_faults.add_argument("--horizon", type=int, default=20_000)
    gen_faults.add_argument("--chips", type=int, default=4)
    gen_faults.add_argument("--chip-failures", type=int, default=1)
    gen_faults.add_argument("--corruptions", type=int, default=2)
    gen_faults.add_argument("--stalls", type=int, default=2)
    gen_faults.add_argument("--storms", type=int, default=1)
    gen_faults.add_argument("-o", "--output", required=True)
    gen_faults.set_defaults(handler=_cmd_gen_faults)

    inject = commands.add_parser(
        "inject-faults",
        help="run the integrated system through a fault schedule",
    )
    inject.add_argument("--table", required=True)
    inject.add_argument("--faults", required=True)
    inject.add_argument("--packets", help="packet trace file")
    inject.add_argument("--count", type=int, default=20_000)
    inject.add_argument("--seed", type=int, default=1)
    inject.add_argument("--chips", type=int, default=4)
    inject.add_argument("--dred", type=int, default=1_024)
    inject.add_argument("--queue", type=int, default=256)
    inject.add_argument(
        "--update-queue",
        type=int,
        default=256,
        help="bounded BGP update queue capacity (storm backpressure)",
    )
    inject.add_argument(
        "--rebalance",
        action="store_true",
        help="re-partition over the surviving chips after the run",
    )
    inject.set_defaults(handler=_cmd_inject_faults)

    replay = commands.add_parser(
        "replay-updates", help="run an update trace through a TTF pipeline"
    )
    replay.add_argument("--table", required=True)
    replay.add_argument("--updates", required=True)
    replay.add_argument(
        "--pipeline", choices=("clue", "clpl"), default="clue"
    )
    replay.add_argument("--lazy", action="store_true")
    replay.add_argument("--chips", type=int, default=4)
    replay.add_argument("--dred", type=int, default=1_024)
    replay.set_defaults(handler=_cmd_replay_updates)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code.

    Operational errors — malformed trace files, unreadable paths, invalid
    parameter values — are reported as one ``error:`` line on stderr with
    exit code 2 instead of a raw traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (TraceFormatError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
