"""Fixed-stride multibit trie — the other classical software lookup.

Where DIR-24-8 buys one-access lookups with enormous tables, a multibit
trie walks one node per stride (default 8-8-8-8: at most four memory
accesses for IPv4) with memory proportional to the table's structure.
Prefixes whose length falls inside a stride are installed by controlled
prefix expansion; each slot remembers the length of the route that painted
it so longer matches always win (Srinivasan & Varghese).

Together with :mod:`repro.swlookup.dir248` this pins down the software
side of the paper's "TCAM = 1 access" comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.net.prefix import ADDRESS_WIDTH, Prefix
from repro.trie.trie import BinaryTrie

Route = Tuple[Prefix, int]

DEFAULT_STRIDES = (8, 8, 8, 8)


@dataclass
class MultibitCounters:
    """Operation counts for cost accounting."""

    lookups: int = 0
    memory_accesses: int = 0
    slot_writes: int = 0


class _Node:
    """One multibit trie node: 2^stride slots of (hop, set-length, child)."""

    __slots__ = ("hops", "lengths", "children")

    def __init__(self, stride: int) -> None:
        size = 1 << stride
        self.hops: List[Optional[int]] = [None] * size
        self.lengths: List[int] = [-1] * size
        self.children: List[Optional[_Node]] = [None] * size


class MultibitTrie:
    """A fixed-stride multibit trie with access/memory accounting.

    >>> table = MultibitTrie([(Prefix.parse("10.0.0.0/8"), 3)])
    >>> table.lookup((10 << 24) | 99)
    3
    """

    def __init__(
        self,
        routes: Iterable[Route] = (),
        strides: Sequence[int] = DEFAULT_STRIDES,
    ) -> None:
        if sum(strides) != ADDRESS_WIDTH:
            raise ValueError("strides must cover exactly 32 bits")
        if any(stride <= 0 for stride in strides):
            raise ValueError("strides must be positive")
        self.strides = tuple(strides)
        self._root = _Node(self.strides[0])
        self.counters = MultibitCounters()
        self._control = BinaryTrie()
        self._node_count = 1
        for prefix, hop in routes:
            self.insert(prefix, hop)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def lookup(self, address: int) -> Optional[int]:
        """LPM lookup: one memory access per visited level."""
        self.counters.lookups += 1
        node: Optional[_Node] = self._root
        consumed = 0
        best: Optional[int] = None
        for stride in self.strides:
            if node is None:
                break
            self.counters.memory_accesses += 1
            shift = ADDRESS_WIDTH - consumed - stride
            index = (address >> shift) & ((1 << stride) - 1)
            if node.hops[index] is not None:
                best = node.hops[index]
            node = node.children[index]
            consumed += stride
        return best

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def insert(self, prefix: Prefix, next_hop: int) -> int:
        """Install a route via controlled prefix expansion."""
        self._control.insert(prefix, next_hop)
        return self._paint(prefix)

    def delete(self, prefix: Prefix) -> int:
        """Withdraw a route; repaints its expansion range from the trie."""
        if not self._control.delete(prefix):
            return 0
        return self._paint(prefix)

    def _paint(self, prefix: Prefix) -> int:
        """Recompute the slots ``prefix`` expands into, from the control
        trie (so overlapping routes keep winning by length).

        Each slot at the prefix's level is repainted with the longest
        control-plane route *at or above* that slot — exactly controlled
        prefix expansion, but derived from the trie so that withdrawals
        and overwrites repaint correctly.
        """
        from repro.trie.traversal import covering_route

        node = self._root
        consumed = 0
        written = 0
        for level, stride in enumerate(self.strides):
            if prefix.length <= consumed + stride:
                # The prefix ends inside this level: repaint its slot range
                # (the level index keeps only the low ``stride`` bits).
                span = 1 << (consumed + stride - prefix.length)
                base = (
                    prefix.value << (consumed + stride - prefix.length)
                ) & ((1 << stride) - 1)
                for index in range(base, base + span):
                    slot_prefix = self._slot_prefix(
                        prefix, consumed, stride, index
                    )
                    covering = covering_route(self._control, slot_prefix)
                    hop = covering[1] if covering else None
                    length = covering[0].length if covering else -1
                    if node.hops[index] != hop or node.lengths[index] != length:
                        node.hops[index] = hop
                        node.lengths[index] = length
                        written += 1
                break
            # Descend (allocating) toward the prefix's level.
            shift = prefix.length - consumed - stride
            index = (prefix.value >> shift) & ((1 << stride) - 1)
            if node.children[index] is None:
                node.children[index] = _Node(self.strides[level + 1])
                self._node_count += 1
                written += 1
            node = node.children[index]
            consumed += stride
        self.counters.slot_writes += written
        return written

    def _slot_prefix(
        self, prefix: Prefix, consumed: int, stride: int, index: int
    ) -> Prefix:
        """The address-space prefix one level slot stands for."""
        high = prefix.value >> max(0, prefix.length - consumed) if consumed else 0
        value = (high << stride) | index
        return Prefix(value, consumed + stride)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def memory_slots(self) -> int:
        """Total allocated slots across all nodes."""
        total = 0
        stack = [(self._root, 0)]
        while stack:
            node, level = stack.pop()
            total += 1 << self.strides[level]
            for child in node.children:
                if child is not None:
                    stack.append((child, level + 1))
        return total

    @property
    def node_count(self) -> int:
        return self._node_count

    def accesses_per_lookup(self) -> float:
        if self.counters.lookups == 0:
            return 0.0
        return self.counters.memory_accesses / self.counters.lookups
