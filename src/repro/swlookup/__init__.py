"""Software (SRAM) lookup baselines: DIR-24-8 and the multibit trie.

The intro's motivation for TCAMs — software lookup needs multiple memory
accesses per packet — made measurable.
"""

from repro.swlookup.dir248 import Dir248Counters, Dir248Table
from repro.swlookup.multibit import (
    DEFAULT_STRIDES,
    MultibitCounters,
    MultibitTrie,
)

__all__ = [
    "DEFAULT_STRIDES",
    "Dir248Counters",
    "Dir248Table",
    "MultibitCounters",
    "MultibitTrie",
]
