"""DIR-24-8: the classical software/SRAM lookup baseline.

The paper's introduction dismisses software lookup because it "might need
multiple memory accesses" per packet where a TCAM needs one.  To make that
comparison concrete (and testable), this module implements the standard
DIR-24-8-BASIC scheme (Gupta, Lin & McKeown, INFOCOM 1998): a 2^24-entry
first-level table indexed by the top 24 address bits, overflowing into
256-entry second-level blocks for prefixes longer than /24.

* lookup: 1 memory access for ≤/24 coverage, 2 accesses otherwise;
* memory: the scheme's classic trade — gigantic tables for O(1) access;
* update: a /8 announcement rewrites 2^16 first-level slots, the known
  weakness that motivated incremental-update research.

The implementation counts memory accesses and slot writes so benchmarks
can put real numbers on the intro's claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.net.prefix import Prefix
from repro.trie.trie import BinaryTrie

Route = Tuple[Prefix, int]

_LEVEL1_BITS = 24
_LEVEL1_SIZE = 1 << _LEVEL1_BITS
_LEVEL2_SIZE = 1 << 8


@dataclass
class Dir248Counters:
    """Operation counts for cost accounting."""

    lookups: int = 0
    memory_accesses: int = 0
    slot_writes: int = 0


class Dir248Table:
    """A DIR-24-8-BASIC forwarding table.

    First-level slots hold either a next hop (tagged non-negative) or the
    index of a second-level block (tagged negative as ``-(block + 1)``),
    mirroring the hardware's tag bit.  ``None`` marks "no route".
    """

    def __init__(self, routes: Iterable[Route] = ()) -> None:
        # The architectural level-1 table has 2^24 slots; the model stores
        # it sparsely (missing key = empty slot) so instances stay small.
        self._level1: Dict[int, int] = {}
        self._level2: List[List[Optional[int]]] = []
        self.counters = Dir248Counters()
        # The control-plane trie: needed to recompute effective hops when
        # routes are withdrawn or overwritten.
        self._control = BinaryTrie()
        for prefix, hop in routes:
            self.insert(prefix, hop)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def lookup(self, address: int) -> Optional[int]:
        """LPM lookup: one memory access, two when a /24 block overflows."""
        self.counters.lookups += 1
        self.counters.memory_accesses += 1
        slot = self._level1.get(address >> 8)
        if slot is None or slot >= 0:
            return slot
        block = self._level2[-slot - 1]
        self.counters.memory_accesses += 1
        return block[address & 0xFF]

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def insert(self, prefix: Prefix, next_hop: int) -> int:
        """Install a route; returns the number of slots written."""
        self._control.insert(prefix, next_hop)
        return self._repaint(prefix)

    def delete(self, prefix: Prefix) -> int:
        """Withdraw a route; returns the number of slots written."""
        if not self._control.delete(prefix):
            return 0
        return self._repaint(prefix)

    def _repaint(self, prefix: Prefix) -> int:
        """Rewrite every slot the prefix's region covers from the trie.

        DIR-24-8's update cost *is* this repaint: short prefixes touch
        vast slot ranges.  Repainting from the control trie (rather than
        the announced hop) keeps more-specific routes intact.
        """
        written = 0
        if prefix.length <= _LEVEL1_BITS:
            first = prefix.network >> 8
            last = prefix.broadcast >> 8
            for index in range(first, last + 1):
                written += self._repaint_level1(index)
        else:
            written += self._repaint_level1(prefix.network >> 8)
        self.counters.slot_writes += written
        return written

    def _repaint_level1(self, index: int) -> int:
        """Recompute one /24's slot (and its block, if it has one)."""
        base = index << 8
        slot = self._level1.get(index)
        if slot is not None and slot < 0:
            # Existing second-level block: repaint it hostwise.
            block = self._level2[-slot - 1]
            written = 0
            for offset in range(_LEVEL2_SIZE):
                hop = self._control.lookup(base | offset)
                if block[offset] != hop:
                    block[offset] = hop
                    written += 1
            return written
        # Does this /24 need a block? Only if a >24-bit route lives here.
        if self._has_long_routes(index):
            block = [
                self._control.lookup(base | offset)
                for offset in range(_LEVEL2_SIZE)
            ]
            self._level2.append(block)
            self._level1[index] = -len(self._level2)
            return _LEVEL2_SIZE + 1
        hop = self._control.lookup(base)
        if self._level1.get(index) != hop:
            if hop is None:
                self._level1.pop(index, None)
            else:
                self._level1[index] = hop
            return 1
        return 0

    def _has_long_routes(self, index: int) -> bool:
        """Any control-plane route longer than /24 inside this /24?"""
        node = self._control.find_node(Prefix(index, _LEVEL1_BITS))
        if node is None:
            return False
        return any(
            descendant.has_route and descendant is not node
            for descendant in node.iter_descendants()
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def level2_blocks(self) -> int:
        """Allocated second-level blocks (memory footprint driver)."""
        return len(self._level2)

    def memory_slots(self) -> int:
        """Total table slots this instance occupies."""
        return _LEVEL1_SIZE + self.level2_blocks * _LEVEL2_SIZE

    def accesses_per_lookup(self) -> float:
        """Mean memory accesses per lookup so far."""
        if self.counters.lookups == 0:
            return 0.0
        return self.counters.memory_accesses / self.counters.lookups
