"""IPv4 prefix value type used throughout the CLUE reproduction.

A :class:`Prefix` denotes the set of 32-bit addresses that share a given
leading bit pattern.  It is the common currency between the trie, the
compression algorithms, the TCAM model and the parallel lookup engine, so it
is deliberately small, immutable and hashable.

Internally a prefix is the pair ``(value, length)`` where ``value`` holds the
``length`` most significant bits, right aligned (``0 <= value < 2**length``).
This representation makes trie navigation (append a bit), parent/child
arithmetic and TCAM ternary matching one-liners.
"""

from __future__ import annotations

from typing import Iterator, Tuple

#: Width of the address space.  The paper (and this reproduction) is IPv4.
ADDRESS_WIDTH = 32

#: Number of addresses in the full space.
ADDRESS_SPACE = 1 << ADDRESS_WIDTH

_OCTET_COUNT = 4


class PrefixError(ValueError):
    """Raised for malformed prefix notation or out-of-range components."""


class Prefix:
    """An immutable IPv4 prefix (a ``value/length`` pair).

    >>> Prefix.parse("192.168.0.0/16")
    Prefix('192.168.0.0/16')
    >>> Prefix.from_bits("10")            # the top two bits are '10'
    Prefix('128.0.0.0/2')
    >>> Prefix.parse("10.0.0.0/8").contains_address(10 << 24)
    True
    """

    __slots__ = ("_value", "_length", "_hash")

    def __init__(self, value: int, length: int) -> None:
        if not 0 <= length <= ADDRESS_WIDTH:
            raise PrefixError(f"prefix length {length} outside [0, {ADDRESS_WIDTH}]")
        if not 0 <= value < (1 << length) and length > 0:
            raise PrefixError(f"value {value:#x} does not fit in {length} bits")
        if length == 0 and value != 0:
            raise PrefixError("the zero-length prefix must have value 0")
        self._value = value
        self._length = length
        # Prefixes key the DRed caches and chip tables on the simulator's
        # hot path, where the same object is hashed millions of times —
        # cache the (unchanged) tuple hash instead of recomputing it.
        self._hash = hash((value, length))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def root(cls) -> "Prefix":
        """The zero-length prefix covering the entire address space."""
        return cls(0, 0)

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse dotted-quad CIDR notation, e.g. ``"10.1.0.0/16"``.

        Host bits beyond the mask must be zero; anything else is almost
        always a data error in a routing table, so we refuse it loudly.
        """
        try:
            address_text, length_text = text.strip().split("/")
            length = int(length_text)
        except ValueError as exc:
            raise PrefixError(f"malformed CIDR text {text!r}") from exc
        address = parse_address(address_text)
        if not 0 <= length <= ADDRESS_WIDTH:
            raise PrefixError(f"prefix length {length} outside [0, {ADDRESS_WIDTH}]")
        value = address >> (ADDRESS_WIDTH - length) if length else 0
        if (value << (ADDRESS_WIDTH - length)) != address and length < ADDRESS_WIDTH:
            raise PrefixError(f"{text!r} has non-zero host bits")
        if length == ADDRESS_WIDTH and address != (value if length else 0):
            raise PrefixError(f"{text!r} has non-zero host bits")
        return cls(value, length)

    @classmethod
    def from_bits(cls, bits: str) -> "Prefix":
        """Build a prefix from a bit string such as ``"100"`` or ``"100*"``.

        A single trailing ``*`` (the TCAM "don't care" tail) is accepted and
        ignored, which lets the paper's figures (``p = 1*``) be written
        verbatim in tests and examples.
        """
        if bits.endswith("*"):
            bits = bits[:-1]
        if any(ch not in "01" for ch in bits):
            raise PrefixError(f"bit string {bits!r} contains non-binary characters")
        length = len(bits)
        if length > ADDRESS_WIDTH:
            raise PrefixError(f"bit string longer than {ADDRESS_WIDTH} bits")
        value = int(bits, 2) if bits else 0
        return cls(value, length)

    @classmethod
    def from_network(cls, network: int, length: int) -> "Prefix":
        """Build from a full 32-bit network address and a mask length."""
        if not 0 <= network < ADDRESS_SPACE:
            raise PrefixError(f"network {network:#x} outside the address space")
        value = network >> (ADDRESS_WIDTH - length) if length else 0
        if length and (value << (ADDRESS_WIDTH - length)) != network:
            raise PrefixError("network has non-zero host bits")
        return cls(value, length)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def value(self) -> int:
        """The ``length`` leading bits, right aligned."""
        return self._value

    @property
    def length(self) -> int:
        """The mask length in bits."""
        return self._length

    @property
    def network(self) -> int:
        """The lowest address covered, as a 32-bit integer."""
        if self._length == 0:
            return 0
        return self._value << (ADDRESS_WIDTH - self._length)

    @property
    def broadcast(self) -> int:
        """The highest address covered, as a 32-bit integer."""
        return self.network | ((1 << (ADDRESS_WIDTH - self._length)) - 1)

    @property
    def size(self) -> int:
        """Number of addresses covered."""
        return 1 << (ADDRESS_WIDTH - self._length)

    def bits(self) -> str:
        """The prefix as a bit string (possibly empty for the root)."""
        if self._length == 0:
            return ""
        return format(self._value, f"0{self._length}b")

    # ------------------------------------------------------------------
    # Set relations
    # ------------------------------------------------------------------

    def contains_address(self, address: int) -> bool:
        """True when ``address`` (32-bit int) falls inside this prefix."""
        if self._length == 0:
            return 0 <= address < ADDRESS_SPACE
        return (address >> (ADDRESS_WIDTH - self._length)) == self._value

    def contains(self, other: "Prefix") -> bool:
        """True when ``other`` is equal to or more specific than this prefix."""
        if other._length < self._length:
            return False
        return (other._value >> (other._length - self._length)) == self._value

    def overlaps(self, other: "Prefix") -> bool:
        """True when the two prefixes share at least one address."""
        return self.contains(other) or other.contains(self)

    def is_disjoint(self, other: "Prefix") -> bool:
        """True when the two prefixes share no address."""
        return not self.overlaps(other)

    # ------------------------------------------------------------------
    # Trie navigation
    # ------------------------------------------------------------------

    def child(self, bit: int) -> "Prefix":
        """The one-bit-longer prefix obtained by appending ``bit``."""
        if bit not in (0, 1):
            raise PrefixError(f"bit must be 0 or 1, got {bit}")
        if self._length >= ADDRESS_WIDTH:
            raise PrefixError("cannot extend a host prefix")
        return Prefix((self._value << 1) | bit, self._length + 1)

    def parent(self) -> "Prefix":
        """The one-bit-shorter covering prefix."""
        if self._length == 0:
            raise PrefixError("the root prefix has no parent")
        return Prefix(self._value >> 1, self._length - 1)

    def sibling(self) -> "Prefix":
        """The other child of this prefix's parent."""
        if self._length == 0:
            raise PrefixError("the root prefix has no sibling")
        return Prefix(self._value ^ 1, self._length)

    def bit_at(self, position: int) -> int:
        """The bit at 0-based ``position`` from the most significant end."""
        if not 0 <= position < self._length:
            raise PrefixError(f"bit position {position} outside prefix of length {self._length}")
        return (self._value >> (self._length - 1 - position)) & 1

    def walk_bits(self) -> Iterator[int]:
        """Yield the prefix bits from most to least significant."""
        for position in range(self._length):
            yield (self._value >> (self._length - 1 - position)) & 1

    def iter_subprefixes(self, length: int) -> Iterator["Prefix"]:
        """Yield every prefix of exactly ``length`` bits covered by this one."""
        if length < self._length:
            raise PrefixError("target length shorter than the prefix itself")
        extra = length - self._length
        base = self._value << extra
        for tail in range(1 << extra):
            yield Prefix(base | tail, length)

    # ------------------------------------------------------------------
    # TCAM view
    # ------------------------------------------------------------------

    def ternary(self) -> str:
        """The 32-character ternary TCAM pattern (``0``/``1``/``*``)."""
        return self.bits() + "*" * (ADDRESS_WIDTH - self._length)

    def matches(self, address: int) -> bool:
        """Alias of :meth:`contains_address` with TCAM terminology."""
        return self.contains_address(address)

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------

    def key(self) -> Tuple[int, int]:
        """A plain tuple key ``(length, value)``, handy for sorting."""
        return (self._length, self._value)

    def sort_key(self) -> Tuple[int, int]:
        """Key ordering prefixes by position in an inorder trie walk.

        Two disjoint prefixes compare by their address ranges; a covering
        prefix sorts before anything it contains.  This is the order CLUE's
        even partitioning uses.
        """
        return (self.network, self._length)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return self._value == other._value and self._length == other._length

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Prefix") -> bool:
        return self.sort_key() < other.sort_key()

    def __le__(self, other: "Prefix") -> bool:
        return self.sort_key() <= other.sort_key()

    def __repr__(self) -> str:
        return f"Prefix('{self}')"

    def __str__(self) -> str:
        return f"{format_address(self.network)}/{self._length}"


# ----------------------------------------------------------------------
# Address helpers
# ----------------------------------------------------------------------


def parse_address(text: str) -> int:
    """Parse dotted-quad notation into a 32-bit integer."""
    parts = text.strip().split(".")
    if len(parts) != _OCTET_COUNT:
        raise PrefixError(f"malformed address {text!r}")
    address = 0
    for part in parts:
        try:
            octet = int(part)
        except ValueError as exc:
            raise PrefixError(f"malformed address {text!r}") from exc
        if not 0 <= octet <= 255:
            raise PrefixError(f"octet {octet} out of range in {text!r}")
        address = (address << 8) | octet
    return address


def format_address(address: int) -> str:
    """Format a 32-bit integer as dotted-quad notation."""
    if not 0 <= address < ADDRESS_SPACE:
        raise PrefixError(f"address {address:#x} outside the address space")
    return ".".join(str((address >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def common_prefix(first: Prefix, second: Prefix) -> Prefix:
    """The longest prefix containing both arguments."""
    limit = min(first.length, second.length)
    a = first.value >> (first.length - limit) if limit else 0
    b = second.value >> (second.length - limit) if limit else 0
    diff = a ^ b
    shared = limit - diff.bit_length()
    return Prefix(a >> (limit - shared) if shared else 0, shared)
