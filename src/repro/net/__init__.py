"""IP address and prefix primitives."""

from repro.net.prefix import (
    ADDRESS_SPACE,
    ADDRESS_WIDTH,
    Prefix,
    PrefixError,
    common_prefix,
    format_address,
    parse_address,
)

__all__ = [
    "ADDRESS_SPACE",
    "ADDRESS_WIDTH",
    "Prefix",
    "PrefixError",
    "common_prefix",
    "format_address",
    "parse_address",
]
