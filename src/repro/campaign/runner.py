"""Campaign execution: one executor per topology, one oracle layer for all.

Every executor follows the same phase discipline, because two of the
oracles are order-sensitive:

1. **Update phase** — the workload profile's update stream is driven
   through the topology's *acked* entry point (journaled offers for
   durable cells), each accepted update mirrored onto the reference
   trie, then the cell is quiesced (drain/flush) so nothing is left
   half-applied in a queue.
2. **Replay checkpoint** — durable cells capture the live state
   fingerprint and the fingerprint of a clean restore over a *copy* of
   the state directory, *before any traffic*: lookups legitimately
   mutate the DRed LRU outside the journal, so this is the last moment
   byte-identical replay is a valid demand.
3. **Traffic phase** — the workload profile's packet stream runs
   through the data path, advancing engine cycles so the armed fault
   schedule actually fires.
4. **Heal (optional)** — profiles modelling a box with its background
   audit on (``self_heal``) run one ``verify_chips`` repair pass.
5. **Judgement** — the shared oracle layer (:mod:`repro.campaign.oracles`).

A cell that raises mid-flight is *captured*, not propagated: its result
carries the error and the campaign moves on — CI wants every cell's
verdict, not the first traceback.
"""

from __future__ import annotations

import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.campaign.oracles import (
    FAIL,
    PASS,
    SKIP,
    CellEvidence,
    OracleVerdict,
    judge,
)
from repro.campaign.spec import Cell, CampaignSpec
from repro.core.config import SystemConfig
from repro.core.system import ClueSystem
from repro.engine.simulator import EngineConfig
from repro.faults.profiles import FaultProfile, fault_profile
from repro.net.prefix import Prefix
from repro.persist.manager import PersistenceManager
from repro.trie.trie import BinaryTrie
from repro.workload.profiles import (
    FileWorkload,
    WorkloadProfile,
    file_workload,
    is_file_workload,
    workload_profile,
)
from repro.workload.ribgen import RibParameters, generate_rib
from repro.workload.updategen import UpdateKind, UpdateMessage

Route = Tuple[Prefix, int]


@dataclass
class CellResult:
    """One cell's verdict plus everything needed to reproduce it."""

    cell_id: str
    ok: bool
    verdicts: List[OracleVerdict] = field(default_factory=list)
    error: str = ""
    duration_s: float = 0.0
    acked_updates: int = 0
    shed_updates: int = 0
    packets: int = 0
    repro: str = ""
    #: Per-range ``{shard, range, lookup_hits, update_hits}`` rows.
    shard_loads: List[Dict[str, object]] = field(default_factory=list)
    #: Source path + SHA-256 per trace kind, for ``file:`` workloads.
    workload_provenance: Optional[Dict[str, Dict[str, object]]] = None

    @property
    def failed_oracles(self) -> List[str]:
        return [v.name for v in self.verdicts if v.status == FAIL]

    def as_dict(self) -> Dict[str, object]:
        return {
            "cell": self.cell_id,
            "ok": self.ok,
            "oracles": [v.as_dict() for v in self.verdicts],
            "failed_oracles": self.failed_oracles,
            "error": self.error,
            "duration_s": round(self.duration_s, 3),
            "acked_updates": self.acked_updates,
            "shed_updates": self.shed_updates,
            "packets": self.packets,
            "repro": self.repro,
            "shard_loads": self.shard_loads,
            "workload_provenance": self.workload_provenance,
        }


@dataclass
class CampaignResult:
    """Everything one campaign run produced."""

    name: str
    spec_path: str
    results: List[CellResult] = field(default_factory=list)
    excluded: List[Tuple[str, str]] = field(default_factory=list)
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def failed(self) -> List[CellResult]:
        return [result for result in self.results if not result.ok]

    def as_dict(self) -> Dict[str, object]:
        return {
            "campaign": self.name,
            "spec": self.spec_path,
            "ok": self.ok,
            "cells": len(self.results),
            "failed_cells": len(self.failed),
            "excluded": [
                {"cell": cell_id, "reason": reason}
                for cell_id, reason in self.excluded
            ],
            "duration_s": round(self.duration_s, 3),
            "results": [result.as_dict() for result in self.results],
        }


# -- shared cell machinery -----------------------------------------------


class _CellContext:
    """Derived per-cell state every executor starts from."""

    def __init__(self, cell: Cell) -> None:
        self.cell = cell
        self.fault: FaultProfile = fault_profile(cell.fault)
        self.provenance: Optional[Dict[str, Dict[str, object]]] = None
        self._file_packets: Optional[List[int]] = None
        if is_file_workload(cell.workload):
            # File-sourced cell: the table (and whatever traces exist)
            # come from ingested files; the ``fig15`` generators fill
            # any gaps over the file-sourced table.  Updates pass
            # through the consistency filter so an arbitrary real trace
            # can never desync the reference trie.
            source: FileWorkload = file_workload(cell.workload)
            self.workload: WorkloadProfile = workload_profile("fig15")
            self.routes: List[Route] = source.load_routes()
            if not self.routes:
                raise ValueError(
                    f"{source.table_path}: file workload table is empty"
                )
            self.provenance = source.provenance()
            file_updates = source.load_updates()
            if file_updates is None:
                self.updates: List[UpdateMessage] = (
                    self.workload.take_updates(
                        self.routes, cell.seed + 1, cell.budget.updates
                    )
                )
            else:
                from repro.ingest.normalize import filter_consistent_updates

                self.updates = filter_consistent_updates(
                    self.routes, file_updates
                )[: cell.budget.updates]
            file_packets = source.load_packets()
            if file_packets:
                self._file_packets = file_packets
        else:
            self.workload = workload_profile(cell.workload)
            self.routes = generate_rib(
                cell.seed, RibParameters(size=cell.budget.rib_size)
            )
            self.updates = self.workload.take_updates(
                self.routes, cell.seed + 1, cell.budget.updates
            )
        self.reference = BinaryTrie.from_routes(self.routes)
        self.batches = max(
            1, (len(self.updates) + cell.budget.batch_size - 1)
            // cell.budget.batch_size,
        )
        self.schedule = self.fault.build(
            cell.seed, cell.budget.chips, self.batches
        ).validate(cell.budget.chips)
        self.acked_updates = 0
        self.shed_updates = 0
        #: Prefixes of acked updates, newest ack wins (for spot checks).
        self._acked: Dict[Prefix, Optional[int]] = {}

    def system_config(self) -> SystemConfig:
        budget = self.cell.budget
        return SystemConfig(
            engine=EngineConfig(
                chip_count=budget.chips,
                dred_capacity=128,
                queue_capacity=128,
                lookup_backend=self.cell.backend,
            ),
            update_queue_capacity=1024,
        )

    def update_batches(self) -> List[List[UpdateMessage]]:
        size = self.cell.budget.batch_size
        return [
            self.updates[start : start + size]
            for start in range(0, len(self.updates), size)
        ]

    def mirror(self, message: UpdateMessage) -> None:
        """One *acked* update: apply to the reference, remember for spot checks."""
        if message.kind is UpdateKind.ANNOUNCE:
            assert message.next_hop is not None
            self.reference.insert(message.prefix, message.next_hop)
            self._acked[message.prefix] = message.next_hop
        else:
            self.reference.remove_route(message.prefix)
            self._acked[message.prefix] = None
        self.acked_updates += 1

    def acked_prefixes(self, cap: int = 128) -> List[Tuple[Prefix, Optional[int]]]:
        items = list(self._acked.items())
        return items[-cap:]

    def traffic(self) -> List[int]:
        if self._file_packets is not None:
            count = self.cell.budget.packets
            trace = self._file_packets
            return [trace[index % len(trace)] for index in range(count)]
        return self.workload.traffic_generator(
            self.routes, self.cell.seed + 2
        ).take(self.cell.budget.packets)


def _capture_replay(
    manager: PersistenceManager, state_dir: Path, scratch: Path
) -> Tuple[str, str]:
    """(live, replayed-from-copy) fingerprints at the quiesce point."""
    live = manager.system.state_fingerprint()
    manager.sync()
    if scratch.exists():
        shutil.rmtree(scratch)
    shutil.copytree(state_dir, scratch)
    restored, _report = PersistenceManager.restore(scratch)
    try:
        replayed = restored.system.state_fingerprint()
    finally:
        restored.close()
    return live, replayed


# -- in-process executor -------------------------------------------------


def _run_inproc(cell: Cell, workdir: Path) -> CellEvidence:
    """``inproc`` and ``inproc-durable``: one bare ClueSystem."""
    ctx = _CellContext(cell)
    system = ClueSystem(ctx.routes, ctx.system_config())
    manager: Optional[PersistenceManager] = None
    state_dir = workdir / "state"
    if cell.durable:
        manager = PersistenceManager(
            system,
            state_dir,
            checkpoint_every=max(8, len(ctx.updates) // 2),
        )
    if ctx.schedule.events:
        system.attach_faults(ctx.schedule)

    # Phase 1: acked updates, mirrored per accepted offer, then quiesce.
    offer = manager.offer_update if manager is not None else system.offer_update
    pump = manager.pump_updates if manager is not None else system.pump_updates
    for batch in ctx.update_batches():
        for message in batch:
            if offer(message):
                ctx.mirror(message)
            else:
                ctx.shed_updates += 1
        pump(max(1, len(batch)))
    if manager is not None:
        manager.drain_updates()
    else:
        system.drain_updates()

    # Phase 2: replay checkpoint, strictly before traffic.
    replay = None
    if manager is not None:
        replay = _capture_replay(manager, state_dir, workdir / "replay-copy")

    # Phase 3: traffic through the data path (fault schedule fires here).
    packets = ctx.traffic()
    for start in range(0, len(packets), 256):
        system.process_lookups(packets[start : start + 256])

    # Phase 4: optional healing audit (models the PR 1 background repair).
    if ctx.fault.self_heal:
        system.verify_chips(repair=True)

    storage_audits = []
    if manager is not None:
        storage_audits.append(manager.verify_storage())
        manager.close()
    return CellEvidence(
        cell=cell,
        reference=ctx.reference,
        provenance=ctx.provenance,
        lookup_fn=system.process_lookups,
        systems=[system],
        acked_prefixes=ctx.acked_prefixes(),
        acked_updates=ctx.acked_updates,
        shed_updates=ctx.shed_updates,
        external_updates=ctx.fault.external_updates,
        replay=replay,
        storage_audits=storage_audits,
    )


# -- in-process network serve executor -----------------------------------


def _run_serve(cell: Cell, workdir: Path, shard_count: int) -> CellEvidence:
    """``serve-1``/``serve-2``: a real TCP server over a journaled ShardSet."""
    from repro.serve.client import ServeClient
    from repro.serve.server import ServeConfig, ServerThread
    from repro.serve.shard import ShardSet

    ctx = _CellContext(cell)
    state_dir = workdir / "state"
    shards = ShardSet.build(
        ctx.routes,
        shard_count=shard_count,
        config=ctx.system_config(),
        journal_dir=state_dir,
    )
    engine_schedule = ctx.schedule.engine_only()
    if engine_schedule.events:
        for worker in shards.workers:
            worker.system.attach_faults(engine_schedule)

    evidence_systems = [worker.system for worker in shards.workers]
    with ServerThread(shards, ServeConfig()) as thread:
        client = ServeClient("127.0.0.1", thread.server.port, timeout=30.0)
        try:
            # Phase 1: acked update batches over the wire, then MSG_FLUSH.
            for batch in ctx.update_batches():
                ack = client.update(batch)
                if ack.shed:
                    # Acceptance is aggregated over the wire, so a shed
                    # makes the acked set ambiguous; budgets are sized
                    # to keep the bounded queue from ever shedding.
                    raise RuntimeError(
                        f"update queue shed {ack.shed} of {len(batch)}; "
                        f"shrink budget.batch_size or updates"
                    )
                for message in batch:
                    ctx.mirror(message)
            client.flush()

            # Phase 2: replay checkpoint before any traffic.
            live = client.fingerprint()
            scratch = workdir / "replay-copy"
            if scratch.exists():
                shutil.rmtree(scratch)
            shutil.copytree(state_dir, scratch)
            restored, _reports = ShardSet.restore(scratch)
            try:
                replayed = restored.fingerprint()
            finally:
                for worker in restored.workers:
                    if worker.manager is not None:
                        worker.manager.close()
            replay = (live, replayed)

            # Phase 3: traffic over the wire.
            packets = ctx.traffic()
            for start in range(0, len(packets), 256):
                client.lookup(packets[start : start + 256])

            # Phase 4: healing audit, directly on the in-process shards.
            if ctx.fault.self_heal:
                for worker in shards.workers:
                    worker.system.verify_chips(repair=True)

            from repro.serve.chaos import shard_load_rows

            # Judgement needs the live server: collect the differential
            # evidence now, against the network data path.
            evidence = CellEvidence(
                cell=cell,
                reference=ctx.reference,
                provenance=ctx.provenance,
                lookup_fn=client.lookup,
                systems=evidence_systems,
                acked_prefixes=ctx.acked_prefixes(),
                acked_updates=ctx.acked_updates,
                shed_updates=ctx.shed_updates,
                external_updates=ctx.fault.external_updates,
                replay=replay,
                shard_loads=shard_load_rows(shards.stats()),
            )
            evidence.prechecked = {
                name: verdict
                for name, verdict in (
                    ("zero-acked-loss", _precheck(evidence, "zero-acked-loss")),
                    ("lpm-equivalence", _precheck(evidence, "lpm-equivalence")),
                )
            }
        finally:
            client.close()
    # The drain (ServerThread exit) checkpointed and closed each journal;
    # audit the final on-disk state it left behind.
    evidence.storage_audits = [
        worker.manager.verify_storage()
        for worker in shards.workers
        if worker.manager is not None
    ]
    evidence.lookup_fn = None  # the server is gone; prechecks stand in
    return evidence


def _precheck(evidence: CellEvidence, oracle_name: str) -> OracleVerdict:
    """Run one network-dependent oracle while the server is still up."""
    from repro.campaign import oracles as oracle_module

    return oracle_module._ORACLES[oracle_name](evidence)


# -- multi-process serve executor -----------------------------------------


def _run_serve_procs(cell: Cell, workdir: Path) -> CellEvidence:
    """``serve-2proc``: two shard worker *processes* behind a front.

    The same phase discipline as ``serve-1``/``serve-2``, but every
    engine lives in its own worker process (``serve --workers
    processes``): updates and traffic travel client → parent front →
    worker, the engine fault schedule rides in via ``--faults``, and the
    drain fans out so each worker checkpoints and exits before the
    parent does.  Engine-internal oracles (DRed exclusion, chip/state
    audits) SKIP like the other subprocess topologies — the internals
    are behind the wire — while replay-fingerprint and storage-audit
    run for real against the shared journal directory the workers left
    behind.
    """
    from repro.serve.procs import ProcessFront, ProcessSupervisor, WorkerSpec
    from repro.serve.client import ServeClient
    from repro.serve.router import plan_shards
    from repro.serve.server import ServeConfig, ServerThread
    from repro.serve.shard import ShardSet
    from repro.workload.traces import save_faults, save_table

    ctx = _CellContext(cell)
    budget = cell.budget
    state_dir = workdir / "state"
    table_path = workdir / "table.txt"
    save_table(ctx.routes, table_path)
    faults_path: Optional[Path] = None
    engine_schedule = ctx.schedule.engine_only()
    if engine_schedule.events:
        faults_path = workdir / "faults.json"
        save_faults(engine_schedule, faults_path)
    config = ctx.system_config()
    plan = plan_shards(ctx.routes, 2, mode=config.compression_mode)
    spec = WorkerSpec(
        shard_count=2,
        table=str(table_path),
        journal=str(state_dir),
        chips=budget.chips,
        dred=config.engine.dred_capacity,
        queue=config.engine.queue_capacity,
        update_queue=config.update_queue_capacity,
        backend=cell.backend,
        faults=str(faults_path) if faults_path is not None else None,
    )
    supervisor = ProcessSupervisor(spec, plan.router.boundaries)
    front = ProcessFront(supervisor, ServeConfig())
    sub_detail = "engine internals live in the worker processes"
    with ServerThread(server=front) as thread:
        client = ServeClient("127.0.0.1", thread.server.port, timeout=30.0)
        try:
            # Phase 1: acked update batches over the wire, then MSG_FLUSH.
            for batch in ctx.update_batches():
                ack = client.update(batch)
                if ack.shed:
                    raise RuntimeError(
                        f"update queue shed {ack.shed} of {len(batch)}; "
                        f"shrink budget.batch_size or updates"
                    )
                for message in batch:
                    ctx.mirror(message)
            client.flush()

            # Phase 2: replay checkpoint before any traffic — the live
            # cross-process fingerprint must equal a clean single-process
            # restore of a copy of the shared journal directory.
            live = client.fingerprint()
            scratch = workdir / "replay-copy"
            if scratch.exists():
                shutil.rmtree(scratch)
            shutil.copytree(state_dir, scratch)
            restored, _reports = ShardSet.restore(scratch)
            try:
                replayed = restored.fingerprint()
            finally:
                for worker in restored.workers:
                    if worker.manager is not None:
                        worker.manager.close()
            replay = (live, replayed)

            # Phase 3: traffic over the wire (worker faults fire here).
            packets = ctx.traffic()
            for start in range(0, len(packets), 256):
                client.lookup(packets[start : start + 256])

            from repro.serve.chaos import shard_load_rows

            # Judgement needs the live cluster: collect the differential
            # evidence now.  The per-range hit counters arrive merged
            # from the worker STATS snapshots — the same rows the
            # reshard policy reads.
            evidence = CellEvidence(
                cell=cell,
                reference=ctx.reference,
                provenance=ctx.provenance,
                lookup_fn=client.lookup,
                acked_prefixes=ctx.acked_prefixes(),
                acked_updates=ctx.acked_updates,
                shed_updates=ctx.shed_updates,
                external_updates=ctx.fault.external_updates,
                replay=replay,
                shard_loads=shard_load_rows(client.stats()["shards"]),
            )
            evidence.prechecked = {
                "zero-acked-loss": _precheck(evidence, "zero-acked-loss"),
                "lpm-equivalence": _precheck(evidence, "lpm-equivalence"),
                "dred-exclusion": OracleVerdict(
                    "dred-exclusion", SKIP, sub_detail
                ),
                "chip-audit": OracleVerdict("chip-audit", SKIP, sub_detail),
                "state-audit": OracleVerdict("state-audit", SKIP, sub_detail),
            }
        finally:
            client.close()
    # The drain (ServerThread exit) fanned out to every worker: each
    # flushed, checkpointed and closed its journal before exiting.
    # Audit the final on-disk state the worker processes left behind.
    audits = []
    for index in range(2):
        manager, _report = PersistenceManager.restore(
            state_dir / f"shard-{index}"
        )
        try:
            audits.append(manager.verify_storage())
        finally:
            manager.close()
    evidence.storage_audits = audits
    evidence.lookup_fn = None  # the cluster is gone; prechecks stand in
    return evidence


# -- subprocess HA executor ----------------------------------------------


def _run_ha(cell: Cell, workdir: Path) -> CellEvidence:
    """``ha``: primary + backup subprocesses, SIGKILL mid-drive."""
    from repro.serve.chaos import ChaosConfig, ChaosError, run_cell

    ctx = _CellContext(cell)
    budget = cell.budget
    config = ChaosConfig(
        seed=cell.seed,
        rib_size=budget.rib_size,
        shards=2,
        chips=budget.chips,
        batches=ctx.batches,
        batch_size=budget.batch_size,
        sample_addresses=budget.sample_addresses,
        workdir=workdir,
    )
    # The chaos cluster regenerates the identical RIB from config.seed;
    # hand it the workload profile's update stream over those routes.
    generator = ctx.workload.update_generator(ctx.routes, cell.seed + 1)
    try:
        result = run_cell(
            config,
            workdir,
            cell.id.replace("/", "_"),
            ctx.schedule,
            generator=generator,
            backend=cell.backend,
        )
    except ChaosError as exc:
        raise RuntimeError(str(exc)) from exc
    detail = (
        f"{result.acked_updates} acked updates across "
        f"{result.failovers} failover(s)"
    )
    sub_detail = "engine internals died with the killed process"
    prechecked = {
        "zero-acked-loss": OracleVerdict(
            "zero-acked-loss",
            PASS,
            f"survivor serves every acked update ({detail})",
        ),
        "lpm-equivalence": OracleVerdict(
            "lpm-equivalence",
            PASS,
            f"{result.checked_addresses} sampled addresses match the "
            f"reference trie ({result.skipped_addresses} indeterminate "
            f"skipped)",
        ),
        "replay-fingerprint": OracleVerdict(
            "replay-fingerprint",
            PASS if result.fingerprint_match else FAIL,
            "survivor fingerprint equals clean replay of its journal"
            if result.fingerprint_match
            else "survivor fingerprint diverged from clean replay",
        ),
        "dred-exclusion": OracleVerdict("dred-exclusion", SKIP, sub_detail),
        "chip-audit": OracleVerdict("chip-audit", SKIP, sub_detail),
        "state-audit": OracleVerdict("state-audit", SKIP, sub_detail),
        "storage-audit": OracleVerdict(
            "storage-audit",
            PASS,
            "survivor's epoch journal restored cleanly (replay check)",
        ),
    }
    evidence = CellEvidence(
        cell=cell,
        reference=ctx.reference,
        provenance=ctx.provenance,
        acked_updates=result.acked_updates,
        prechecked=prechecked,
    )
    evidence.shed_updates = 0
    return evidence


# -- subprocess live-resharding executor ---------------------------------


def _run_reshard(cell: Cell, workdir: Path) -> CellEvidence:
    """``reshard``: split a shard under load, SIGKILL mid-migration.

    The cell seed picks which migration stage eats the SIGKILL, so a
    matrix with a few reshard cells covers rollback (``copy``,
    ``catchup``) and roll-forward (``cutover``) deterministically.
    The drill itself (:func:`repro.serve.chaos.run_reshard_cell`)
    asserts the three standing invariants across the topology-epoch
    boundary plus the post-split topology; like ``ha``, the verdicts
    arrive prechecked because the evidence lives in subprocesses.
    """
    from repro.serve.chaos import (
        RESHARD_KILL_STAGES,
        ChaosConfig,
        ChaosError,
        run_reshard_cell,
    )

    ctx = _CellContext(cell)
    budget = cell.budget
    kill_stage = RESHARD_KILL_STAGES[cell.seed % len(RESHARD_KILL_STAGES)]
    config = ChaosConfig(
        seed=cell.seed,
        rib_size=budget.rib_size,
        shards=2,
        chips=budget.chips,
        batches=ctx.batches,
        batch_size=budget.batch_size,
        sample_addresses=budget.sample_addresses,
        workdir=workdir,
    )
    generator = ctx.workload.update_generator(ctx.routes, cell.seed + 1)
    try:
        result = run_reshard_cell(
            config,
            workdir,
            cell.id.replace("/", "_"),
            kill_stage,
            generator=generator,
            backend=cell.backend,
        )
    except ChaosError as exc:
        raise RuntimeError(str(exc)) from exc
    sub_detail = "engine internals died with the killed process"
    prechecked = {
        "zero-acked-loss": OracleVerdict(
            "zero-acked-loss",
            PASS,
            f"post-split server serves every acked update "
            f"({result.acked_updates} acked across the {kill_stage!r}-stage "
            f"kill)",
        ),
        "lpm-equivalence": OracleVerdict(
            "lpm-equivalence",
            PASS,
            f"{result.checked_addresses} sampled addresses match the "
            f"reference trie on the post-migration topology "
            f"({result.skipped_addresses} indeterminate skipped)",
        ),
        "replay-fingerprint": OracleVerdict(
            "replay-fingerprint",
            PASS if result.fingerprint_match else FAIL,
            "post-migration fingerprint equals clean replay across the "
            "epoch boundary"
            if result.fingerprint_match
            else "post-migration fingerprint diverged from clean replay",
        ),
        "dred-exclusion": OracleVerdict("dred-exclusion", SKIP, sub_detail),
        "chip-audit": OracleVerdict("chip-audit", SKIP, sub_detail),
        "state-audit": OracleVerdict("state-audit", SKIP, sub_detail),
        "storage-audit": OracleVerdict(
            "storage-audit",
            PASS,
            "epoch-resolved journal restored cleanly (replay check)",
        ),
    }
    evidence = CellEvidence(
        cell=cell,
        reference=ctx.reference,
        provenance=ctx.provenance,
        acked_updates=result.acked_updates,
        prechecked=prechecked,
        shard_loads=result.shard_loads,
    )
    evidence.shed_updates = 0
    return evidence


# -- campaign driver -----------------------------------------------------


_EXECUTORS: Dict[str, Callable[[Cell, Path], CellEvidence]] = {
    "inproc": _run_inproc,
    "inproc-durable": _run_inproc,
    "serve-1": lambda cell, workdir: _run_serve(cell, workdir, 1),
    "serve-2": lambda cell, workdir: _run_serve(cell, workdir, 2),
    "serve-2proc": _run_serve_procs,
    "ha": _run_ha,
    "reshard": _run_reshard,
}


def execute_cell(
    cell: Cell, workdir: Path, spec_path: Optional[str] = None
) -> CellResult:
    """Run one cell end to end; never raises — errors land in the result."""
    started = time.monotonic()
    result = CellResult(
        cell_id=cell.id, ok=False, repro=cell.repro_command(spec_path)
    )
    cell_dir = workdir / cell.id.replace("/", "_")
    cell_dir.mkdir(parents=True, exist_ok=True)
    try:
        evidence = _EXECUTORS[cell.topology](cell, cell_dir)
        result.verdicts = judge(evidence)
        result.acked_updates = evidence.acked_updates
        result.shed_updates = evidence.shed_updates
        result.packets = cell.budget.packets
        result.shard_loads = list(evidence.shard_loads)
        result.workload_provenance = evidence.provenance
        result.ok = all(verdict.ok for verdict in result.verdicts)
    except Exception as exc:  # noqa: BLE001 - campaign must not abort
        result.error = f"{type(exc).__name__}: {exc}"
        result.ok = False
    result.duration_s = time.monotonic() - started
    return result


def run_campaign(
    spec: CampaignSpec,
    spec_path: Optional[str] = None,
    subset: Optional[str] = None,
    cells: Optional[Sequence[str]] = None,
    max_cells: Optional[int] = None,
    workdir: Optional[Path] = None,
    log: Callable[[str], None] = print,
) -> CampaignResult:
    """Expand the spec and execute every selected cell."""
    import tempfile

    selected, excluded = spec.expand(
        subset=subset, cells=cells, max_cells=max_cells
    )
    owns_workdir = workdir is None
    root = Path(
        workdir
        if workdir is not None
        else tempfile.mkdtemp(prefix="repro-campaign-")
    )
    campaign = CampaignResult(
        name=spec.name, spec_path=spec_path or "", excluded=excluded
    )
    started = time.monotonic()
    try:
        for index, cell in enumerate(selected, start=1):
            log(f"campaign: [{index}/{len(selected)}] {cell.id} ...")
            result = execute_cell(cell, root, spec_path)
            verdict = "ok" if result.ok else "FAIL"
            names = ", ".join(result.failed_oracles) or result.error
            suffix = f" ({names})" if not result.ok else ""
            log(
                f"campaign: [{index}/{len(selected)}] {cell.id}: "
                f"{verdict}{suffix} [{result.duration_s:.1f}s]"
            )
            campaign.results.append(result)
    finally:
        campaign.duration_s = time.monotonic() - started
        if owns_workdir:
            shutil.rmtree(root, ignore_errors=True)
    return campaign
