"""Declarative scenario campaigns: workload × fault × backend × topology.

A campaign spec (TOML or JSON) names points on four axes; the runner
expands the cross-product, drops structurally impossible cells with
recorded reasons, executes each cell through the real simulate / serve /
chaos entry points, and judges every cell against the shared
invariant-oracle layer.  See DESIGN.md §13 and EXPERIMENTS.md.
"""

from repro.campaign.oracles import (
    FAIL,
    ORACLE_NAMES,
    PASS,
    SKIP,
    CellEvidence,
    OracleVerdict,
    judge,
)
from repro.campaign.report import render_markdown, write_json, write_markdown
from repro.campaign.runner import (
    CampaignResult,
    CellResult,
    execute_cell,
    run_campaign,
)
from repro.campaign.spec import (
    DURABLE_TOPOLOGIES,
    TOPOLOGIES,
    CampaignSpec,
    Cell,
    CellBudget,
    SpecError,
    load_spec,
    spec_from_dict,
)

__all__ = [
    "CampaignResult",
    "CampaignSpec",
    "Cell",
    "CellBudget",
    "CellEvidence",
    "CellResult",
    "DURABLE_TOPOLOGIES",
    "FAIL",
    "ORACLE_NAMES",
    "OracleVerdict",
    "PASS",
    "SKIP",
    "SpecError",
    "TOPOLOGIES",
    "execute_cell",
    "judge",
    "load_spec",
    "render_markdown",
    "run_campaign",
    "spec_from_dict",
    "write_json",
    "write_markdown",
]
