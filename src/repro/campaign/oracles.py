"""The shared invariant-oracle layer (DESIGN.md §13).

Every campaign cell, whatever its topology, is judged by the same seven
oracles.  An oracle looks at one :class:`CellEvidence` — the facts the
executor gathered while driving the cell — and returns a
:class:`OracleVerdict`: *pass*, *fail* (with the concrete witness), or
*skip* (with the applicability rule that makes the check meaningless for
this cell, e.g. replay verification on a topology that keeps no
journal).  A skip is not a weaker pass: the report shows it, so a matrix
that silently never exercises an invariant is visible at a glance.

Ordering contract the executors uphold: replay fingerprints are captured
at the post-update quiesce point *before* any traffic or verification
lookup runs, because lookups legitimately mutate the DRed LRU outside
the journal; and differential oracles (reference-trie comparisons) only
apply when every table mutation flowed through the acked update stream
— fault profiles that inject updates behind the driver's back
(``external_updates``) switch them to skip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.campaign.spec import Cell
from repro.net.prefix import Prefix
from repro.persist.manager import StorageAudit
from repro.trie.trie import BinaryTrie
from repro.workload.trafficgen import TrafficGenerator

PASS = "pass"
FAIL = "fail"
SKIP = "skip"

#: Every oracle, in report order.
ORACLE_NAMES = (
    "zero-acked-loss",
    "lpm-equivalence",
    "replay-fingerprint",
    "dred-exclusion",
    "chip-audit",
    "state-audit",
    "storage-audit",
)


@dataclass(frozen=True)
class OracleVerdict:
    """One oracle's judgement of one cell."""

    name: str
    status: str  # pass | fail | skip
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status != FAIL

    def as_dict(self) -> Dict[str, str]:
        return {"name": self.name, "status": self.status, "detail": self.detail}


@dataclass
class CellEvidence:
    """What one executed cell left behind for the oracles to judge.

    ``systems`` holds the live per-shard :class:`ClueSystem` objects for
    in-process topologies (empty for subprocess HA cells, whose engine
    internals died with the processes).  ``lookup_fn`` is the cell's
    *data path* — ``process_lookups`` or a network client — never the
    control-plane trie, so chip-level corruption stays visible.
    ``reference`` mirrors the initial RIB plus exactly the acked update
    stream.  ``prechecked`` carries verdicts the executor itself had to
    establish mid-flight (e.g. the HA survivor checks inside the chaos
    cell); oracles with a precheck entry report it instead of
    re-deriving evidence that no longer exists.
    """

    cell: Cell
    reference: BinaryTrie
    lookup_fn: Optional[Callable[[Sequence[int]], List[Optional[int]]]] = None
    systems: List[object] = field(default_factory=list)
    acked_prefixes: List[Tuple[Prefix, Optional[int]]] = field(
        default_factory=list
    )
    acked_updates: int = 0
    shed_updates: int = 0
    external_updates: bool = False
    #: ``(live, replay)`` state fingerprints at the quiesce point.
    replay: Optional[Tuple[str, str]] = None
    storage_audits: List[StorageAudit] = field(default_factory=list)
    prechecked: Dict[str, OracleVerdict] = field(default_factory=dict)
    #: Per-range ``{shard, range, lookup_hits, update_hits}`` rows — the
    #: load accounting reshard decisions run on, surfaced in reports.
    shard_loads: List[Dict[str, object]] = field(default_factory=list)
    #: Source path + SHA-256 per trace kind when the cell ran a
    #: ``file:`` workload; ``None`` for synthetic workloads.
    provenance: Optional[Dict[str, Dict[str, object]]] = None


def judge(evidence: CellEvidence) -> List[OracleVerdict]:
    """Run every oracle; returns one verdict per oracle, in order."""
    verdicts = []
    for name in ORACLE_NAMES:
        if name in evidence.prechecked:
            verdicts.append(evidence.prechecked[name])
        else:
            verdicts.append(_ORACLES[name](evidence))
    return verdicts


# -- differential oracles ------------------------------------------------


def _skip_external(evidence: CellEvidence, name: str) -> Optional[OracleVerdict]:
    if evidence.external_updates:
        return OracleVerdict(
            name,
            SKIP,
            "fault profile injects updates outside the acked stream; "
            "the reference trie cannot mirror them",
        )
    if evidence.lookup_fn is None:
        return OracleVerdict(name, SKIP, "cell exposes no data path")
    return None

def zero_acked_loss(evidence: CellEvidence) -> OracleVerdict:
    """Every acked update is visible on the data path.

    Spot-checks the *prefixes of acked updates* directly: for each, an
    address inside the prefix must answer what the reference trie —
    which mirrors exactly the acked stream — answers.  A lost acked
    announce or a resurrected withdrawn route shows up here even if
    traffic-weighted sampling would never visit the prefix.
    """
    name = "zero-acked-loss"
    skip = _skip_external(evidence, name)
    if skip is not None:
        return skip
    if not evidence.acked_prefixes:
        return OracleVerdict(name, SKIP, "cell acked no updates")
    addresses = [prefix.network for prefix, _hop in evidence.acked_prefixes]
    actual = evidence.lookup_fn(addresses)
    checked = indeterminate = 0
    for (prefix, _hop), address, hop in zip(
        evidence.acked_prefixes, addresses, actual
    ):
        expected = evidence.reference.lookup(address)
        if expected is None:
            # Don't-care merging over-approximates: an address with no
            # route (e.g. under a withdrawn prefix nothing else covers)
            # may legitimately still answer — same carve-out as the
            # equivalence audit in repro.persist.audit.
            indeterminate += 1
            continue
        if hop != expected:
            return OracleVerdict(
                name,
                FAIL,
                f"acked update on {prefix}: address {address:#010x} "
                f"answers {hop}, reference says {expected}",
            )
        checked += 1
    return OracleVerdict(
        name,
        PASS,
        f"{checked} acked-update prefixes verified, {indeterminate} "
        f"indeterminate (uncovered space) "
        f"({evidence.acked_updates} acked, {evidence.shed_updates} shed)",
    )


def lpm_equivalence(evidence: CellEvidence) -> OracleVerdict:
    """Sampled data-path LPM answers equal the reference trie's."""
    name = "lpm-equivalence"
    skip = _skip_external(evidence, name)
    if skip is not None:
        return skip
    routes = list(evidence.reference.routes())
    if not routes:
        return OracleVerdict(name, SKIP, "reference table is empty")
    sampler = TrafficGenerator(routes, seed=evidence.cell.seed + 3)
    addresses = sampler.take(evidence.cell.budget.sample_addresses)
    checked = indeterminate = 0
    for start in range(0, len(addresses), 256):
        chunk = addresses[start : start + 256]
        hops = evidence.lookup_fn(chunk)
        for address, hop in zip(chunk, hops):
            expected = evidence.reference.lookup(address)
            if expected is None:
                # Uncovered space: don't-care merging may answer anyway.
                indeterminate += 1
                continue
            if hop != expected:
                return OracleVerdict(
                    name,
                    FAIL,
                    f"address {address:#010x} answers {hop}, "
                    f"reference trie says {expected}",
                )
            checked += 1
    return OracleVerdict(
        name,
        PASS,
        f"{checked} sampled addresses agree, {indeterminate} indeterminate",
    )


# -- durability oracles --------------------------------------------------


def replay_fingerprint(evidence: CellEvidence) -> OracleVerdict:
    """Journal replay reproduces the live state byte for byte."""
    name = "replay-fingerprint"
    if not evidence.cell.durable:
        return OracleVerdict(name, SKIP, "topology keeps no journal")
    if evidence.replay is None:
        return OracleVerdict(
            name, SKIP, "executor captured no replay fingerprints"
        )
    live, replayed = evidence.replay
    if live != replayed:
        return OracleVerdict(
            name,
            FAIL,
            f"live state {live[:16]}… != clean replay {replayed[:16]}… — "
            f"the journal does not reproduce the system",
        )
    return OracleVerdict(name, PASS, f"fingerprint {live[:16]}… reproduced")


def storage_audit(evidence: CellEvidence) -> OracleVerdict:
    """The on-disk journal + snapshots remain a valid recovery basis."""
    name = "storage-audit"
    if not evidence.cell.durable:
        return OracleVerdict(name, SKIP, "topology keeps no journal")
    if not evidence.storage_audits:
        return OracleVerdict(name, SKIP, "executor captured no storage audit")
    records = 0
    for index, audit in enumerate(evidence.storage_audits):
        if not audit.ok:
            return OracleVerdict(
                name, FAIL, f"shard {index}: {'; '.join(audit.problems)}"
            )
        records += audit.journal_records
    return OracleVerdict(
        name,
        PASS,
        f"{len(evidence.storage_audits)} state dir(s), "
        f"{records} journal records, all snapshots verified",
    )


# -- engine-internal oracles ---------------------------------------------


def _skip_no_systems(evidence: CellEvidence, name: str) -> Optional[OracleVerdict]:
    if not evidence.systems:
        return OracleVerdict(
            name,
            SKIP,
            "engine internals are not inspectable for this topology "
            "(subprocess cell)",
        )
    return None


def dred_exclusion(evidence: CellEvidence) -> OracleVerdict:
    """No chip's DRed caches a prefix homed on that same chip."""
    name = "dred-exclusion"
    skip = _skip_no_systems(evidence, name)
    if skip is not None:
        return skip
    for index, system in enumerate(evidence.systems):
        if not system.check_dred_exclusion():
            return OracleVerdict(
                name,
                FAIL,
                f"shard {index}: a DRed cache holds a prefix homed on "
                f"its own chip",
            )
    return OracleVerdict(
        name, PASS, f"{len(evidence.systems)} shard(s) exclusion-clean"
    )


def chip_audit(evidence: CellEvidence) -> OracleVerdict:
    """Chip tables match the compressed table (detect-only, no repair)."""
    name = "chip-audit"
    skip = _skip_no_systems(evidence, name)
    if skip is not None:
        return skip
    checked = 0
    for index, system in enumerate(evidence.systems):
        report = system.verify_chips(repair=False)
        if not report.clean:
            return OracleVerdict(
                name,
                FAIL,
                f"shard {index}: {report.repairs} drifted entries "
                f"({report.hops_repaired} wrong hops, "
                f"{report.stray_removed} stray, "
                f"{report.missing_restored} missing)",
            )
        checked += report.entries_checked
    return OracleVerdict(name, PASS, f"{checked} chip entries verified")


def state_audit(evidence: CellEvidence) -> OracleVerdict:
    """Full control-plane invariant pass (disjointness, equivalence, …)."""
    name = "state-audit"
    skip = _skip_no_systems(evidence, name)
    if skip is not None:
        return skip
    for index, system in enumerate(evidence.systems):
        report = system.audit_invariants(
            sample_size=evidence.cell.budget.sample_addresses
        )
        if not report.ok:
            first = report.violations[0]
            return OracleVerdict(
                name,
                FAIL,
                f"shard {index}: {len(report.violations)} violation(s), "
                f"first: {first.check}: {first.detail}",
            )
    return OracleVerdict(
        name, PASS, f"{len(evidence.systems)} shard(s) invariant-clean"
    )


_ORACLES: Dict[str, Callable[[CellEvidence], OracleVerdict]] = {
    "zero-acked-loss": zero_acked_loss,
    "lpm-equivalence": lpm_equivalence,
    "replay-fingerprint": replay_fingerprint,
    "dred-exclusion": dred_exclusion,
    "chip-audit": chip_audit,
    "state-audit": state_audit,
    "storage-audit": storage_audit,
}
