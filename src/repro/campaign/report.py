"""Campaign reporting: machine-readable JSON plus a Markdown summary.

``campaign.json`` is the artifact CI archives and scripts consume; the
Markdown table is for humans skimming a run.  Both carry, per cell, the
exact repro command line — a failed cell in CI should be one paste away
from running locally.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List

from repro.campaign.oracles import FAIL, SKIP
from repro.campaign.runner import CampaignResult, CellResult


def write_json(result: CampaignResult, path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(result.as_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def _cell_row(result: CellResult) -> str:
    if result.error:
        status = "ERROR"
        detail = result.error
    elif result.ok:
        status = "ok"
        skips = [v.name for v in result.verdicts if v.status == SKIP]
        detail = f"skipped: {', '.join(skips)}" if skips else "all oracles pass"
    else:
        status = "FAIL"
        parts = [
            f"{v.name}: {v.detail}" for v in result.verdicts if v.status == FAIL
        ]
        detail = "; ".join(parts)
    detail = detail.replace("|", "\\|")
    return (
        f"| `{result.cell_id}` | {status} | {result.duration_s:.1f}s "
        f"| {detail} |"
    )


def render_markdown(result: CampaignResult) -> str:
    """The human-facing summary (also what ``--markdown`` writes)."""
    lines: List[str] = []
    lines.append(f"# Campaign `{result.name}`")
    lines.append("")
    verdict = "**PASS**" if result.ok else "**FAIL**"
    lines.append(
        f"{verdict} — {len(result.results)} cells run, "
        f"{len(result.failed)} failed, {len(result.excluded)} structurally "
        f"excluded, {result.duration_s:.1f}s total."
    )
    lines.append("")
    lines.append("| cell (workload/fault/backend/topology) | status | time | detail |")
    lines.append("|---|---|---|---|")
    for cell in result.results:
        lines.append(_cell_row(cell))
    if result.failed:
        lines.append("")
        lines.append("## Reproducing failures")
        lines.append("")
        for cell in result.failed:
            culprit = ", ".join(cell.failed_oracles) or "error"
            lines.append(f"- `{cell.cell_id}` ({culprit}):")
            lines.append(f"  `{cell.repro}`")
    loaded = [cell for cell in result.results if cell.shard_loads]
    if loaded:
        lines.append("")
        lines.append("## Per-range shard load")
        lines.append("")
        lines.append(
            "The per-range hit counters that drive split/merge decisions "
            "(DESIGN.md §14), as each cell's server last reported them."
        )
        lines.append("")
        lines.append("| cell | shard | range | lookup hits | update hits |")
        lines.append("|---|---|---|---|---|")
        for cell in loaded:
            for row in cell.shard_loads:
                span = row.get("range")
                span_text = (
                    f"[{span[0]:#010x}, {span[1]:#010x})"
                    if isinstance(span, (list, tuple)) and len(span) == 2
                    else "-"
                )
                lines.append(
                    f"| `{cell.cell_id}` | {row.get('shard', '?')} "
                    f"| `{span_text}` | {row.get('lookup_hits', 0)} "
                    f"| {row.get('update_hits', 0)} |"
                )
    sourced = [cell for cell in result.results if cell.workload_provenance]
    if sourced:
        lines.append("")
        lines.append("## Workload provenance")
        lines.append("")
        lines.append(
            "File-sourced workloads, pinned by content digest: a report "
            "is only as reproducible as the bytes the cell actually ran."
        )
        lines.append("")
        lines.append("| cell | trace | source | bytes | sha256 |")
        lines.append("|---|---|---|---|---|")
        for cell in sourced:
            for kind, entry in sorted(cell.workload_provenance.items()):
                lines.append(
                    f"| `{cell.cell_id}` | {kind} | `{entry.get('path')}` "
                    f"| {entry.get('bytes', '?')} "
                    f"| `{entry.get('sha256', '?')}` |"
                )
    if result.excluded:
        lines.append("")
        lines.append("## Structurally excluded cells")
        lines.append("")
        for cell_id, reason in result.excluded:
            lines.append(f"- `{cell_id}` — {reason}")
    lines.append("")
    return "\n".join(lines)


def write_markdown(result: CampaignResult, path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_markdown(result), encoding="utf-8")
