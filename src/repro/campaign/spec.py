"""Campaign specs: the declarative workload × fault × backend × topology matrix.

A spec file (TOML or JSON) names the four axes by registry key, and
:meth:`CampaignSpec.expand` turns them into concrete :class:`Cell`\\ s —
the cross-product, minus glob-filtered exclusions, minus combinations
that are *structurally* invalid (a storm fault under a journal, a
process kill outside the HA topology).  Structural exclusions are not
errors: they are returned alongside the cells, each with the rule that
removed it, so a report can show the full lattice honestly.

Every cell gets a deterministic seed derived from the campaign seed and
the cell id, so two runs of the same spec — or one cell re-run alone via
``--cells`` — see byte-identical workloads and fault schedules.

TOML parsing uses :mod:`tomllib` where available (Python ≥ 3.11) and
falls back to a small subset parser otherwise; committed specs stay
loadable on every CI interpreter without new dependencies.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field, replace
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.engine.fastlpm import LOOKUP_BACKENDS
from repro.faults.profiles import FAULT_PROFILES
from repro.workload.profiles import WORKLOADS, file_workload, is_file_workload

PathLike = Union[str, Path]

#: Serving arrangements a cell can run under.  ``inproc`` drives one
#: bare :class:`ClueSystem`; ``inproc-durable`` adds a journaling
#: :class:`PersistenceManager`; ``serve-1``/``serve-2`` run a real
#: in-process TCP server over a journaled 1- or 2-shard
#: :class:`ShardSet`; ``ha`` spawns a primary + backup subprocess pair
#: and SIGKILLs the primary (the chaos cell); ``reshard`` spawns one
#: durable primary, splits a shard under live load, and SIGKILLs the
#: server mid-migration at a seed-chosen stage (DESIGN.md §14).
#: ``serve-2proc`` is the multi-process serving plane: two shard worker
#: *processes* behind a parent front (``serve --workers processes``).
TOPOLOGIES = (
    "inproc",
    "inproc-durable",
    "serve-1",
    "serve-2",
    "serve-2proc",
    "ha",
    "reshard",
)

#: Topologies whose updates flow through a write-ahead journal.
DURABLE_TOPOLOGIES = frozenset(
    {"inproc-durable", "serve-1", "serve-2", "serve-2proc", "ha", "reshard"}
)


class SpecError(ValueError):
    """The spec file is malformed or names unknown axis values."""


@dataclass(frozen=True)
class CellBudget:
    """Per-cell work limits; small by default so matrices stay cheap."""

    packets: int = 1500
    updates: int = 120
    batch_size: int = 24
    sample_addresses: int = 192
    rib_size: int = 400
    chips: int = 2

    def validated(self) -> "CellBudget":
        for name in (
            "packets",
            "updates",
            "batch_size",
            "sample_addresses",
            "rib_size",
            "chips",
        ):
            if getattr(self, name) < 1:
                raise SpecError(f"budget.{name} must be at least 1")
        return self


@dataclass(frozen=True)
class Cell:
    """One concrete point of the matrix, fully determined by its fields."""

    workload: str
    fault: str
    backend: str
    topology: str
    seed: int
    budget: CellBudget

    @property
    def id(self) -> str:
        return f"{self.workload}/{self.fault}/{self.backend}/{self.topology}"

    @property
    def durable(self) -> bool:
        return self.topology in DURABLE_TOPOLOGIES

    def repro_command(self, spec_path: Optional[str] = None) -> str:
        """A copy-pastable command that re-runs exactly this cell."""
        spec = spec_path or "<spec>"
        return f"repro-clue campaign --spec {spec} --cells '{self.id}'"


@dataclass
class CampaignSpec:
    """A parsed spec file; :meth:`expand` yields the runnable cells."""

    name: str = "campaign"
    seed: int = 7
    budget: CellBudget = field(default_factory=CellBudget)
    workloads: List[str] = field(default_factory=lambda: ["fig15"])
    faults: List[str] = field(default_factory=lambda: ["none"])
    backends: List[str] = field(default_factory=lambda: ["fast"])
    topologies: List[str] = field(default_factory=lambda: ["inproc"])
    include: List[str] = field(default_factory=list)
    exclude: List[str] = field(default_factory=list)
    #: Named cell-id glob lists, e.g. the committed CI ``smoke`` subset.
    subsets: Dict[str, List[str]] = field(default_factory=dict)

    # -- validation -----------------------------------------------------

    def validate(self) -> "CampaignSpec":
        self.budget.validated()
        # ``file:DIR`` workloads are validated against the filesystem,
        # everything else against the registry.
        for name in self.workloads:
            if is_file_workload(name):
                try:
                    file_workload(name).validate()
                except ValueError as exc:
                    raise SpecError(str(exc)) from exc
        registry_workloads = [
            name for name in self.workloads if not is_file_workload(name)
        ]
        if registry_workloads or not self.workloads:
            _check_axis(
                "workloads",
                registry_workloads or self.workloads,
                sorted(WORKLOADS),
            )
        _check_axis("faults", self.faults, sorted(FAULT_PROFILES))
        _check_axis("backends", self.backends, sorted(LOOKUP_BACKENDS))
        _check_axis("topologies", self.topologies, sorted(TOPOLOGIES))
        for axis_name, axis in (
            ("workloads", self.workloads),
            ("faults", self.faults),
            ("backends", self.backends),
            ("topologies", self.topologies),
        ):
            if len(set(axis)) != len(axis):
                raise SpecError(f"matrix.{axis_name} repeats a value")
        return self

    # -- expansion ------------------------------------------------------

    def structural_exclusion(
        self, workload: str, fault: str, backend: str, topology: str
    ) -> Optional[str]:
        """The rule removing this combination, or ``None`` if runnable."""
        profile = FAULT_PROFILES[fault]
        if is_file_workload(workload) and topology in ("ha", "reshard"):
            return (
                "ha/reshard drills boot a chaos cluster that regenerates "
                "its RIB from the cell seed; file-sourced workloads "
                "cannot cross that subprocess boundary yet"
            )
        if profile.process_level and topology not in ("ha", "reshard"):
            return (
                "process-kill faults only exist at the process level; "
                "they need the ha or reshard topology"
            )
        if topology == "ha" and not profile.process_level:
            return (
                "ha cells need a kill-primary fault: only a backup that "
                "never served lookups can pass byte-identical replay"
            )
        if topology == "reshard" and not profile.process_level:
            return (
                "the reshard drill's one fault is its staged mid-migration "
                "SIGKILL; it needs a process-kill fault profile"
            )
        if not profile.journal_safe and topology in DURABLE_TOPOLOGIES:
            return (
                "storm faults inject updates behind the write-ahead "
                "journal; durable topologies cannot replay them"
            )
        if topology == "serve-2proc" and fault in ("corrupt", "corrupt-silent"):
            return (
                "chip-corruption drills need in-process engine access "
                "(the healing pass and the chip audit); worker processes "
                "hide the engine behind the wire"
            )
        return None

    def expand(
        self,
        subset: Optional[str] = None,
        cells: Optional[Sequence[str]] = None,
        max_cells: Optional[int] = None,
    ) -> Tuple[List[Cell], List[Tuple[str, str]]]:
        """The runnable cells, plus ``(cell_id, reason)`` exclusions.

        ``subset`` selects a named glob list from the spec; ``cells``
        filters by caller-supplied id globs (both intersect the matrix —
        they never add cells the axes don't span).  ``max_cells``
        truncates the final list, keeping matrix order.
        """
        self.validate()
        patterns: Optional[List[str]] = None
        if subset is not None:
            if subset not in self.subsets:
                raise SpecError(
                    f"unknown subset {subset!r}; spec defines: "
                    f"{', '.join(sorted(self.subsets)) or '(none)'}"
                )
            patterns = list(self.subsets[subset])
        if cells is not None:
            patterns = (patterns or []) + list(cells)

        expanded: List[Cell] = []
        excluded: List[Tuple[str, str]] = []
        for workload in self.workloads:
            for fault in self.faults:
                for backend in self.backends:
                    for topology in self.topologies:
                        cell_id = f"{workload}/{fault}/{backend}/{topology}"
                        if self.include and not _matches(
                            cell_id, self.include
                        ):
                            continue
                        if _matches(cell_id, self.exclude):
                            continue
                        reason = self.structural_exclusion(
                            workload, fault, backend, topology
                        )
                        if reason is not None:
                            excluded.append((cell_id, reason))
                            continue
                        expanded.append(
                            Cell(
                                workload=workload,
                                fault=fault,
                                backend=backend,
                                topology=topology,
                                seed=_cell_seed(self.seed, cell_id),
                                budget=self.budget,
                            )
                        )
        if patterns is not None:
            wanted = [c for c in expanded if _matches(c.id, patterns)]
            unmatched = [
                p
                for p in patterns
                if not any(fnmatchcase(c.id, p) for c in expanded)
            ]
            if unmatched:
                raise SpecError(
                    f"cell pattern(s) match nothing in the matrix: "
                    f"{', '.join(unmatched)}"
                )
            expanded = wanted
        if max_cells is not None and len(expanded) > max_cells:
            expanded = expanded[:max_cells]
        return expanded, excluded


def _cell_seed(campaign_seed: int, cell_id: str) -> int:
    """Deterministic per-cell seed: stable across runs and subsets."""
    return (campaign_seed * 1_000_003 + zlib.crc32(cell_id.encode())) & 0x7FFFFFFF


def _matches(cell_id: str, patterns: Sequence[str]) -> bool:
    return any(fnmatchcase(cell_id, pattern) for pattern in patterns)


def _check_axis(name: str, values: Sequence[str], known: Sequence[str]) -> None:
    if not values:
        raise SpecError(f"matrix.{name} must name at least one value")
    unknown = [value for value in values if value not in known]
    if unknown:
        raise SpecError(
            f"matrix.{name}: unknown value(s) {', '.join(map(repr, unknown))}"
            f"; known: {', '.join(known)}"
        )


# -- spec file loading ---------------------------------------------------


def load_spec(path: PathLike) -> CampaignSpec:
    """Parse a ``.toml`` or ``.json`` spec file into a validated spec."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise SpecError(f"cannot read spec {path}: {exc}") from exc
    if path.suffix == ".json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"{path}: invalid JSON: {exc}") from exc
    elif path.suffix == ".toml":
        data = _load_toml(text, str(path))
    else:
        raise SpecError(
            f"{path}: unsupported spec format {path.suffix!r} "
            f"(use .toml or .json)"
        )
    if not isinstance(data, dict):
        raise SpecError(f"{path}: spec must be a table/object at top level")
    return spec_from_dict(data, source=str(path))


def spec_from_dict(data: Dict, source: str = "<dict>") -> CampaignSpec:
    """Build and validate a spec from parsed file data."""
    known_sections = {"campaign", "budget", "matrix", "filters", "subsets"}
    unknown = set(data) - known_sections
    if unknown:
        raise SpecError(
            f"{source}: unknown section(s) {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known_sections))}"
        )
    campaign = _section(data, "campaign", source)
    budget_data = _section(data, "budget", source)
    matrix = _section(data, "matrix", source)
    filters = _section(data, "filters", source)
    subsets = _section(data, "subsets", source)

    spec = CampaignSpec()
    try:
        budget = replace(CellBudget(), **budget_data)
    except TypeError as exc:
        raise SpecError(f"{source}: bad [budget] key: {exc}") from exc
    spec = CampaignSpec(
        name=str(campaign.get("name", "campaign")),
        seed=_int_field(campaign, "seed", 7, source),
        budget=budget,
        workloads=_str_list(matrix, "workloads", ["fig15"], source),
        faults=_str_list(matrix, "faults", ["none"], source),
        backends=_str_list(matrix, "backends", ["fast"], source),
        topologies=_str_list(matrix, "topologies", ["inproc"], source),
        include=_str_list(filters, "include", [], source),
        exclude=_str_list(filters, "exclude", [], source),
        subsets={
            str(name): _glob_list(name, globs, source)
            for name, globs in subsets.items()
        },
    )
    return spec.validate()


def _section(data: Dict, name: str, source: str) -> Dict:
    section = data.get(name, {})
    if not isinstance(section, dict):
        raise SpecError(f"{source}: [{name}] must be a table/object")
    return section


def _int_field(section: Dict, key: str, default: int, source: str) -> int:
    value = section.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(f"{source}: {key} must be an integer")
    return value


def _str_list(
    section: Dict, key: str, default: List[str], source: str
) -> List[str]:
    value = section.get(key, default)
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise SpecError(f"{source}: {key} must be an array of strings")
    return list(value)


def _glob_list(name: object, globs: object, source: str) -> List[str]:
    if not isinstance(globs, list) or not all(
        isinstance(item, str) for item in globs
    ):
        raise SpecError(
            f"{source}: subset {name!r} must be an array of cell-id globs"
        )
    return list(globs)


# -- TOML loading with a subset fallback ---------------------------------


def _load_toml(text: str, source: str) -> Dict:
    try:
        import tomllib
    except ImportError:
        return _parse_toml_subset(text, source)
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise SpecError(f"{source}: invalid TOML: {exc}") from exc


def _parse_toml_subset(text: str, source: str) -> Dict:
    """Parse the TOML subset campaign specs use (pre-3.11 fallback).

    Supports ``[section]`` tables and ``key = value`` pairs where the
    value is a string, integer, float, boolean, or a single-line array
    of strings/integers.  That is the whole grammar a campaign spec
    needs; anything fancier raises a clear :class:`SpecError` telling
    the author to simplify or use JSON.
    """
    data: Dict[str, Dict] = {}
    table: Dict = data.setdefault("campaign", {})
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[") and line.endswith("]"):
            name = line[1:-1].strip()
            if not name or "." in name or '"' in name:
                raise SpecError(
                    f"{source}:{number}: unsupported table header {line!r}"
                )
            table = data.setdefault(name, {})
            continue
        key, sep, value = line.partition("=")
        if not sep:
            raise SpecError(
                f"{source}:{number}: expected 'key = value', got {line!r}"
            )
        table[key.strip()] = _parse_toml_value(value.strip(), source, number)
    return data


def _parse_toml_value(value: str, source: str, number: int) -> object:
    if not value:
        raise SpecError(f"{source}:{number}: missing value")
    if value.startswith("[") and value.endswith("]"):
        inner = value[1:-1].strip()
        if not inner:
            return []
        return [
            _parse_toml_scalar(item.strip(), source, number)
            for item in _split_array(inner, source, number)
        ]
    return _parse_toml_scalar(value, source, number)


def _split_array(inner: str, source: str, number: int) -> List[str]:
    items: List[str] = []
    current = []
    in_string = False
    for char in inner:
        if char == '"':
            in_string = not in_string
            current.append(char)
        elif char == "," and not in_string:
            items.append("".join(current))
            current = []
        else:
            current.append(char)
    if in_string:
        raise SpecError(f"{source}:{number}: unterminated string")
    if current:
        items.append("".join(current))
    return [item for item in items if item.strip()]


def _parse_toml_scalar(value: str, source: str, number: int) -> object:
    if value.startswith('"') and value.endswith('"') and len(value) >= 2:
        body = value[1:-1]
        if '"' in body or "\\" in body:
            raise SpecError(
                f"{source}:{number}: escapes in strings are not supported "
                f"by the fallback parser; simplify or use JSON"
            )
        return body
    if value == "true":
        return True
    if value == "false":
        return False
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        raise SpecError(
            f"{source}:{number}: unsupported value {value!r}"
        ) from None
