"""ONRTC — Optimal Non-overlap Routing Table Construction.

This is the first pillar of CLUE (the authors' ICC 2012 companion paper).
It rewrites a routing table into a forwarding-equivalent set of pairwise
*disjoint* prefixes of minimal size.  Disjointness is what buys the rest of
the system: no TCAM priority encoder, no domino effect on update, and exact
even partitioning across chips.

The construction is the label dynamic program described in DESIGN.md §5 and
:mod:`repro.compress.labels`: label every region of the address space
bottom-up (``BOT`` / single hop / ``MIXED``), then emit one entry per highest
single-hop region.  Both passes are linear in the trie size.

Two interfaces are provided:

* :func:`compress` — one-shot compression of a trie;
* :class:`OnrtcTable` — an *incremental* compressor that keeps the compressed
  table synchronised with a stream of announce/withdraw updates, reporting
  the exact entry-level diff for each update.  This is what TTF1-CLUE
  measures and what drives the O(1) TCAM update downstream.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.compress.labels import (
    BOT,
    MIXED,
    CompressionMode,
    Label,
    is_emittable,
    leaf_label,
    merge,
)
from repro.net.prefix import Prefix
from repro.trie.node import TrieNode
from repro.trie.trie import BinaryTrie

Route = Tuple[Prefix, int]


def compress(
    trie: BinaryTrie, mode: CompressionMode = CompressionMode.DONT_CARE
) -> Dict[Prefix, int]:
    """Compress ``trie`` into a minimal non-overlapping table.

    The result maps disjoint prefixes to next hops and is forwarding-
    equivalent to ``trie``: strictly so in ``STRICT`` mode, and on every
    originally-matched address in ``DONT_CARE`` mode.

    >>> trie = BinaryTrie.from_routes(
    ...     [(Prefix.from_bits("0"), 7), (Prefix.from_bits("00"), 7)]
    ... )
    >>> compress(trie, CompressionMode.STRICT)
    {Prefix('0.0.0.0/1'): 7}
    """
    labels: Dict[TrieNode, Label] = {}
    _relabel_subtree(trie.root, None, mode, labels)
    table: Dict[Prefix, int] = {}
    _emit_region(trie.root, Prefix.root(), None, labels, table)
    return table


def compressed_size(
    trie: BinaryTrie, mode: CompressionMode = CompressionMode.DONT_CARE
) -> int:
    """Number of entries ONRTC produces for ``trie`` (no table built)."""
    return len(compress(trie, mode))


@dataclass
class CompressionReport:
    """Summary of one compression run (feeds the Figure 8 bench)."""

    original_entries: int
    compressed_entries: int
    mode: CompressionMode

    @property
    def ratio(self) -> float:
        """Compressed size as a fraction of the original (paper avg ≈ 0.71)."""
        if self.original_entries == 0:
            return 1.0
        return self.compressed_entries / self.original_entries


def compression_report(
    trie: BinaryTrie, mode: CompressionMode = CompressionMode.DONT_CARE
) -> CompressionReport:
    """Compress and summarise in one call."""
    return CompressionReport(
        original_entries=len(trie),
        compressed_entries=compressed_size(trie, mode),
        mode=mode,
    )


# ----------------------------------------------------------------------
# Label passes (shared by one-shot and incremental forms)
# ----------------------------------------------------------------------


def _relabel_subtree(
    node: TrieNode,
    inherited: Optional[int],
    mode: CompressionMode,
    labels: Dict[TrieNode, Label],
) -> Label:
    """Recompute labels for ``node``'s whole subtree; returns its label."""
    effective = node.next_hop if node.has_route else inherited
    if node.is_leaf:
        label: Label = leaf_label(effective)
    else:
        sides: List[Label] = []
        for bit in (0, 1):
            child = node.child(bit)
            if child is None:
                sides.append(leaf_label(effective))
            else:
                sides.append(_relabel_subtree(child, effective, mode, labels))
        label = merge(sides[0], sides[1], mode)
    labels[node] = label
    return label


def _merge_at(
    node: TrieNode,
    inherited: Optional[int],
    mode: CompressionMode,
    labels: Dict[TrieNode, Label],
) -> Label:
    """Recompute a single internal node's label from its children's labels."""
    effective = node.next_hop if node.has_route else inherited
    if node.is_leaf:
        return leaf_label(effective)
    sides: List[Label] = []
    for bit in (0, 1):
        child = node.child(bit)
        if child is None:
            sides.append(leaf_label(effective))
        else:
            sides.append(labels[child])
    return merge(sides[0], sides[1], mode)


def _emit_region(
    node: TrieNode,
    prefix: Prefix,
    inherited: Optional[int],
    labels: Dict[TrieNode, Label],
    out: Dict[Prefix, int],
) -> None:
    """Emit the compressed entries covering ``node``'s region into ``out``."""
    label = labels[node]
    if label is BOT:
        return
    if is_emittable(label):
        out[prefix] = label
        return
    effective = node.next_hop if node.has_route else inherited
    for bit in (0, 1):
        child = node.child(bit)
        child_prefix = prefix.child(bit)
        if child is None:
            if effective is not None:
                out[child_prefix] = effective
        else:
            _emit_region(child, child_prefix, effective, labels, out)


# ----------------------------------------------------------------------
# Incremental maintenance
# ----------------------------------------------------------------------


@dataclass
class TableDiff:
    """Entry-level changes one routing update caused in the compressed table.

    ``removes`` lists entries to pull out of the TCAM, ``adds`` entries to
    write.  ``relabelled`` counts trie nodes whose DP label was recomputed —
    the control-plane work measure behind TTF1-CLUE.
    """

    adds: List[Route] = field(default_factory=list)
    removes: List[Route] = field(default_factory=list)
    relabelled: int = 0

    @property
    def is_empty(self) -> bool:
        return not self.adds and not self.removes

    @property
    def entry_changes(self) -> int:
        """Total TCAM writes this diff implies."""
        return len(self.adds) + len(self.removes)


class _SortedEntrySet:
    """Compressed-table entries ordered by address, for range extraction.

    Entries are pairwise disjoint, so ordering by network address is total
    and every covering prefix maps to one contiguous slice — which is how the
    incremental compressor pulls out "all current entries under region U"
    without scanning the table.
    """

    def __init__(self) -> None:
        self._networks: List[int] = []
        self._prefixes: List[Prefix] = []

    def add(self, prefix: Prefix) -> None:
        index = bisect_left(self._networks, prefix.network)
        self._networks.insert(index, prefix.network)
        self._prefixes.insert(index, prefix)

    def remove(self, prefix: Prefix) -> None:
        index = bisect_left(self._networks, prefix.network)
        while index < len(self._prefixes) and self._networks[index] == prefix.network:
            if self._prefixes[index] == prefix:
                del self._networks[index]
                del self._prefixes[index]
                return
            index += 1
        raise KeyError(prefix)

    def under(self, region: Prefix) -> List[Prefix]:
        """All stored prefixes contained in ``region`` (disjointness makes
        containment equivalent to network-range membership)."""
        low = bisect_left(self._networks, region.network)
        high = bisect_right(self._networks, region.broadcast)
        return self._prefixes[low:high]

    def __len__(self) -> int:
        return len(self._prefixes)


class OnrtcTable:
    """An ONRTC-compressed table kept in sync with routing updates.

    The instance owns a private copy of the source trie.  ``announce`` and
    ``withdraw`` apply one BGP-style update and return the
    :class:`TableDiff` the data plane must apply — usually a single entry,
    which is why CLUE's TCAM update is O(1).

    The non-overlap invariant holds after every update (tested by property
    tests in ``tests/compress``).
    """

    def __init__(
        self,
        routes: Iterable[Route] = (),
        mode: CompressionMode = CompressionMode.DONT_CARE,
    ) -> None:
        self.mode = mode
        self.source = BinaryTrie.from_routes(routes)
        self._labels: Dict[TrieNode, Label] = {}
        self.table: Dict[Prefix, int] = {}
        self._order = _SortedEntrySet()
        self._rebuild()

    # -- construction ---------------------------------------------------

    def _rebuild(self) -> None:
        self._labels.clear()
        _relabel_subtree(self.source.root, None, self.mode, self._labels)
        self.table.clear()
        _emit_region(self.source.root, Prefix.root(), None, self._labels, self.table)
        self._order = _SortedEntrySet()
        for prefix in self.table:
            self._order.add(prefix)

    # -- public update API ----------------------------------------------

    def announce(self, prefix: Prefix, next_hop: int) -> TableDiff:
        """Install or replace the route for ``prefix``; returns the diff."""
        self.source.insert(prefix, next_hop)
        node = self.source.find_node(prefix)
        assert node is not None
        return self._resync(node)

    def withdraw(self, prefix: Prefix) -> TableDiff:
        """Remove the route for ``prefix``; returns the diff (empty if absent)."""
        removal = self.source.remove_route(prefix)
        if removal is None:
            return TableDiff()
        survivor, pruned = removal
        for node in pruned:
            self._labels.pop(node, None)
        return self._resync(survivor)

    def apply(self, prefix: Prefix, next_hop: Optional[int]) -> TableDiff:
        """Announce when ``next_hop`` is set, withdraw when it is ``None``."""
        if next_hop is None:
            return self.withdraw(prefix)
        return self.announce(prefix, next_hop)

    # -- internals --------------------------------------------------------

    def _resync(self, anchor: TrieNode) -> TableDiff:
        """Repair labels and table after the source trie changed under
        ``anchor`` (the deepest surviving node on the updated path)."""
        path = self._path_to(anchor)
        inherited = self._inherited_above(path)

        old_anchor_label = self._labels.get(anchor)
        relabel_tracker: Dict[TrieNode, Label] = {}
        _relabel_subtree(anchor, inherited, self.mode, relabel_tracker)
        relabelled = len(relabel_tracker)
        self._labels.update(relabel_tracker)

        # Walk up recomputing merges; remember the highest node whose label
        # changed.  Labels strictly above that node are untouched.
        changed_top = anchor if self._labels[anchor] != old_anchor_label else None
        inherited_stack = self._inherited_chain(path)
        for depth in range(len(path) - 2, -1, -1):
            ancestor = path[depth]
            # Freshly created intermediate path nodes have no label yet;
            # treating "absent" as a changed label makes them propagate.
            old = self._labels.get(ancestor)
            new = _merge_at(ancestor, inherited_stack[depth], self.mode, self._labels)
            relabelled += 1
            if new == old:
                break
            self._labels[ancestor] = new
            changed_top = ancestor

        region_top = changed_top if changed_top is not None else anchor
        diff = TableDiff(relabelled=relabelled)

        # If some ancestor above the changed region has a non-MIXED label the
        # emission boundary sits at or above that ancestor, so the table is
        # untouched (the whole region is already covered by one entry or by
        # nothing).
        top_index = path.index(region_top)
        for ancestor in path[:top_index]:
            if self._labels[ancestor] is not MIXED:
                return diff

        region_prefix = self._prefix_of_path(path[: top_index + 1])
        old_entries = {
            entry: self.table[entry] for entry in self._order.under(region_prefix)
        }
        new_entries: Dict[Prefix, int] = {}
        _emit_region(
            region_top,
            region_prefix,
            inherited_stack[top_index],
            self._labels,
            new_entries,
        )

        for prefix, hop in old_entries.items():
            if new_entries.get(prefix) != hop:
                diff.removes.append((prefix, hop))
                del self.table[prefix]
                self._order.remove(prefix)
        for prefix, hop in new_entries.items():
            if old_entries.get(prefix) != hop:
                diff.adds.append((prefix, hop))
                self.table[prefix] = hop
                self._order.add(prefix)
        return diff

    def _path_to(self, node: TrieNode) -> List[TrieNode]:
        """Nodes from the root down to ``node`` inclusive."""
        path: List[TrieNode] = []
        current: Optional[TrieNode] = node
        while current is not None:
            path.append(current)
            current = current.parent
        path.reverse()
        return path

    @staticmethod
    def _inherited_above(path: List[TrieNode]) -> Optional[int]:
        """Effective hop inherited from strictly above the last path node."""
        inherited: Optional[int] = None
        for node in path[:-1]:
            if node.has_route:
                inherited = node.next_hop
        return inherited

    @staticmethod
    def _inherited_chain(path: List[TrieNode]) -> List[Optional[int]]:
        """``chain[i]`` = hop inherited from strictly above ``path[i]``."""
        chain: List[Optional[int]] = []
        inherited: Optional[int] = None
        for node in path:
            chain.append(inherited)
            if node.has_route:
                inherited = node.next_hop
        return chain

    def _prefix_of_path(self, path: List[TrieNode]) -> Prefix:
        """The prefix implied by a root-anchored node path."""
        value = 0
        for parent, child in zip(path, path[1:]):
            value = (value << 1) | parent.which_child(child)
        return Prefix(value, len(path) - 1)

    # -- views ------------------------------------------------------------

    def routes(self) -> List[Route]:
        """Compressed entries in address order (the CLUE partition order)."""
        return sorted(self.table.items(), key=lambda item: item[0].sort_key())

    def __len__(self) -> int:
        return len(self.table)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self.table

    def lookup(self, address: int) -> Optional[int]:
        """Reference LPM over the *compressed* table (linear scan; used by
        tests and the equivalence verifier, not the data path)."""
        best: Optional[Tuple[int, int]] = None
        for prefix, hop in self.table.items():
            if prefix.contains_address(address):
                if best is None or prefix.length > best[0]:
                    best = (prefix.length, hop)
        return best[1] if best else None
