"""Exact forwarding-equivalence verification.

Compressed tables must forward every packet exactly like the original.
Exhaustively checking 2^32 addresses is pointless: an LPM function is
piecewise constant, changing value only at prefix boundaries.  Checking one
address per interval between consecutive *critical addresses* (the network
and one-past-broadcast of every prefix in either table) is therefore a
complete proof of equivalence, and runs in O(n log n).

These checks back every compression test and the ``examples/`` sanity
output; they are control-plane tools, not part of the lookup data path.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.net.prefix import ADDRESS_SPACE, Prefix
from repro.trie.trie import BinaryTrie

TableLike = Union[BinaryTrie, Dict[Prefix, int]]


def as_trie(table: TableLike) -> BinaryTrie:
    """View any route container as a trie (tries pass through unchanged)."""
    if isinstance(table, BinaryTrie):
        return table
    return BinaryTrie.from_routes(table.items())


def critical_addresses(*tables: TableLike) -> List[int]:
    """The sorted addresses at which any involved LPM function can change."""
    points = {0}
    for table in tables:
        prefixes: Iterable[Prefix]
        if isinstance(table, BinaryTrie):
            prefixes = table.prefixes()
        else:
            prefixes = table.keys()
        for prefix in prefixes:
            points.add(prefix.network)
            end = prefix.broadcast + 1
            if end < ADDRESS_SPACE:
                points.add(end)
    return sorted(points)


def find_mismatch(
    original: TableLike,
    candidate: TableLike,
    covered_only: bool = False,
) -> Optional[Tuple[int, Optional[int], Optional[int]]]:
    """First address where the two tables disagree, or ``None``.

    With ``covered_only`` (the don't-care compression contract) addresses the
    *original* table does not match are exempt: the candidate may do anything
    there.  Returns ``(address, original_hop, candidate_hop)`` on mismatch.
    """
    original_trie = as_trie(original)
    candidate_trie = as_trie(candidate)
    for address in critical_addresses(original_trie, candidate_trie):
        expected = original_trie.lookup(address)
        if covered_only and expected is None:
            continue
        actual = candidate_trie.lookup(address)
        if actual != expected:
            return address, expected, actual
    return None


def forwarding_equal(
    original: TableLike,
    candidate: TableLike,
    covered_only: bool = False,
) -> bool:
    """True when the two tables make identical forwarding decisions.

    This is a complete check, not a sample (see the module docstring).
    """
    return find_mismatch(original, candidate, covered_only) is None


def find_overlap(table: TableLike) -> Optional[Tuple[Prefix, Prefix]]:
    """A pair of overlapping prefixes in ``table``, or ``None`` if disjoint.

    Sorting by network address makes overlap detection linear: with disjoint
    prefixes each entry must start past the previous entry's end.
    """
    if isinstance(table, BinaryTrie):
        prefixes = table.prefixes()
    else:
        prefixes = sorted(table.keys(), key=lambda p: p.sort_key())
    previous: Optional[Prefix] = None
    for prefix in prefixes:
        if previous is not None and previous.broadcast >= prefix.network:
            return previous, prefix
        previous = prefix
    return None


def is_disjoint_table(table: TableLike) -> bool:
    """True when no two prefixes in ``table`` overlap."""
    return find_overlap(table) is None
