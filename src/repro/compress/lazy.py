"""Lazy ONRTC maintenance: bounded-work updates over a non-minimal table.

The incremental compressor in :mod:`repro.compress.onrtc` keeps the table
*minimal* after every update.  Minimality is global: an update can cascade
label merges toward the root and occasionally re-emit a wide region — the
heavy tail EXPERIMENTS.md documents on TTF1, and extra entry churn on
TTF2.  The paper's "one shift per update" reading corresponds to a weaker
maintenance discipline, reconstructed here:

* the table stays **disjoint** and **forwarding-equivalent** at all times
  (both invariants are enforced and property-tested), but is allowed to
  drift away from the minimal size;
* every update touches only the smallest enclosing *region*: the unique
  table entry covering the updated prefix, or the prefix itself.  No merge
  propagation, no ancestor re-emission — work is bounded by the region's
  own structure;
* :meth:`LazyOnrtcTable.recompress` runs the one-shot optimal compressor
  to shed the accumulated drift, the way a control plane would re-optimise
  during idle time.

``benchmarks/bench_ablation_lazy_update.py`` quantifies the trade: lazy
mode pushes CLUE's TCAM update cost down to the paper's idealised
~1 operation while the table slowly grows between recompressions.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.compress.labels import (
    BOT,
    CompressionMode,
    Label,
    is_emittable,
)
from repro.compress.onrtc import (
    TableDiff,
    _SortedEntrySet,
    _relabel_subtree,
    _emit_region,
    compress,
)
from repro.net.prefix import Prefix
from repro.trie.node import TrieNode
from repro.trie.trie import BinaryTrie

Route = Tuple[Prefix, int]


def minimal_cover(
    source: BinaryTrie, region: Prefix, mode: CompressionMode
) -> Dict[Prefix, int]:
    """The minimal disjoint cover of ``region`` under ``source``'s routes.

    Runs the ONRTC label DP restricted to one region of the address space:
    the result is exactly what the optimal compressor would emit inside
    ``region`` if its boundary were an emission boundary.
    """
    above = _strictly_above(source, region)
    node = source.find_node(region)
    cover: Dict[Prefix, int] = {}
    if node is None:
        # No trie structure inside the region: one uniform piece.
        if above is not None:
            cover[region] = above
        return cover
    labels: Dict[TrieNode, Label] = {}
    label = _relabel_subtree(node, above, mode, labels)
    if label is BOT:
        return cover
    if is_emittable(label):
        cover[region] = label
        return cover
    _emit_region(node, region, above, labels, cover)
    return cover


def _strictly_above(source: BinaryTrie, region: Prefix) -> Optional[int]:
    """The hop inherited from routes strictly shorter than ``region``."""
    node = source.root
    inherited = node.next_hop
    for position, bit in enumerate(region.walk_bits()):
        child = node.child(bit)
        if child is None:
            return inherited
        node = child
        if position < region.length - 1 and node.has_route:
            inherited = node.next_hop
    return inherited


class LazyOnrtcTable:
    """A disjoint, equivalent, *lazily maintained* compressed table.

    Same public surface as :class:`~repro.compress.onrtc.OnrtcTable`
    (``announce`` / ``withdraw`` / ``apply`` returning
    :class:`~repro.compress.onrtc.TableDiff`), plus :meth:`recompress` and
    :meth:`minimality_gap`.
    """

    def __init__(
        self,
        routes: Iterable[Route] = (),
        mode: CompressionMode = CompressionMode.DONT_CARE,
    ) -> None:
        self.mode = mode
        self.source = BinaryTrie.from_routes(routes)
        self.table: Dict[Prefix, int] = compress(self.source, mode)
        self._order = _SortedEntrySet()
        for prefix in self.table:
            self._order.add(prefix)

    # -- public update API ----------------------------------------------

    def announce(self, prefix: Prefix, next_hop: int) -> TableDiff:
        """Install or replace a route; bounded-work table repair."""
        self.source.insert(prefix, next_hop)
        return self._repair(prefix)

    def withdraw(self, prefix: Prefix) -> TableDiff:
        """Remove a route; bounded-work table repair."""
        if self.source.remove_route(prefix) is None:
            return TableDiff()
        return self._repair(prefix)

    def apply(self, prefix: Prefix, next_hop: Optional[int]) -> TableDiff:
        if next_hop is None:
            return self.withdraw(prefix)
        return self.announce(prefix, next_hop)

    # -- maintenance -------------------------------------------------------

    def recompress(self) -> TableDiff:
        """Shed accumulated drift: swap in the one-shot optimal table."""
        fresh = compress(self.source, self.mode)
        diff = TableDiff()
        for prefix, hop in self.table.items():
            if fresh.get(prefix) != hop:
                diff.removes.append((prefix, hop))
        for prefix, hop in fresh.items():
            if self.table.get(prefix) != hop:
                diff.adds.append((prefix, hop))
        self.table = fresh
        self._order = _SortedEntrySet()
        for prefix in self.table:
            self._order.add(prefix)
        return diff

    def minimality_gap(self) -> float:
        """Current size relative to the minimal table (1.0 = minimal)."""
        minimal = len(compress(self.source, self.mode))
        if minimal == 0:
            return 1.0 if not self.table else float("inf")
        return len(self.table) / minimal

    # -- internals --------------------------------------------------------

    def _covering_entry(self, prefix: Prefix) -> Optional[Prefix]:
        """The unique table entry containing ``prefix``, if any."""
        probe = prefix
        while True:
            if probe in self.table:
                return probe
            if probe.length == 0:
                return None
            probe = probe.parent()

    def _repair(self, prefix: Prefix) -> TableDiff:
        """Replace the smallest enclosing region's cover, locally."""
        covering = self._covering_entry(prefix)
        region = covering if covering is not None else prefix
        old_entries = {
            entry: self.table[entry] for entry in self._order.under(region)
        }
        new_entries = minimal_cover(self.source, region, self.mode)
        diff = TableDiff(relabelled=len(new_entries) + len(old_entries))
        for entry, hop in old_entries.items():
            if new_entries.get(entry) != hop:
                diff.removes.append((entry, hop))
                del self.table[entry]
                self._order.remove(entry)
        for entry, hop in new_entries.items():
            if old_entries.get(entry) != hop:
                diff.adds.append((entry, hop))
                self.table[entry] = hop
                self._order.add(entry)
        return diff

    # -- views ------------------------------------------------------------

    def routes(self) -> List[Route]:
        return sorted(self.table.items(), key=lambda item: item[0].sort_key())

    def __len__(self) -> int:
        return len(self.table)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self.table
