"""Routing-table compression: ONRTC (the CLUE pillar) and baselines."""

from repro.compress.labels import BOT, MIXED, CompressionMode, Label
from repro.compress.lazy import LazyOnrtcTable, minimal_cover
from repro.compress.onrtc import (
    CompressionReport,
    OnrtcTable,
    TableDiff,
    compress,
    compressed_size,
    compression_report,
)
from repro.compress.ortc import (
    DROP,
    compress_ortc,
    compressed_size_ortc,
    lookup_ortc,
)
from repro.compress.verify import (
    as_trie,
    critical_addresses,
    find_mismatch,
    find_overlap,
    forwarding_equal,
    is_disjoint_table,
)

__all__ = [
    "BOT",
    "MIXED",
    "DROP",
    "CompressionMode",
    "CompressionReport",
    "Label",
    "LazyOnrtcTable",
    "OnrtcTable",
    "TableDiff",
    "as_trie",
    "compress",
    "compress_ortc",
    "compressed_size",
    "compressed_size_ortc",
    "compression_report",
    "critical_addresses",
    "find_mismatch",
    "find_overlap",
    "forwarding_equal",
    "is_disjoint_table",
    "lookup_ortc",
    "minimal_cover",
]
