"""Region labels for the ONRTC dynamic program.

ONRTC reduces to a bottom-up label merge over the trie's region tree
(DESIGN.md §5).  Each address region gets one of three kinds of label:

* ``BOT``   — the region is entirely unmatched by the original table;
* an ``int`` next hop — the whole region can be covered by one table entry
  carrying that hop without changing any forwarding decision;
* ``MIXED`` — no single entry can cover the region.

The merge rule is the entire difference between the two compression modes:

* **strict**: two labels merge only when equal (``BOT`` merges with ``BOT``);
  unmatched space must stay unmatched, so it can never be absorbed.
* **don't-care**: ``BOT`` additionally absorbs into any hop label, because
  addresses the original table never matched may be covered by anything
  (they are unroutable either way in a default-free zone).

With these rules the minimal disjoint table drops out of a single merge
pass: emit one entry per highest non-``MIXED``, non-``BOT`` node.
"""

from __future__ import annotations

import enum
from typing import Optional, Union


class _Sentinel(enum.Enum):
    BOT = "BOT"
    MIXED = "MIXED"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.value


#: Label of an entirely-unmatched region.
BOT = _Sentinel.BOT

#: Label of a region that cannot be covered by one entry.
MIXED = _Sentinel.MIXED

#: A region label: ``BOT``, ``MIXED`` or a concrete next hop.
Label = Union[_Sentinel, int]


class CompressionMode(enum.Enum):
    """Semantics of unmatched address space during compression.

    ``STRICT`` preserves lookup misses exactly.  ``DONT_CARE`` lets unmatched
    space be absorbed into neighbouring entries, which is the reading under
    which a non-overlapping table can undercut the original size and reach
    the paper's ~71% (DESIGN.md §5).
    """

    STRICT = "strict"
    DONT_CARE = "dont_care"


def merge(left: Label, right: Label, mode: CompressionMode) -> Label:
    """Combine the labels of two sibling regions."""
    if left is MIXED or right is MIXED:
        return MIXED
    if left == right:
        return left
    if mode is CompressionMode.DONT_CARE:
        if left is BOT:
            return right
        if right is BOT:
            return left
    return MIXED


def leaf_label(effective_hop: Optional[int]) -> Label:
    """Label of a maximal uniform region given its inherited LPM hop."""
    return BOT if effective_hop is None else effective_hop


def is_emittable(label: Label) -> bool:
    """True when a region with this label becomes exactly one table entry."""
    return label is not BOT and label is not MIXED
