"""ORTC — Optimal Routing Table Constructor (Draves et al., INFOCOM 1999).

ORTC is the classical *overlapping-allowed* optimal compressor the paper's
related-work section positions ONRTC against: it produces the smallest table
with ordinary LPM semantics, but because its output overlaps it inherits all
of the TCAM problems CLUE is designed to kill (length-ordered layout,
priority encoder, domino effect).  We keep it as the compression-ratio
baseline.

The algorithm is the textbook three passes over the binary trie:

1. push effective hops down so every leaf region carries a concrete hop;
2. bottom-up, compute candidate hop sets — intersection of the children's
   sets when non-empty, else their union — counting one entry per forced
   split;
3. top-down, emit an entry only where the hop inherited from the nearest
   emitted ancestor is not in the node's candidate set.

ORTC requires every address to have a decision, i.e. a default route.  When
the input lacks one we follow common practice and treat "no route" as a
virtual :data:`DROP` hop that participates like any other hop.  Emitted DROP
entries are genuine null routes (they may shadow a shorter real entry), so
they count as table entries and must *not* simply be filtered out.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

from repro.net.prefix import Prefix
from repro.trie.node import TrieNode
from repro.trie.trie import BinaryTrie

#: Virtual next hop standing in for "no route" when no default exists.
DROP: int = -1


def compress_ortc(trie: BinaryTrie) -> Dict[Prefix, int]:
    """Return the minimal (overlapping) table equivalent to ``trie``.

    Entries with the virtual :data:`DROP` hop may appear when the source
    table had no default route; they are null routes and part of the table.
    Use :func:`lookup_ortc` for reference lookups that map DROP back to
    "no match".
    """
    sets: Dict[TrieNode, FrozenSet[int]] = {}
    _candidate_sets(trie.root, None, sets)
    table: Dict[Prefix, int] = {}
    _assign(trie.root, Prefix.root(), None, None, sets, table)
    return table


def lookup_ortc(table: Dict[Prefix, int], address: int) -> Optional[int]:
    """Reference LPM over an ORTC table; DROP maps back to "no match"."""
    best: Optional[Prefix] = None
    for prefix in table:
        if prefix.contains_address(address):
            if best is None or prefix.length > best.length:
                best = prefix
    if best is None:
        return None
    hop = table[best]
    return None if hop == DROP else hop


def compressed_size_ortc(trie: BinaryTrie) -> int:
    """Entry count of the ORTC-compressed table (DROP null routes counted)."""
    return len(compress_ortc(trie))


def _candidate_sets(
    node: TrieNode,
    inherited: Optional[int],
    sets: Dict[TrieNode, FrozenSet[int]],
) -> FrozenSet[int]:
    """Pass 1+2: leaf-push effective hops, then merge candidate sets."""
    effective = node.next_hop if node.has_route else inherited
    if node.is_leaf:
        result = frozenset({effective if effective is not None else DROP})
    else:
        sides = []
        for bit in (0, 1):
            child = node.child(bit)
            if child is None:
                sides.append(
                    frozenset({effective if effective is not None else DROP})
                )
            else:
                sides.append(_candidate_sets(child, effective, sets))
        intersection = sides[0] & sides[1]
        result = intersection if intersection else sides[0] | sides[1]
    sets[node] = result
    return result


def _assign(
    node: TrieNode,
    prefix: Prefix,
    covering: Optional[int],
    inherited: Optional[int],
    sets: Dict[TrieNode, FrozenSet[int]],
    table: Dict[Prefix, int],
) -> None:
    """Pass 3: emit entries top-down where the covering hop is unusable.

    ``covering`` is the hop decided by the nearest emitted ancestor entry;
    ``inherited`` is the effective *source-table* hop above this node, needed
    so the leaf-pushed "hole" regions (missing children) can demand their
    own entry when the covering hop would misroute them.
    """
    candidates = sets[node]
    if covering is not None and covering in candidates:
        chosen = covering
    else:
        # Any candidate is optimal; pick deterministically for stable tests.
        chosen = min(candidates)
        table[prefix] = chosen
    effective = node.next_hop if node.has_route else inherited
    for bit in (0, 1):
        child = node.child(bit)
        child_prefix = prefix.child(bit)
        if child is None:
            required = effective if effective is not None else DROP
            if chosen != required:
                table[child_prefix] = required
        else:
            _assign(child, child_prefix, chosen, effective, sets, table)
