"""TTF2 stage: mirroring one routing update into the TCAM.

* CLPL keeps the *uncompressed* table under the Shah–Gupta prefix-length
  ordering: every structural update cascades ~15 shifts (Figure 11's flat
  ≈0.36 µs).  A pure next-hop change rewrites the associated SRAM word in
  place and moves nothing.
* CLUE keeps the *compressed, disjoint* table in an unordered layout: the
  trie stage hands over an entry-level diff and every entry applies in at
  most one shift.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.compress.onrtc import TableDiff
from repro.net.prefix import Prefix
from repro.tcam.device import Tcam
from repro.tcam.update_base import TcamUpdater, UpdateResult
from repro.tcam.update_clue import ClueUpdater
from repro.tcam.update_plo import PloUpdater
from repro.workload.updategen import UpdateMessage

Route = Tuple[Prefix, int]


def _default_capacity(table_size: int) -> int:
    """Provision generous free space: tables churn and fragmentation can
    grow a compressed table well past its initial size before the control
    plane would re-provision."""
    return max(1_024, 2 * table_size + 8_192)


class PloTcamMirror:
    """The full table in one priority-encoder TCAM under PLO (CLPL)."""

    def __init__(
        self, routes: Iterable[Route], capacity: Optional[int] = None
    ) -> None:
        routes = list(routes)
        capacity = capacity or _default_capacity(len(routes))
        self.device = Tcam(capacity, priority_encoder=True)
        self.updater: TcamUpdater = PloUpdater(
            self.device.region(0, capacity)
        )
        self.updater.load(routes)

    def apply(self, message: UpdateMessage) -> UpdateResult:
        """Mirror one update; returns the slot-operation counts."""
        return self.updater.apply(message.prefix, message.next_hop)


class ClueTcamMirror:
    """The compressed table in an encoder-less TCAM under CLUE's layout."""

    def __init__(
        self, routes: Iterable[Route], capacity: Optional[int] = None
    ) -> None:
        routes = list(routes)
        capacity = capacity or _default_capacity(len(routes))
        self.device = Tcam(capacity, priority_encoder=False)
        self.updater = ClueUpdater(self.device.region(0, capacity))
        self.updater.load(routes)

    def apply_diff(self, diff: TableDiff) -> UpdateResult:
        """Apply a compressed-table diff; each entry costs ≤1 shift.

        Removes run before adds so a replace never needs transient space,
        and because the table stays disjoint throughout, lookups remain
        correct at every intermediate step.
        """
        total = UpdateResult()
        for prefix, _hop in diff.removes:
            total = total + self.updater.delete(prefix)
        for prefix, hop in diff.adds:
            if prefix in self.updater:
                total = total + self.updater.modify(prefix, hop)
            else:
                total = total + self.updater.insert(prefix, hop)
        return total
