"""TTF — Time To Fresh, the paper's update-latency metric (Section IV).

One routing update is fresh once all three stages have completed:

* **TTF1** — control-plane trie update (does not interrupt lookups);
* **TTF2** — TCAM update (interrupts lookups: shifts × 24 ns);
* **TTF3** — DRed update (interrupts lookups too).

Costs are *modelled*, not wall-clocked: every stage reports its primitive
operation counts and a cost model converts them to microseconds, exactly as
the paper converts shift counts via the 24 ns CYNSE70256 figure.  This
keeps the figures deterministic and host-independent; wall-clock helpers
exist separately for the curious (``examples/update_latency.py``).

Calibration constants (all overridable):

* ``TRIE_NODE_NS`` — one control-plane trie-node visit (pointer chase on a
  2011-class CPU with warm caches);
* ``SRAM_ACCESS_NS`` — one line-card SRAM access (166 MHz ZBT SRAM, same
  era as the paper's TCAM);
* TCAM ops are charged through :class:`repro.tcam.timing.TcamCostModel`
  (24 ns per move/write).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Callable, List, Optional, Sequence

from repro.tcam.timing import PAPER_COST_MODEL, TcamCostModel

#: Modelled cost of touching one trie node in the control plane.
TRIE_NODE_NS = 5.0

#: Modelled cost of one SRAM access on the line card (RRC-ME walks).
SRAM_ACCESS_NS = 7.0


@dataclass(frozen=True)
class TtfSample:
    """The three stage latencies of one routing update, in microseconds.

    ``ttf23_parallel`` reflects CLUE's hardware layout where the main-table
    shift and the DRed probe hit independent TCAM regions and proceed
    concurrently; schemes whose DRed maintenance *depends* on control-plane
    output (CLPL's RRC-ME) must serialise and use the sum.  This is the
    reading under which the paper's Figure 13 reports CLUE at 0.024 µs.
    """

    timestamp: float
    ttf1_us: float
    ttf2_us: float
    ttf3_us: float
    parallel_23: bool = False

    @property
    def ttf23_us(self) -> float:
        """Data-plane freshness latency (the part that stalls lookups)."""
        if self.parallel_23:
            return max(self.ttf2_us, self.ttf3_us)
        return self.ttf2_us + self.ttf3_us

    @property
    def total_us(self) -> float:
        """Full TTF (Figure 14)."""
        return self.ttf1_us + self.ttf23_us


@dataclass
class TtfReport:
    """A collection of samples with the aggregations the figures plot."""

    scheme: str
    samples: List[TtfSample] = field(default_factory=list)

    def add(self, sample: TtfSample) -> None:
        self.samples.append(sample)

    def __len__(self) -> int:
        return len(self.samples)

    # -- aggregate views ---------------------------------------------------

    def _agg(
        self, selector: Callable[[TtfSample], float]
    ) -> "TtfSummary":
        values = [selector(sample) for sample in self.samples]
        if not values:
            return TtfSummary(0.0, 0.0, 0.0)
        return TtfSummary(min(values), mean(values), max(values))

    def ttf1(self) -> "TtfSummary":
        return self._agg(lambda s: s.ttf1_us)

    def ttf2(self) -> "TtfSummary":
        return self._agg(lambda s: s.ttf2_us)

    def ttf3(self) -> "TtfSummary":
        return self._agg(lambda s: s.ttf3_us)

    def ttf23(self) -> "TtfSummary":
        return self._agg(lambda s: s.ttf23_us)

    def total(self) -> "TtfSummary":
        return self._agg(lambda s: s.total_us)

    def windowed(
        self,
        selector: Callable[[TtfSample], float],
        window_seconds: float,
    ) -> List["TtfWindow"]:
        """Time-bucketed means — the x-axis of Figures 10-14."""
        if window_seconds <= 0:
            raise ValueError("window must be positive")
        windows: List[TtfWindow] = []
        bucket: List[float] = []
        bucket_start = 0.0
        for sample in sorted(self.samples, key=lambda s: s.timestamp):
            while sample.timestamp >= bucket_start + window_seconds:
                if bucket:
                    windows.append(
                        TtfWindow(bucket_start, mean(bucket), len(bucket))
                    )
                    bucket = []
                bucket_start += window_seconds
            bucket.append(selector(sample))
        if bucket:
            windows.append(TtfWindow(bucket_start, mean(bucket), len(bucket)))
        return windows


@dataclass(frozen=True)
class TtfSummary:
    """min / mean / max of one TTF component, in microseconds."""

    min_us: float
    mean_us: float
    max_us: float


@dataclass(frozen=True)
class TtfWindow:
    """One time bucket of a TTF series."""

    start_seconds: float
    mean_us: float
    count: int


@dataclass(frozen=True)
class UpdateCostModel:
    """Converts stage operation counts into TTF microseconds."""

    trie_node_ns: float = TRIE_NODE_NS
    sram_access_ns: float = SRAM_ACCESS_NS
    tcam: TcamCostModel = PAPER_COST_MODEL

    def trie_us(self, nodes_touched: int) -> float:
        return nodes_touched * self.trie_node_ns / 1_000.0

    def tcam_us(self, moves: int, writes: int = 0, invalidates: int = 0) -> float:
        return self.tcam.update_cost_ns(moves, writes, invalidates) / 1_000.0

    def dred_us(self, sram_accesses: int, tcam_ops: int) -> float:
        return (
            sram_accesses * self.sram_access_ns
            + self.tcam.move_ns * tcam_ops
        ) / 1_000.0


def ratio_of_means(
    numerator: Sequence[float], denominator: Sequence[float]
) -> Optional[float]:
    """mean(numerator)/mean(denominator), None when undefined."""
    if not numerator or not denominator:
        return None
    denominator_mean = mean(denominator)
    if denominator_mean == 0:
        return None
    return mean(numerator) / denominator_mean
