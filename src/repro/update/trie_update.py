"""TTF1 stage: applying one routing update to the control-plane trie.

Two updaters mirror the paper's comparison:

* :class:`PlainTrieUpdater` — CLPL's ground truth: no compression, so an
  update touches only the nodes on the prefix's path;
* :class:`OnrtcTrieUpdater` — CLUE: the incremental ONRTC compressor also
  repairs its DP labels and re-emits the affected region, so it touches the
  path *plus* the relabelled nodes — which is why TTF1-CLUE runs a little
  longer than ground truth (Figure 10).

Both report the number of nodes touched; the cost model prices them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from repro.compress.labels import CompressionMode
from repro.compress.onrtc import OnrtcTable, TableDiff
from repro.net.prefix import Prefix
from repro.trie.trie import BinaryTrie
from repro.workload.updategen import UpdateKind, UpdateMessage

Route = Tuple[Prefix, int]


@dataclass(frozen=True)
class TrieUpdateOutcome:
    """What one trie update did: its work measure and the table diff.

    ``diff`` is ``None`` for the uncompressed updater (the TCAM mirrors the
    trie one-to-one there); for ONRTC it lists the exact compressed-table
    entry changes the TCAM stage must apply.
    """

    nodes_touched: int
    diff: Optional[TableDiff] = None


class PlainTrieUpdater:
    """Uncompressed trie maintenance (CLPL's TTF1 ground truth)."""

    def __init__(self, routes: Iterable[Route]) -> None:
        self.trie = BinaryTrie.from_routes(routes)

    def apply(self, message: UpdateMessage) -> TrieUpdateOutcome:
        path_nodes = message.prefix.length + 1
        if message.kind is UpdateKind.ANNOUNCE:
            assert message.next_hop is not None
            self.trie.insert(message.prefix, message.next_hop)
            return TrieUpdateOutcome(nodes_touched=path_nodes)
        removal = self.trie.remove_route(message.prefix)
        pruned = len(removal[1]) if removal is not None else 0
        return TrieUpdateOutcome(nodes_touched=path_nodes + pruned)


class OnrtcTrieUpdater:
    """ONRTC-compressed trie maintenance (CLUE's TTF1).

    Work = the path walk, plus every node whose DP label was recomputed,
    plus one touch per compressed-table entry the diff emits (building the
    TCAM work order).

    ``lazy=True`` swaps in the bounded-work maintainer
    (:class:`~repro.compress.lazy.LazyOnrtcTable`): strictly local repairs,
    no merge propagation, table allowed to drift from minimal.
    """

    def __init__(
        self,
        routes: Iterable[Route],
        mode: CompressionMode = CompressionMode.DONT_CARE,
        lazy: bool = False,
    ) -> None:
        if lazy:
            from repro.compress.lazy import LazyOnrtcTable

            self.table = LazyOnrtcTable(routes, mode=mode)
        else:
            self.table = OnrtcTable(routes, mode=mode)

    def apply(self, message: UpdateMessage) -> TrieUpdateOutcome:
        path_nodes = message.prefix.length + 1
        if message.kind is UpdateKind.ANNOUNCE:
            assert message.next_hop is not None
            diff = self.table.announce(message.prefix, message.next_hop)
        else:
            diff = self.table.withdraw(message.prefix)
        work = path_nodes + diff.relabelled + diff.entry_changes
        return TrieUpdateOutcome(nodes_touched=work, diff=diff)
