"""TTF3 stage: keeping the DRed partitions coherent with the table.

CLUE (Section IV-C): *"when inserting a prefix in home TCAM, CLUE's DRed
needs no change; when deleting a prefix, CLUE just lookups it in the DRed.
If it exists, just delete it; otherwise, do nothing."*  The probe hits all
DRed banks concurrently (they are separate TCAM regions), so the charge is
one TCAM operation — the flat 0.024 µs of Figure 12.

CLPL must instead re-run RRC-ME bookkeeping on the control-plane trie to
find which cached *expansions* the update invalidated — a multi-access SRAM
walk — and then fix each affected cache entry.  That walk is the 0.18–0.29
µs band of Figure 12 and the data-plane/control-plane chatter the paper
calls out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.compress.onrtc import TableDiff
from repro.engine.dred import DredCache
from repro.net.prefix import Prefix
from repro.trie.node import TrieNode
from repro.trie.trie import BinaryTrie
from repro.workload.updategen import UpdateKind, UpdateMessage

#: Cap on how much of the updated prefix's subtree the CLPL walk inspects
#: per update (the affected-expansion search is localised around the
#: update; a handful of nodes in practice).
SUBTREE_SCAN_LIMIT = 8


@dataclass(frozen=True)
class DredUpdateOutcome:
    """Cost and effect of one DRed-coherence step."""

    sram_accesses: int
    tcam_ops: int
    entries_removed: int


class ClueDredUpdater:
    """Direct DRed coherence: one parallel probe, no control plane."""

    def __init__(self, caches: Optional[Sequence[DredCache]] = None) -> None:
        self.caches: List[DredCache] = list(caches) if caches else []

    def apply(
        self, message: UpdateMessage, diff: Optional[TableDiff]
    ) -> DredUpdateOutcome:
        """Probe the banks for every entry the table diff removed.

        Inserted entries need nothing (they cannot be cached yet); each
        removed or replaced entry is one concurrent probe-and-invalidate
        across all banks.  ``diff`` may be ``None`` when the caller tracks
        the uncompressed table directly; then the updated prefix itself is
        probed on withdraw.
        """
        removed = 0
        if diff is not None:
            targets = [prefix for prefix, _ in diff.removes]
        elif message.kind is UpdateKind.WITHDRAW:
            targets = [message.prefix]
        else:
            targets = []
        for prefix in targets:
            for cache in self.caches:
                if cache.delete(prefix):
                    removed += 1
        # One parallel probe per target (all banks at once); a pure insert
        # still performs a single sanity probe, matching the paper's flat
        # one-operation TTF3.
        ops = max(1, len(targets))
        return DredUpdateOutcome(
            sram_accesses=0, tcam_ops=ops, entries_removed=removed
        )


class ClplDredUpdater:
    """RRC-ME-based DRed coherence (CLPL).

    The control plane walks the SRAM trie along the updated prefix and
    through the neighbourhood beneath it to determine which cached
    expansions the update may have invalidated, then removes them from
    every logical cache.
    """

    def __init__(
        self,
        reference: BinaryTrie,
        caches: Optional[Sequence[DredCache]] = None,
    ) -> None:
        self.reference = reference
        self.caches: List[DredCache] = list(caches) if caches else []

    def _walk_cost(self, prefix: Prefix) -> int:
        """SRAM accesses of the affected-expansion search.

        Path to the prefix plus a bounded exploration of the subtree under
        it (expansions overlapping the update live there).
        """
        accesses = prefix.length + 1
        node = self.reference.find_node(prefix)
        if node is None:
            return accesses
        stack: List[TrieNode] = [node]
        scanned = 0
        while stack and scanned < SUBTREE_SCAN_LIMIT:
            current = stack.pop()
            scanned += 1
            if current.left is not None:
                stack.append(current.left)
            if current.right is not None:
                stack.append(current.right)
        return accesses + scanned

    def apply(
        self, message: UpdateMessage, diff: Optional[TableDiff] = None
    ) -> DredUpdateOutcome:
        del diff  # CLPL tracks the uncompressed table directly
        sram = self._walk_cost(message.prefix)
        removed = 0
        for cache in self.caches:
            victims, _scanned = cache.invalidate_overlapping(message.prefix)
            removed += victims
        # Each invalidated cache entry is one TCAM operation; the probe
        # itself costs one even when nothing was cached.
        ops = max(1, removed)
        return DredUpdateOutcome(
            sram_accesses=sram, tcam_ops=ops, entries_removed=removed
        )
