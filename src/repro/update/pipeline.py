"""The whole incremental update pipeline (Figure 6): trie → TCAM → DRed.

Two end-to-end pipelines apply the same BGP update stream and produce
per-update :class:`~repro.update.ttf.TtfSample` records:

* :class:`ClueUpdatePipeline` — incremental ONRTC, O(1) TCAM layout,
  direct parallel DRed probe (stages 2 and 3 overlap in hardware);
* :class:`ClplUpdatePipeline` — plain trie, Shah–Gupta PLO layout, RRC-ME
  DRed bookkeeping (stage 3 waits on the control plane).

Each pipeline owns real data structures (not just cost counters): the TCAM
mirrors hold actual slots and the tests verify that, after any update
sequence, CLUE's TCAM still contains exactly the freshly-compressed table
and serves correct lookups with the priority encoder off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.compress.labels import CompressionMode
from repro.compress.onrtc import TableDiff
from repro.engine.dred import DredCache
from repro.engine.queues import UpdateQueue
from repro.net.prefix import Prefix
from repro.update.dred_update import ClplDredUpdater, ClueDredUpdater
from repro.update.tcam_update import ClueTcamMirror, PloTcamMirror
from repro.update.trie_update import OnrtcTrieUpdater, PlainTrieUpdater
from repro.update.ttf import TtfReport, TtfSample, UpdateCostModel
from repro.workload.updategen import UpdateMessage

Route = Tuple[Prefix, int]


def default_dred_banks(
    count: int, capacity: int, exclude_own: bool
) -> List[DredCache]:
    """A bank of DRed caches as the engines provision them."""
    return [
        DredCache(capacity, chip_index, exclude_own)
        for chip_index in range(count)
    ]


@dataclass
class PipelineTotals:
    """Aggregate operation counts over a whole stream (sanity/benchmarks)."""

    updates: int = 0
    tcam_moves: int = 0
    tcam_writes: int = 0
    dred_ops: int = 0
    sram_accesses: int = 0
    trie_nodes: int = 0


class ClueUpdatePipeline:
    """CLUE's three-stage update path over real structures."""

    def __init__(
        self,
        routes: Iterable[Route],
        mode: CompressionMode = CompressionMode.DONT_CARE,
        cost_model: Optional[UpdateCostModel] = None,
        dred_banks: Optional[Sequence[DredCache]] = None,
        tcam_capacity: Optional[int] = None,
        lazy: bool = False,
    ) -> None:
        routes = list(routes)
        self.cost_model = cost_model or UpdateCostModel()
        self.trie_stage = OnrtcTrieUpdater(routes, mode=mode, lazy=lazy)
        self.tcam_stage = ClueTcamMirror(
            self.trie_stage.table.routes(), capacity=tcam_capacity
        )
        self.dred_stage = ClueDredUpdater(dred_banks)
        self.report = TtfReport("clue")
        self.totals = PipelineTotals()
        #: Entry-level diff of the most recent update (for callers that
        #: mirror the compressed table elsewhere, e.g. live engine chips).
        self.last_diff = None

    def apply(self, message: UpdateMessage) -> TtfSample:
        """Run one update through all three stages."""
        outcome = self.trie_stage.apply(message)
        assert outcome.diff is not None
        self.last_diff = outcome.diff
        tcam_result = self.tcam_stage.apply_diff(outcome.diff)
        dred_result = self.dred_stage.apply(message, outcome.diff)

        model = self.cost_model
        sample = TtfSample(
            timestamp=message.timestamp,
            ttf1_us=model.trie_us(outcome.nodes_touched),
            ttf2_us=model.tcam_us(
                tcam_result.moves, tcam_result.writes, tcam_result.invalidates
            ),
            ttf3_us=model.dred_us(0, dred_result.tcam_ops),
            parallel_23=True,
        )
        self.report.add(sample)
        totals = self.totals
        totals.updates += 1
        totals.tcam_moves += tcam_result.moves
        totals.tcam_writes += tcam_result.writes
        totals.dred_ops += dred_result.tcam_ops
        totals.trie_nodes += outcome.nodes_touched
        return sample

    def run(self, messages: Iterable[UpdateMessage]) -> TtfReport:
        """Apply a whole stream; returns the accumulated report."""
        for message in messages:
            self.apply(message)
        return self.report

    # -- invariants --------------------------------------------------------

    def tcam_matches_table(self) -> bool:
        """The TCAM content equals the current compressed table exactly."""
        stored = {
            entry.prefix: entry.next_hop
            for entry in self.tcam_stage.updater.entries()
        }
        return stored == self.trie_stage.table.table


@dataclass
class SchedulerStats:
    """What the backpressured scheduler did to an update stream."""

    offered: int = 0
    applied: int = 0
    pump_calls: int = 0
    shed: int = 0
    deferred: int = 0
    flushed_diffs: int = 0
    storm_entries: int = 0
    storm_exits: int = 0

    @property
    def pending_flush(self) -> int:
        """Deferred diffs not yet written to the TCAM mirror."""
        return self.deferred - self.flushed_diffs


class UpdateScheduler:
    """Bounded admission and storm-mode batching for a CLUE pipeline.

    A BGP storm must not stall lookups: TCAM writes occupy the chips'
    access ports, so blindly applying a 35K-msg/s burst turns the line card
    into an update processor.  The scheduler keeps a bounded
    :class:`~repro.engine.queues.UpdateQueue` in front of the pipeline and
    switches discipline by occupancy:

    * **calm** (below ``high_watermark``) — every pumped update runs the
      full three-stage pipeline, TCAM writes included;
    * **storm** (at/above ``high_watermark``) — pumped updates run the trie
      stage (so the control plane stays fresh) and the DRed invalidation
      (so no stale cached answer survives), but the TCAM *mirror* writes
      are deferred as batched diffs — the lazy discipline — and flushed
      once occupancy falls to ``low_watermark`` (or on :meth:`flush`).

    ``on_diff`` is invoked with every update's entry diff the moment the
    trie stage produces it; the integrated system uses it to keep the live
    chips' tables correct in both modes (chip-table writes model the SRAM
    shadow, not the slow TCAM port).  Offers to a full queue are *shed* and
    counted — the caller sees ``False`` and is expected to rely on BGP
    re-advertisement, never on the queue blocking the data plane.
    """

    def __init__(
        self,
        pipeline: "ClueUpdatePipeline",
        capacity: int = 256,
        high_watermark: float = 0.75,
        low_watermark: float = 0.25,
        on_diff: Optional[Callable[[TableDiff], None]] = None,
    ) -> None:
        if not 0.0 < high_watermark <= 1.0:
            raise ValueError("high watermark must be in (0, 1]")
        if not 0.0 <= low_watermark < high_watermark:
            raise ValueError("low watermark must be below the high one")
        self.pipeline = pipeline
        self.queue: UpdateQueue[UpdateMessage] = UpdateQueue(capacity)
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.on_diff = on_diff
        #: Called with the batch size after every non-empty flush — the
        #: persistence layer journals these boundaries so a replay can
        #: verify it reproduced the same batching.
        self.on_flush: Optional[Callable[[int], None]] = None
        self.storm_mode = False
        self.stats = SchedulerStats()
        # Deferred diffs carry the admission order they were produced in;
        # flush() asserts it is preserved (TCAM writes must not reorder).
        self._deferred_diffs: List[Tuple[int, TableDiff]] = []
        self._defer_seq = 0

    # ------------------------------------------------------------------

    def offer(self, message: UpdateMessage) -> bool:
        """Admit one update; ``False`` means the queue shed it."""
        self.stats.offered += 1
        accepted = self.queue.offer(message)
        if not accepted:
            self.stats.shed += 1
        self._update_mode()
        return accepted

    def pump(self, budget: int = 8) -> int:
        """Apply up to ``budget`` queued updates; returns how many ran."""
        if budget < 0:
            raise ValueError("pump budget must be non-negative")
        # Counted even when nothing runs: recovery derives the driving
        # cadence from durable state, so every call must be visible.
        self.stats.pump_calls += 1
        applied = 0
        while applied < budget and not self.queue.is_empty:
            message = self.queue.pop()
            if self.storm_mode:
                self._apply_deferred(message)
            else:
                self.pipeline.apply(message)
                self._notify(self.pipeline.last_diff)
            applied += 1
            self.stats.applied += 1
            self._update_mode()
        return applied

    def drain(self) -> int:
        """Pump until the queue is empty, then flush; returns total applied."""
        applied = 0
        while not self.queue.is_empty:
            applied += self.pump(budget=len(self.queue))
        self.flush()
        return applied

    def flush(self) -> int:
        """Write every deferred diff to the TCAM mirror; returns the count.

        After a flush ``pipeline.tcam_matches_table()`` holds again — the
        lazy discipline trades a bounded staleness window of the *mirror*
        (never of the lookup path) for storm survival.  Diffs are applied
        strictly in the order their updates were admitted (asserted): the
        ONRTC diffs are not commutative, so reordering could leave the
        mirror diverged from the table.
        """
        flushed = 0
        previous_seq = 0
        for seq, diff in self._deferred_diffs:
            assert seq > previous_seq, (
                "deferred TCAM diffs must be flushed in offer order "
                f"(saw seq {seq} after {previous_seq})"
            )
            previous_seq = seq
            self.pipeline.tcam_stage.apply_diff(diff)
            flushed += 1
        self._deferred_diffs.clear()
        self.stats.flushed_diffs += flushed
        if flushed and self.on_flush is not None:
            self.on_flush(flushed)
        return flushed

    # -- persistence hooks -------------------------------------------------

    def pending_diffs(self) -> List[Tuple[int, TableDiff]]:
        """A copy of the deferred (seq, diff) batch, oldest first."""
        return list(self._deferred_diffs)

    def restore_deferred(
        self, diffs: Sequence[Tuple[int, TableDiff]], next_seq: int
    ) -> None:
        """Reload a deferred batch captured by :meth:`pending_diffs`."""
        self._deferred_diffs = list(diffs)
        self._defer_seq = next_seq

    # ------------------------------------------------------------------

    def _apply_deferred(self, message: UpdateMessage) -> None:
        """Storm discipline: trie + DRed now, TCAM write later."""
        outcome = self.pipeline.trie_stage.apply(message)
        assert outcome.diff is not None
        self.pipeline.last_diff = outcome.diff
        self.pipeline.dred_stage.apply(message, outcome.diff)
        self._defer_seq += 1
        self._deferred_diffs.append((self._defer_seq, outcome.diff))
        self.stats.deferred += 1
        self.queue.deferred += 1
        self.pipeline.totals.updates += 1
        self.pipeline.totals.trie_nodes += outcome.nodes_touched
        self._notify(outcome.diff)

    def _notify(self, diff: Optional[TableDiff]) -> None:
        if diff is not None and self.on_diff is not None:
            self.on_diff(diff)

    def _update_mode(self) -> None:
        occupancy = self.queue.occupancy
        if not self.storm_mode and occupancy >= self.high_watermark:
            self.storm_mode = True
            self.stats.storm_entries += 1
        elif self.storm_mode and occupancy <= self.low_watermark:
            self.storm_mode = False
            self.stats.storm_exits += 1
            self.flush()


class ClplUpdatePipeline:
    """The baseline pipeline: plain trie, PLO TCAM, RRC-ME DRed."""

    def __init__(
        self,
        routes: Iterable[Route],
        cost_model: Optional[UpdateCostModel] = None,
        dred_banks: Optional[Sequence[DredCache]] = None,
        tcam_capacity: Optional[int] = None,
    ) -> None:
        routes = list(routes)
        self.cost_model = cost_model or UpdateCostModel()
        self.trie_stage = PlainTrieUpdater(routes)
        self.tcam_stage = PloTcamMirror(routes, capacity=tcam_capacity)
        self.dred_stage = ClplDredUpdater(self.trie_stage.trie, dred_banks)
        self.report = TtfReport("clpl")
        self.totals = PipelineTotals()

    def apply(self, message: UpdateMessage) -> TtfSample:
        outcome = self.trie_stage.apply(message)
        tcam_result = self.tcam_stage.apply(message)
        dred_result = self.dred_stage.apply(message)

        model = self.cost_model
        sample = TtfSample(
            timestamp=message.timestamp,
            ttf1_us=model.trie_us(outcome.nodes_touched),
            ttf2_us=model.tcam_us(
                tcam_result.moves, tcam_result.writes, tcam_result.invalidates
            ),
            ttf3_us=model.dred_us(
                dred_result.sram_accesses, dred_result.tcam_ops
            ),
            parallel_23=False,
        )
        self.report.add(sample)
        totals = self.totals
        totals.updates += 1
        totals.tcam_moves += tcam_result.moves
        totals.tcam_writes += tcam_result.writes
        totals.dred_ops += dred_result.tcam_ops
        totals.sram_accesses += dred_result.sram_accesses
        totals.trie_nodes += outcome.nodes_touched
        return sample

    def run(self, messages: Iterable[UpdateMessage]) -> TtfReport:
        for message in messages:
            self.apply(message)
        return self.report

    # -- invariants --------------------------------------------------------

    def tcam_matches_table(self) -> bool:
        """The TCAM content equals the uncompressed table exactly."""
        stored = {
            entry.prefix: entry.next_hop
            for entry in self.tcam_stage.updater.entries()
        }
        return stored == self.trie_stage.trie.as_dict()
