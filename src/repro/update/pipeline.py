"""The whole incremental update pipeline (Figure 6): trie → TCAM → DRed.

Two end-to-end pipelines apply the same BGP update stream and produce
per-update :class:`~repro.update.ttf.TtfSample` records:

* :class:`ClueUpdatePipeline` — incremental ONRTC, O(1) TCAM layout,
  direct parallel DRed probe (stages 2 and 3 overlap in hardware);
* :class:`ClplUpdatePipeline` — plain trie, Shah–Gupta PLO layout, RRC-ME
  DRed bookkeeping (stage 3 waits on the control plane).

Each pipeline owns real data structures (not just cost counters): the TCAM
mirrors hold actual slots and the tests verify that, after any update
sequence, CLUE's TCAM still contains exactly the freshly-compressed table
and serves correct lookups with the priority encoder off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.compress.labels import CompressionMode
from repro.engine.dred import DredCache
from repro.net.prefix import Prefix
from repro.update.dred_update import ClplDredUpdater, ClueDredUpdater
from repro.update.tcam_update import ClueTcamMirror, PloTcamMirror
from repro.update.trie_update import OnrtcTrieUpdater, PlainTrieUpdater
from repro.update.ttf import TtfReport, TtfSample, UpdateCostModel
from repro.workload.updategen import UpdateMessage

Route = Tuple[Prefix, int]


def default_dred_banks(
    count: int, capacity: int, exclude_own: bool
) -> List[DredCache]:
    """A bank of DRed caches as the engines provision them."""
    return [
        DredCache(capacity, chip_index, exclude_own)
        for chip_index in range(count)
    ]


@dataclass
class PipelineTotals:
    """Aggregate operation counts over a whole stream (sanity/benchmarks)."""

    updates: int = 0
    tcam_moves: int = 0
    tcam_writes: int = 0
    dred_ops: int = 0
    sram_accesses: int = 0
    trie_nodes: int = 0


class ClueUpdatePipeline:
    """CLUE's three-stage update path over real structures."""

    def __init__(
        self,
        routes: Iterable[Route],
        mode: CompressionMode = CompressionMode.DONT_CARE,
        cost_model: Optional[UpdateCostModel] = None,
        dred_banks: Optional[Sequence[DredCache]] = None,
        tcam_capacity: Optional[int] = None,
        lazy: bool = False,
    ) -> None:
        routes = list(routes)
        self.cost_model = cost_model or UpdateCostModel()
        self.trie_stage = OnrtcTrieUpdater(routes, mode=mode, lazy=lazy)
        self.tcam_stage = ClueTcamMirror(
            self.trie_stage.table.routes(), capacity=tcam_capacity
        )
        self.dred_stage = ClueDredUpdater(dred_banks)
        self.report = TtfReport("clue")
        self.totals = PipelineTotals()
        #: Entry-level diff of the most recent update (for callers that
        #: mirror the compressed table elsewhere, e.g. live engine chips).
        self.last_diff = None

    def apply(self, message: UpdateMessage) -> TtfSample:
        """Run one update through all three stages."""
        outcome = self.trie_stage.apply(message)
        assert outcome.diff is not None
        self.last_diff = outcome.diff
        tcam_result = self.tcam_stage.apply_diff(outcome.diff)
        dred_result = self.dred_stage.apply(message, outcome.diff)

        model = self.cost_model
        sample = TtfSample(
            timestamp=message.timestamp,
            ttf1_us=model.trie_us(outcome.nodes_touched),
            ttf2_us=model.tcam_us(
                tcam_result.moves, tcam_result.writes, tcam_result.invalidates
            ),
            ttf3_us=model.dred_us(0, dred_result.tcam_ops),
            parallel_23=True,
        )
        self.report.add(sample)
        totals = self.totals
        totals.updates += 1
        totals.tcam_moves += tcam_result.moves
        totals.tcam_writes += tcam_result.writes
        totals.dred_ops += dred_result.tcam_ops
        totals.trie_nodes += outcome.nodes_touched
        return sample

    def run(self, messages: Iterable[UpdateMessage]) -> TtfReport:
        """Apply a whole stream; returns the accumulated report."""
        for message in messages:
            self.apply(message)
        return self.report

    # -- invariants --------------------------------------------------------

    def tcam_matches_table(self) -> bool:
        """The TCAM content equals the current compressed table exactly."""
        stored = {
            entry.prefix: entry.next_hop
            for entry in self.tcam_stage.updater.entries()
        }
        return stored == self.trie_stage.table.table


class ClplUpdatePipeline:
    """The baseline pipeline: plain trie, PLO TCAM, RRC-ME DRed."""

    def __init__(
        self,
        routes: Iterable[Route],
        cost_model: Optional[UpdateCostModel] = None,
        dred_banks: Optional[Sequence[DredCache]] = None,
        tcam_capacity: Optional[int] = None,
    ) -> None:
        routes = list(routes)
        self.cost_model = cost_model or UpdateCostModel()
        self.trie_stage = PlainTrieUpdater(routes)
        self.tcam_stage = PloTcamMirror(routes, capacity=tcam_capacity)
        self.dred_stage = ClplDredUpdater(self.trie_stage.trie, dred_banks)
        self.report = TtfReport("clpl")
        self.totals = PipelineTotals()

    def apply(self, message: UpdateMessage) -> TtfSample:
        outcome = self.trie_stage.apply(message)
        tcam_result = self.tcam_stage.apply(message)
        dred_result = self.dred_stage.apply(message)

        model = self.cost_model
        sample = TtfSample(
            timestamp=message.timestamp,
            ttf1_us=model.trie_us(outcome.nodes_touched),
            ttf2_us=model.tcam_us(
                tcam_result.moves, tcam_result.writes, tcam_result.invalidates
            ),
            ttf3_us=model.dred_us(
                dred_result.sram_accesses, dred_result.tcam_ops
            ),
            parallel_23=False,
        )
        self.report.add(sample)
        totals = self.totals
        totals.updates += 1
        totals.tcam_moves += tcam_result.moves
        totals.tcam_writes += tcam_result.writes
        totals.dred_ops += dred_result.tcam_ops
        totals.sram_accesses += dred_result.sram_accesses
        totals.trie_nodes += outcome.nodes_touched
        return sample

    def run(self, messages: Iterable[UpdateMessage]) -> TtfReport:
        for message in messages:
            self.apply(message)
        return self.report

    # -- invariants --------------------------------------------------------

    def tcam_matches_table(self) -> bool:
        """The TCAM content equals the uncompressed table exactly."""
        stored = {
            entry.prefix: entry.next_hop
            for entry in self.tcam_stage.updater.entries()
        }
        return stored == self.trie_stage.trie.as_dict()
