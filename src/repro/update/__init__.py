"""Incremental update pipeline and TTF accounting (Section IV)."""

from repro.update.dred_update import (
    ClplDredUpdater,
    ClueDredUpdater,
    DredUpdateOutcome,
)
from repro.update.pipeline import (
    ClplUpdatePipeline,
    ClueUpdatePipeline,
    PipelineTotals,
    SchedulerStats,
    UpdateScheduler,
    default_dred_banks,
)
from repro.update.tcam_update import ClueTcamMirror, PloTcamMirror
from repro.update.trie_update import (
    OnrtcTrieUpdater,
    PlainTrieUpdater,
    TrieUpdateOutcome,
)
from repro.update.ttf import (
    SRAM_ACCESS_NS,
    TRIE_NODE_NS,
    TtfReport,
    TtfSample,
    TtfSummary,
    TtfWindow,
    UpdateCostModel,
    ratio_of_means,
)

__all__ = [
    "SRAM_ACCESS_NS",
    "TRIE_NODE_NS",
    "ClplDredUpdater",
    "ClplUpdatePipeline",
    "ClueDredUpdater",
    "ClueTcamMirror",
    "ClueUpdatePipeline",
    "DredUpdateOutcome",
    "OnrtcTrieUpdater",
    "PipelineTotals",
    "PlainTrieUpdater",
    "PloTcamMirror",
    "SchedulerStats",
    "TrieUpdateOutcome",
    "TtfReport",
    "TtfSample",
    "TtfSummary",
    "TtfWindow",
    "UpdateCostModel",
    "UpdateScheduler",
    "default_dred_banks",
    "ratio_of_means",
]
