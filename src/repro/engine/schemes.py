"""Load-balancing scheme policies: CLUE, CLPL, SLPL, round-robin.

A :class:`SchemePolicy` captures the two decisions that differ between the
paper's contenders:

* **divert** — where a packet goes when its home queue is full (rule (b)),
  and what kind of lookup it becomes there;
* **on_main_hit** — how the redundancy (DRed or static replicas) is kept
  warm after a successful main-table lookup.

The structural differences the paper emphasises fall out of these hooks:
CLUE inserts the *hit prefix itself* into the other chips' DReds (data
plane only), CLPL must run RRC-ME on the control-plane trie and inserts
into *all* DReds including the home chip's own, SLPL has no dynamic
redundancy at all.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Optional, Tuple

from repro.engine.events import LookupKind
from repro.engine.rrcme import minimal_expansion
from repro.net.prefix import Prefix
from repro.trie.trie import BinaryTrie

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.simulator import LookupEngine, Packet


class SchemePolicy(abc.ABC):
    """Pluggable behaviour of one load-balancing scheme."""

    #: Scheme identifier used in reports.
    name: str = "abstract"
    #: Whether chips carry a DRed partition at all.
    uses_dred: bool = True
    #: CLUE's exclusion rule: DRed *i* refuses chip *i*'s own prefixes.
    exclude_own_dred: bool = False

    def divert(
        self, engine: "LookupEngine", packet: "Packet"
    ) -> Optional[Tuple[int, LookupKind]]:
        """Target for a packet whose home queue is full; None = must wait."""
        chip = engine.idlest_chip(exclude=packet.home)
        if chip is None:
            return None
        return chip, LookupKind.DRED

    @abc.abstractmethod
    def on_main_hit(
        self,
        engine: "LookupEngine",
        chip_index: int,
        address: int,
        prefix: Prefix,
        next_hop: int,
    ) -> None:
        """Maintain redundancy after a main-partition hit."""


class CluePolicy(SchemePolicy):
    """CLUE (Section III-C): direct insertion, own-chip exclusion.

    Because the table is disjoint, the prefix that hit *is* cacheable as-is;
    it is pushed straight into the other chips' DReds with no control-plane
    involvement (Figure 4).
    """

    name = "clue"
    exclude_own_dred = True

    def on_main_hit(self, engine, chip_index, address, prefix, next_hop):
        for other in engine.chips:
            if other.index == chip_index:
                continue
            # A range-spanning entry is replicated into several chips'
            # main partitions; caching it in those chips' DReds would
            # break the exclusion rule (and waste a slot on a prefix the
            # chip can already answer in MAIN).
            if other.table.get(prefix) is not None:
                continue
            if other.dred.insert(prefix, next_hop, owner=chip_index):
                engine.stats.dred_insertions += 1


class ClplPolicy(SchemePolicy):
    """CLPL (Lin et al.): RRC-ME expansion via the control plane.

    Every main hit triggers a control-plane interaction: the trie in SRAM is
    walked to compute the minimal non-overlapped expansion (Figure 3), and
    the result is inserted into all N logical caches — including the home
    chip's own, which CLUE shows is wasted space.
    """

    name = "clpl"
    exclude_own_dred = False

    def on_main_hit(self, engine, chip_index, address, prefix, next_hop):
        reference = engine.reference
        assert reference is not None, "CLPL needs the control-plane trie"
        expansion = minimal_expansion(reference, address)
        engine.stats.control_plane_interactions += 1
        if expansion is None:
            return
        engine.stats.sram_accesses += expansion.sram_accesses
        for other in engine.chips:
            if other.dred.insert(
                expansion.prefix, expansion.next_hop, owner=chip_index
            ):
                engine.stats.dred_insertions += 1


class SlplPolicy(SchemePolicy):
    """SLPL (Zheng et al.): static replicas chosen from long-term statistics.

    Hot prefixes (picked offline from a training trace) are replicated into
    every chip's main partition; a diverted packet can be served by a MAIN
    lookup anywhere *if* its destination is hot.  Cold destinations have a
    single home and simply wait — the scheme's worst-case weakness.
    """

    name = "slpl"
    uses_dred = False

    def __init__(self, hot_set: BinaryTrie) -> None:
        self.hot_set = hot_set

    def divert(self, engine, packet):
        if self.hot_set.lookup(packet.address) is None:
            return None
        chip = engine.idlest_chip(exclude=packet.home)
        if chip is None:
            return None
        return chip, LookupKind.MAIN

    def on_main_hit(self, engine, chip_index, address, prefix, next_hop):
        return None  # static redundancy: nothing to maintain


class RoundRobinPolicy(SchemePolicy):
    """Full duplication baseline: every chip holds the whole table.

    The Indexing Logic degenerates to a round-robin counter, so the policy
    only needs to serve diverted packets with MAIN lookups (any chip can
    answer anything).
    """

    name = "round-robin"
    uses_dred = False

    def divert(self, engine, packet):
        chip = engine.idlest_chip(exclude=None)
        if chip is None:
            return None
        return chip, LookupKind.MAIN

    def on_main_hit(self, engine, chip_index, address, prefix, next_hop):
        return None
