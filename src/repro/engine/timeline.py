"""Optional per-cycle timeline sampling for the lookup engine.

The aggregate counters in :class:`~repro.engine.stats.EngineStats` hide
dynamics: how queue depths breathe during a burst, when the DRed warms up,
how long the backlog takes to drain.  A :class:`Timeline` attaches to an
engine and records a sample every ``interval`` cycles; it is opt-in
because sampling costs a few percent of simulation speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.simulator import LookupEngine


@dataclass(frozen=True)
class TimelineSample:
    """One snapshot of engine state."""

    cycle: int
    queue_depths: List[int]
    busy_chips: int
    backlog: int
    completions: int
    dred_hit_rate: float
    dead_chips: int = 0


class Timeline:
    """Periodic engine-state sampler.

    >>> # timeline = Timeline(engine, interval=100); engine.run(...)
    >>> # timeline.samples -> [TimelineSample, ...]
    """

    def __init__(self, engine: "LookupEngine", interval: int = 100) -> None:
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.engine = engine
        self.interval = interval
        self.samples: List[TimelineSample] = []
        engine.on_cycle = self._on_cycle  # type: ignore[attr-defined]

    def _on_cycle(self, cycle: int) -> None:
        if cycle % self.interval:
            return
        engine = self.engine
        self.samples.append(
            TimelineSample(
                cycle=cycle,
                queue_depths=[len(chip.queue) for chip in engine.chips],
                busy_chips=sum(
                    1 for chip in engine.chips if chip.busy_until > cycle
                ),
                backlog=len(engine._pending),
                completions=engine.stats.completions,
                dred_hit_rate=engine.stats.dred_hit_rate,
                dead_chips=sum(
                    1 for chip in engine.chips if not chip.alive
                ),
            )
        )

    # -- analysis helpers ---------------------------------------------------

    def peak_backlog(self) -> int:
        """Largest observed input backlog."""
        return max((sample.backlog for sample in self.samples), default=0)

    def mean_queue_depth(self) -> float:
        """Average per-chip queue depth across all samples."""
        depths = [
            depth
            for sample in self.samples
            for depth in sample.queue_depths
        ]
        return sum(depths) / len(depths) if depths else 0.0

    def throughput_series(self) -> List[float]:
        """Completions per cycle between consecutive samples."""
        series: List[float] = []
        for earlier, later in zip(self.samples, self.samples[1:]):
            cycles = later.cycle - earlier.cycle
            if cycles > 0:
                series.append(
                    (later.completions - earlier.completions) / cycles
                )
        return series
