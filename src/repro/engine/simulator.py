"""Cycle-driven simulator of the parallel TCAM lookup engine (Figure 1).

The model follows the paper's own simulation settings (Figure 15): packets
arrive at up to one per clock, each TCAM needs ``lookup_cycles`` (4) clocks
per search, every chip has a bounded FIFO (256) and a DRed partition (1024
prefixes).  Dispatch implements Section III-B's rules:

(a) home queue not full → enqueue for a MAIN lookup in the home chip;
(b) home queue full → idlest other queue, as a DRED lookup *only*;
(c) DRed miss → bounce back and repeat (a).

Functional note: chips execute searches against trie-backed tables rather
than the linear-scan :class:`~repro.tcam.device.Tcam` model — a cycle
simulation performs millions of searches and the device model is O(slots)
per search.  Counting semantics are identical (slot activations are charged
from the known partition sizes); the device model is exercised by the
update pipeline and the unit tests instead.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Iterator, List, Optional, Sequence, Tuple

from repro.engine.dred import DredCache
from repro.engine.events import Completion, LookupKind, Packet
from repro.engine.queues import BoundedFifo
from repro.engine.reorder import ReorderBuffer
from repro.engine.schemes import SchemePolicy
from repro.engine.stats import EngineStats
from repro.net.prefix import Prefix
from repro.trie.trie import BinaryTrie

Route = Tuple[Prefix, int]


@dataclass
class EngineConfig:
    """Knobs of the simulated engine (defaults = the paper's Figure 15)."""

    chip_count: int = 4
    lookup_cycles: int = 4
    queue_capacity: int = 256
    dred_capacity: int = 1024
    arrivals_per_cycle: float = 1.0
    max_dred_attempts: int = 64
    #: Extra cycles a control-path (SRAM) resolution costs when a dead
    #: chip's traffic misses in a survivor's DRed.
    control_path_cycles: int = 8

    def __post_init__(self) -> None:
        if self.chip_count < 1:
            raise ValueError("need at least one chip")
        if self.lookup_cycles < 1:
            raise ValueError("lookups take at least one cycle")
        if self.queue_capacity < 1:
            raise ValueError("queue capacity must be at least one slot")
        if self.dred_capacity < 1:
            raise ValueError("DRed capacity must be at least one prefix")
        if self.max_dred_attempts < 1:
            raise ValueError("allow at least one DRed attempt")
        if self.arrivals_per_cycle <= 0:
            raise ValueError("arrival rate must be positive")
        if self.control_path_cycles < 0:
            raise ValueError("control-path penalty must be non-negative")


class ChipState:
    """One TCAM chip: main table, DRed partition, input FIFO, busy timer."""

    def __init__(
        self,
        index: int,
        routes: Sequence[Route],
        config: EngineConfig,
        exclude_own_dred: bool,
        uses_dred: bool,
    ) -> None:
        self.index = index
        self.table = BinaryTrie.from_routes(routes)
        self.table_slots = len(self.table)
        self.queue: BoundedFifo[Tuple[Packet, LookupKind]] = BoundedFifo(
            config.queue_capacity
        )
        self.dred: Optional[DredCache] = (
            DredCache(config.dred_capacity, index, exclude_own_dred)
            if uses_dred
            else None
        )
        self.busy_until = 0
        #: False while the chip is failed (see LookupEngine.kill_chip).
        self.alive = True


class LookupEngine:
    """The parallel lookup engine of Figure 1, ready to run packet streams.

    ``tables`` gives each chip's main-partition content; ``home_of`` is the
    Indexing Logic (step II); ``reference`` the control-plane trie (needed
    by CLPL's RRC-ME and by result verification).
    """

    def __init__(
        self,
        tables: Sequence[Sequence[Route]],
        home_of: Callable[[int], int],
        scheme: SchemePolicy,
        config: Optional[EngineConfig] = None,
        reference: Optional[BinaryTrie] = None,
    ) -> None:
        self.config = config or EngineConfig()
        if len(tables) != self.config.chip_count:
            raise ValueError(
                f"{len(tables)} tables for {self.config.chip_count} chips"
            )
        self.scheme = scheme
        self.home_of = home_of
        self.reference = reference
        self.chips = [
            ChipState(
                index,
                routes,
                self.config,
                scheme.exclude_own_dred,
                scheme.uses_dred,
            )
            for index, routes in enumerate(tables)
        ]
        self.stats = EngineStats(
            per_chip_lookups=[0] * self.config.chip_count,
            per_chip_main=[0] * self.config.chip_count,
            per_chip_dred=[0] * self.config.chip_count,
        )
        self.reorder = ReorderBuffer()
        self._cycle = 0
        self._next_tag = 0
        # One FIFO backlog of everything awaiting dispatch: fresh arrivals
        # and bounced DRed misses alike.  A single queue is what guarantees
        # progress — giving bounced packets strict priority can livelock the
        # engine with doomed DRed retries that crowd out the MAIN lookups
        # that would warm the DReds.
        self._pending: Deque[Packet] = deque()
        self._arrival_credit = 0.0
        #: Optional per-cycle observer (see :mod:`repro.engine.timeline`).
        self.on_cycle: Optional[Callable[[int], None]] = None
        #: Optional fault source consulted each cycle (see
        #: :class:`repro.faults.injector.FaultInjector` — anything with a
        #: ``tick(cycle)`` method fits).
        self.fault_injector: Optional[object] = None

    # ------------------------------------------------------------------
    # Dispatch (Figure 1, steps II-V)
    # ------------------------------------------------------------------

    def idlest_chip(self, exclude: Optional[int]) -> Optional[int]:
        """The alive chip with the shortest non-full queue (rule (b))."""
        best: Optional[int] = None
        best_depth = -1
        for chip in self.chips:
            if exclude is not None and chip.index == exclude:
                continue
            if not chip.alive or chip.queue.is_full:
                continue
            depth = len(chip.queue)
            if best is None or depth < best_depth:
                best = chip.index
                best_depth = depth
        return best

    def _try_dispatch(self, packet: Packet) -> bool:
        home = self.chips[packet.home]
        if not home.alive:
            return self._dispatch_failover(packet)
        if not home.queue.is_full:
            home.queue.push((packet, LookupKind.MAIN))
            return True
        if packet.dred_attempts >= self.config.max_dred_attempts:
            # Livelock guard: after pathological bouncing the packet waits
            # for its home chip instead of burning more DRed slots.
            return False
        target = self.scheme.divert(self, packet)
        if target is None:
            return False
        chip_index, kind = target
        chip = self.chips[chip_index]
        if chip.queue.is_full:
            return False
        chip.queue.push((packet, kind))
        self.stats.diverted += 1
        return True

    def _dispatch_failover(self, packet: Packet) -> bool:
        """Re-home a dead chip's packet onto a survivor (degraded mode).

        DRed schemes serve the orphaned range from a survivor's DRed; a
        miss there escalates to the control path (see :meth:`_serve_chip`),
        which warms the DRed so subsequent hits stay on the data plane —
        exactly the disjointness dividend: the dead chip's entries are
        cacheable as-is, no recomputation needed.  Non-DRed schemes fall
        back to their ordinary divert rule (full duplication can serve
        anything anywhere; SLPL can only fail over its hot set).
        """
        if self.scheme.uses_dred:
            target_index = self.idlest_chip(exclude=packet.home)
            if target_index is None:
                return False
            kind = LookupKind.DRED
        else:
            target = self.scheme.divert(self, packet)
            if target is None:
                return False
            target_index, kind = target
        chip = self.chips[target_index]
        if chip.queue.is_full:
            return False
        chip.queue.push((packet, kind))
        if not packet.failed_over:
            packet.failed_over = True
            self.stats.failed_over_packets += 1
        return True

    def _drain(self) -> None:
        """Dispatch the backlog in FIFO order until head-of-line blocks.

        Head-of-line blocking is deliberate: it models the input link's
        backpressure and guarantees progress (the head's home chip frees a
        slot every ``lookup_cycles``)."""
        backlog = self._pending
        while backlog:
            if not self._try_dispatch(backlog[0]):
                break
            backlog.popleft()

    # ------------------------------------------------------------------
    # Execution (Figure 1, step V)
    # ------------------------------------------------------------------

    def _serve_chip(self, chip: ChipState) -> Optional[Completion]:
        if not chip.alive:
            return None
        if chip.busy_until > self._cycle or chip.queue.is_empty:
            return None
        packet, kind = chip.queue.pop()
        chip.busy_until = self._cycle + self.config.lookup_cycles
        self.stats.per_chip_lookups[chip.index] += 1
        done_at = self._cycle + self.config.lookup_cycles
        if kind is LookupKind.MAIN:
            self.stats.main_lookups += 1
            self.stats.per_chip_main[chip.index] += 1
            match = chip.table.lookup_prefix(packet.address)
            if match is not None:
                prefix, hop = match
                self.scheme.on_main_hit(
                    self, chip.index, packet.address, prefix, hop
                )
                return Completion(
                    packet.tag, packet.address, hop, done_at,
                    chip.index, kind, packet.arrival_cycle,
                )
            return Completion(
                packet.tag, packet.address, None, done_at,
                chip.index, kind, packet.arrival_cycle,
            )
        # DRed lookup (diverted traffic).
        self.stats.dred_lookups += 1
        self.stats.per_chip_dred[chip.index] += 1
        assert chip.dred is not None
        entry = chip.dred.lookup(packet.address)
        if entry is not None:
            self.stats.dred_hits += 1
            return Completion(
                packet.tag, packet.address, entry.next_hop, done_at,
                chip.index, kind, packet.arrival_cycle,
            )
        self.stats.dred_misses += 1
        home_chip = self.chips[packet.home]
        if not home_chip.alive:
            return self._resolve_via_control_path(packet, chip, done_at, kind)
        self.stats.bounced += 1
        packet.dred_attempts += 1
        self._pending.append(packet)  # rule (c): back through rule (a)
        return None

    def _resolve_via_control_path(
        self,
        packet: Packet,
        chip: ChipState,
        done_at: int,
        kind: LookupKind,
    ) -> Completion:
        """Answer a failed-over DRed miss from the control plane.

        Bouncing back to rule (a) would livelock: the home chip is dead, so
        no MAIN lookup will ever warm the DReds for its range.  Instead the
        control plane's SRAM copy of the table answers (at a latency
        penalty) and the matching entry — a disjoint compressed entry, so
        cacheable verbatim — is pushed into the serving chip's DRed, keeping
        later packets for the range on the data plane.
        """
        self.stats.control_path_resolutions += 1
        home_chip = self.chips[packet.home]
        match = home_chip.table.lookup_prefix(packet.address)
        if match is None and self.reference is not None:
            match = self.reference.lookup_prefix(packet.address)
        next_hop: Optional[int] = None
        if match is not None:
            prefix, next_hop = match
            # Warm the survivor's DRed with the dead chip's entry unless the
            # survivor already holds it in MAIN (a range-spanning replica) —
            # caching those would break the DRed-exclusion invariant.
            if chip.dred is not None and chip.table.get(prefix) is None:
                if chip.dred.insert(prefix, next_hop, owner=packet.home):
                    self.stats.dred_insertions += 1
        return Completion(
            packet.tag,
            packet.address,
            next_hop,
            done_at + self.config.control_path_cycles,
            chip.index,
            kind,
            packet.arrival_cycle,
        )

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(
        self,
        addresses: Iterator[int],
        packet_count: int,
        max_cycles: Optional[int] = None,
    ) -> EngineStats:
        """Inject ``packet_count`` packets and run until all complete.

        ``addresses`` supplies destination addresses (e.g. a
        :class:`~repro.workload.trafficgen.TrafficGenerator`).  Arrival rate
        follows ``config.arrivals_per_cycle``; the engine then drains.
        Returns the accumulated statistics (also kept on ``self.stats``).
        """
        config = self.config
        # Targets are relative to this call so that consecutive run() calls
        # (e.g. traffic chunks interleaved with updates) each make progress.
        target = self.stats.completions + packet_count
        limit = self._cycle + (
            max_cycles if max_cycles is not None else packet_count * 100
        )
        injected = 0
        while self.stats.completions < target:
            if self._cycle > limit:
                raise RuntimeError(
                    f"simulation exceeded its cycle budget "
                    f"({self.stats.completions}/{target} done)"
                )
            # Step 0: scheduled faults strike before anything else happens
            # this cycle (chip deaths, corruption, stalls, storms).
            if self.fault_injector is not None:
                self.fault_injector.tick(self._cycle)
            dead_chips = sum(1 for chip in self.chips if not chip.alive)
            if dead_chips:
                self.stats.chip_downtime_cycles += dead_chips
            # Step I: arrivals for this cycle.
            self._arrival_credit += config.arrivals_per_cycle
            while self._arrival_credit >= 1.0 and injected < packet_count:
                self._arrival_credit -= 1.0
                packet = Packet(
                    tag=self._next_tag,
                    address=next(addresses),
                    home=0,
                    arrival_cycle=self._cycle,
                )
                packet.home = self.home_of(packet.address)
                self._next_tag += 1
                injected += 1
                self.stats.arrivals += 1
                self._pending.append(packet)
            # Steps II-IV: dispatch the backlog (arrivals and bounces).
            self._drain()
            if self._pending:
                self.stats.stalled_arrivals += len(self._pending)
            # Step V: every chip serves its queue.
            for chip in self.chips:
                completion = self._serve_chip(chip)
                if completion is not None:
                    self.stats.completions += 1
                    self.stats.latencies_sum += completion.latency
                    if completion.latency > self.stats.latency_max:
                        self.stats.latency_max = completion.latency
                    self.reorder.offer(completion)
            if self.on_cycle is not None:
                self.on_cycle(self._cycle)
            self._cycle += 1
            self.stats.cycles = self._cycle
        return self.stats

    # ------------------------------------------------------------------
    # Chip failure and recovery
    # ------------------------------------------------------------------

    def kill_chip(self, chip_index: int) -> None:
        """Fail one chip: it stops serving until :meth:`revive_chip`.

        Jobs already queued at the chip are orphaned back to the front of
        the dispatch backlog (their queue order preserved) and re-homed by
        the failover rule on the next drain.  Idempotent on a dead chip.
        """
        chip = self.chips[chip_index]
        if not chip.alive:
            return
        chip.alive = False
        chip.busy_until = self._cycle
        self.stats.chip_failures += 1
        orphans = []
        while not chip.queue.is_empty:
            packet, _kind = chip.queue.pop()
            orphans.append(packet)
        self._pending.extendleft(reversed(orphans))

    def revive_chip(self, chip_index: int) -> None:
        """Bring a failed chip back; its table content is whatever the
        control plane maintained while it was down (callers that stop
        mirroring updates into dead chips must reload/rebalance first).
        Idempotent on an alive chip."""
        chip = self.chips[chip_index]
        if chip.alive:
            return
        chip.alive = True
        chip.busy_until = self._cycle
        self.stats.chip_recoveries += 1

    @property
    def alive_chips(self) -> List[int]:
        """Indices of the chips currently serving."""
        return [chip.index for chip in self.chips if chip.alive]

    # ------------------------------------------------------------------
    # Update interference
    # ------------------------------------------------------------------

    def inject_stall(self, chip_index: int, cycles: int) -> None:
        """Block one chip for ``cycles`` — a TCAM update in progress.

        Slot writes and entry moves occupy the chip's single access port,
        which is exactly why the paper separates TTF2/TTF3 (they interrupt
        lookups) from TTF1 (which does not).  Callers convert an update's
        operation count into cycles and charge the owning chip here; see
        ``bench_ablation_update_interference.py`` for the premise-1
        experiment this enables.
        """
        if cycles < 0:
            raise ValueError("stall must be non-negative")
        chip = self.chips[chip_index]
        chip.busy_until = max(chip.busy_until, self._cycle) + cycles

    @property
    def current_cycle(self) -> int:
        """The simulator's clock (monotone across multiple run() calls)."""
        return self._cycle

    # ------------------------------------------------------------------
    # Verification hook
    # ------------------------------------------------------------------

    def verify_completions(self, covered_only: bool = True) -> bool:
        """Every released completion matches the reference LPM result.

        With ``covered_only`` (don't-care compression), packets the original
        table missed are exempt.
        """
        if self.reference is None:
            raise ValueError("no reference trie attached")
        for completion in self.reorder.released:
            expected = self.reference.lookup(completion.address)
            if covered_only and expected is None:
                continue
            if completion.next_hop != expected:
                return False
        return True
