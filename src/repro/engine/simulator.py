"""Cycle-driven simulator of the parallel TCAM lookup engine (Figure 1).

The model follows the paper's own simulation settings (Figure 15): packets
arrive at up to one per clock, each TCAM needs ``lookup_cycles`` (4) clocks
per search, every chip has a bounded FIFO (256) and a DRed partition (1024
prefixes).  Dispatch implements Section III-B's rules:

(a) home queue not full → enqueue for a MAIN lookup in the home chip;
(b) home queue full → idlest other queue, as a DRED lookup *only*;
(c) DRed miss → bounce back and repeat (a).

Functional note: chips execute searches against trie-backed tables rather
than the linear-scan :class:`~repro.tcam.device.Tcam` model — a cycle
simulation performs millions of searches and the device model is O(slots)
per search.  Counting semantics are identical (slot activations are charged
from the known partition sizes); the device model is exercised by the
update pipeline and the unit tests instead.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Iterator, List, Optional, Sequence, Tuple

from repro.engine.dred import DredCache, DredEntry
from repro.engine.events import Completion, LookupKind, Packet
from repro.engine.fastlpm import (
    LOOKUP_BACKENDS,
    FastLpmTable,
    make_lookup_table,
)
from repro.engine.queues import BoundedFifo
from repro.engine.reorder import ReorderBuffer
from repro.engine.schemes import CluePolicy, SchemePolicy
from repro.engine.stats import EngineStats
from repro.net.prefix import Prefix
from repro.trie.trie import BinaryTrie

Route = Tuple[Prefix, int]


@dataclass
class EngineConfig:
    """Knobs of the simulated engine (defaults = the paper's Figure 15)."""

    chip_count: int = 4
    lookup_cycles: int = 4
    queue_capacity: int = 256
    dred_capacity: int = 1024
    arrivals_per_cycle: float = 1.0
    max_dred_attempts: int = 64
    #: Extra cycles a control-path (SRAM) resolution costs when a dead
    #: chip's traffic misses in a survivor's DRed.
    control_path_cycles: int = 8
    #: Chip table implementation: ``"trie"`` (reference BinaryTrie),
    #: ``"fast"`` (flattened stride table, see :mod:`repro.engine.fastlpm`)
    #: or ``"verify"`` (both, cross-checked on every lookup).
    lookup_backend: str = "trie"

    def __post_init__(self) -> None:
        if self.chip_count < 1:
            raise ValueError("need at least one chip")
        if self.lookup_cycles < 1:
            raise ValueError("lookups take at least one cycle")
        if self.queue_capacity < 1:
            raise ValueError("queue capacity must be at least one slot")
        if self.dred_capacity < 1:
            raise ValueError("DRed capacity must be at least one prefix")
        if self.max_dred_attempts < 1:
            raise ValueError("allow at least one DRed attempt")
        if self.arrivals_per_cycle <= 0:
            raise ValueError("arrival rate must be positive")
        if self.control_path_cycles < 0:
            raise ValueError("control-path penalty must be non-negative")
        if self.lookup_backend not in LOOKUP_BACKENDS:
            raise ValueError(
                f"unknown lookup backend {self.lookup_backend!r} "
                f"(choose from {LOOKUP_BACKENDS})"
            )


class ChipState:
    """One TCAM chip: main table, DRed partition, input FIFO, busy timer."""

    def __init__(
        self,
        index: int,
        routes: Sequence[Route],
        config: EngineConfig,
        exclude_own_dred: bool,
        uses_dred: bool,
    ) -> None:
        self.index = index
        self.backend = config.lookup_backend
        self.table = make_lookup_table(routes, self.backend)
        self.table_slots = len(self.table)
        self.queue: BoundedFifo[Tuple[Packet, LookupKind]] = BoundedFifo(
            config.queue_capacity
        )
        self.dred: Optional[DredCache] = (
            DredCache(config.dred_capacity, index, exclude_own_dred)
            if uses_dred
            else None
        )
        self.busy_until = 0
        #: False while the chip is failed (see LookupEngine.kill_chip).
        self.alive = True

    def load_routes(self, routes: Sequence[Route]) -> None:
        """Replace the chip's table content, keeping the configured backend.

        Rebalance and snapshot restore go through here so a ``"fast"``
        engine stays on the fast path across table reloads.
        """
        self.table = make_lookup_table(routes, self.backend)
        self.table_slots = len(self.table)


class LookupEngine:
    """The parallel lookup engine of Figure 1, ready to run packet streams.

    ``tables`` gives each chip's main-partition content; ``home_of`` is the
    Indexing Logic (step II); ``reference`` the control-plane trie (needed
    by CLPL's RRC-ME and by result verification).
    """

    def __init__(
        self,
        tables: Sequence[Sequence[Route]],
        home_of: Callable[[int], int],
        scheme: SchemePolicy,
        config: Optional[EngineConfig] = None,
        reference: Optional[BinaryTrie] = None,
    ) -> None:
        self.config = config or EngineConfig()
        if len(tables) != self.config.chip_count:
            raise ValueError(
                f"{len(tables)} tables for {self.config.chip_count} chips"
            )
        self.scheme = scheme
        self.home_of = home_of
        self.reference = reference
        self.chips = [
            ChipState(
                index,
                routes,
                self.config,
                scheme.exclude_own_dred,
                scheme.uses_dred,
            )
            for index, routes in enumerate(tables)
        ]
        self.stats = EngineStats(
            per_chip_lookups=[0] * self.config.chip_count,
            per_chip_main=[0] * self.config.chip_count,
            per_chip_dred=[0] * self.config.chip_count,
        )
        self.reorder = ReorderBuffer()
        self._cycle = 0
        self._next_tag = 0
        # One FIFO backlog of everything awaiting dispatch: fresh arrivals
        # and bounced DRed misses alike.  A single queue is what guarantees
        # progress — giving bounced packets strict priority can livelock the
        # engine with doomed DRed retries that crowd out the MAIN lookups
        # that would warm the DReds.
        self._pending: Deque[Packet] = deque()
        self._arrival_credit = 0.0
        #: Optional per-cycle observer (see :mod:`repro.engine.timeline`).
        self.on_cycle: Optional[Callable[[int], None]] = None
        #: Optional fault source consulted each cycle (see
        #: :class:`repro.faults.injector.FaultInjector` — anything with a
        #: ``tick(cycle)`` method fits).
        self.fault_injector: Optional[object] = None
        #: Disjointness certificate (see :meth:`mark_tables_disjoint`).
        self._disjoint_token: Optional[tuple] = None

    def mark_tables_disjoint(self) -> None:
        """Certify that the chips' table entries are pairwise disjoint.

        CLUE's builder knows this by construction: ONRTC compression emits
        non-overlapping entries (plus exact replicas of boundary-spanning
        ones), and even partitioning only distributes them.  Under the
        certificate, at most one table entry — and therefore at most one
        DRed entry — can match any address, which lets the fused loop
        answer DRed lookups with a single hash probe instead of an LPM
        scan (see :meth:`_run_turbo`).

        The certificate is content-addressed: it records each table's
        identity and mutation counter, so any table reload
        (:meth:`ChipState.load_routes`) or in-place route update silently
        invalidates it and the engine falls back to the general LPM scan.
        Callers that restore the invariant may simply mark again.
        """
        self._disjoint_token = tuple(
            (id(chip.table), getattr(chip.table, "mutations", -1))
            for chip in self.chips
        )

    # ------------------------------------------------------------------
    # Dispatch (Figure 1, steps II-V)
    # ------------------------------------------------------------------

    def idlest_chip(self, exclude: Optional[int]) -> Optional[int]:
        """The alive chip with the shortest non-full queue (rule (b))."""
        best: Optional[int] = None
        best_depth = -1
        for chip in self.chips:
            if exclude is not None and chip.index == exclude:
                continue
            if not chip.alive:
                continue
            queue = chip.queue
            depth = len(queue)
            if depth >= queue.capacity:
                continue
            if best is None or depth < best_depth:
                best = chip.index
                best_depth = depth
        return best

    def _try_dispatch(self, packet: Packet) -> bool:
        home = self.chips[packet.home]
        if not home.alive:
            return self._dispatch_failover(packet)
        queue = home.queue
        if len(queue) < queue.capacity:
            queue.push((packet, LookupKind.MAIN))
            return True
        if packet.dred_attempts >= self.config.max_dred_attempts:
            # Livelock guard: after pathological bouncing the packet waits
            # for its home chip instead of burning more DRed slots.
            return False
        target = self.scheme.divert(self, packet)
        if target is None:
            return False
        chip_index, kind = target
        chip = self.chips[chip_index]
        if chip.queue.is_full:
            return False
        chip.queue.push((packet, kind))
        self.stats.diverted += 1
        return True

    def _dispatch_failover(self, packet: Packet) -> bool:
        """Re-home a dead chip's packet onto a survivor (degraded mode).

        DRed schemes serve the orphaned range from a survivor's DRed; a
        miss there escalates to the control path (see :meth:`_serve_chip`),
        which warms the DRed so subsequent hits stay on the data plane —
        exactly the disjointness dividend: the dead chip's entries are
        cacheable as-is, no recomputation needed.  Non-DRed schemes fall
        back to their ordinary divert rule (full duplication can serve
        anything anywhere; SLPL can only fail over its hot set).
        """
        if self.scheme.uses_dred:
            target_index = self.idlest_chip(exclude=packet.home)
            if target_index is None:
                return False
            kind = LookupKind.DRED
        else:
            target = self.scheme.divert(self, packet)
            if target is None:
                return False
            target_index, kind = target
        chip = self.chips[target_index]
        if chip.queue.is_full:
            return False
        chip.queue.push((packet, kind))
        if not packet.failed_over:
            packet.failed_over = True
            self.stats.failed_over_packets += 1
        return True

    def _drain(self) -> int:
        """Dispatch the backlog in FIFO order until head-of-line blocks.

        Head-of-line blocking is deliberate: it models the input link's
        backpressure and guarantees progress (the head's home chip frees a
        slot every ``lookup_cycles``).  Returns the number of packets
        dispatched, which the run loop's quiescence detector needs."""
        backlog = self._pending
        dispatched = 0
        while backlog:
            if not self._try_dispatch(backlog[0]):
                break
            backlog.popleft()
            dispatched += 1
        return dispatched

    # ------------------------------------------------------------------
    # Execution (Figure 1, step V)
    # ------------------------------------------------------------------

    def _serve_chip(self, chip: ChipState) -> Optional[Completion]:
        cycle = self._cycle
        if not chip.alive:
            return None
        if chip.busy_until > cycle or chip.queue.is_empty:
            return None
        stats = self.stats
        index = chip.index
        packet, kind = chip.queue.pop()
        done_at = cycle + self.config.lookup_cycles
        chip.busy_until = done_at
        stats.per_chip_lookups[index] += 1
        if kind is LookupKind.MAIN:
            stats.main_lookups += 1
            stats.per_chip_main[index] += 1
            address = packet.address
            match = chip.table.lookup_prefix(address)
            if match is not None:
                prefix, hop = match
                self.scheme.on_main_hit(self, index, address, prefix, hop)
                return Completion(
                    packet.tag, address, hop, done_at,
                    index, kind, packet.arrival_cycle,
                )
            return Completion(
                packet.tag, address, None, done_at,
                index, kind, packet.arrival_cycle,
            )
        # DRed lookup (diverted traffic).
        stats.dred_lookups += 1
        stats.per_chip_dred[index] += 1
        assert chip.dred is not None
        entry = chip.dred.lookup(packet.address)
        if entry is not None:
            stats.dred_hits += 1
            return Completion(
                packet.tag, packet.address, entry.next_hop, done_at,
                index, kind, packet.arrival_cycle,
            )
        stats.dred_misses += 1
        home_chip = self.chips[packet.home]
        if not home_chip.alive:
            return self._resolve_via_control_path(packet, chip, done_at, kind)
        stats.bounced += 1
        packet.dred_attempts += 1
        self._pending.append(packet)  # rule (c): back through rule (a)
        return None

    def _resolve_via_control_path(
        self,
        packet: Packet,
        chip: ChipState,
        done_at: int,
        kind: LookupKind,
    ) -> Completion:
        """Answer a failed-over DRed miss from the control plane.

        Bouncing back to rule (a) would livelock: the home chip is dead, so
        no MAIN lookup will ever warm the DReds for its range.  Instead the
        control plane's SRAM copy of the table answers (at a latency
        penalty) and the matching entry — a disjoint compressed entry, so
        cacheable verbatim — is pushed into the serving chip's DRed, keeping
        later packets for the range on the data plane.
        """
        self.stats.control_path_resolutions += 1
        home_chip = self.chips[packet.home]
        match = home_chip.table.lookup_prefix(packet.address)
        if match is None and self.reference is not None:
            match = self.reference.lookup_prefix(packet.address)
        next_hop: Optional[int] = None
        if match is not None:
            prefix, next_hop = match
            # Warm the survivor's DRed with the dead chip's entry unless the
            # survivor already holds it in MAIN (a range-spanning replica) —
            # caching those would break the DRed-exclusion invariant.
            if chip.dred is not None and chip.table.get(prefix) is None:
                if chip.dred.insert(prefix, next_hop, owner=packet.home):
                    self.stats.dred_insertions += 1
        return Completion(
            packet.tag,
            packet.address,
            next_hop,
            done_at + self.config.control_path_cycles,
            chip.index,
            kind,
            packet.arrival_cycle,
        )

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(
        self,
        addresses: Iterator[int],
        packet_count: int,
        max_cycles: Optional[int] = None,
    ) -> EngineStats:
        """Inject ``packet_count`` packets and run until all complete.

        ``addresses`` supplies destination addresses (e.g. a
        :class:`~repro.workload.trafficgen.TrafficGenerator`).  Arrival rate
        follows ``config.arrivals_per_cycle``; the engine then drains.
        Returns the accumulated statistics (also kept on ``self.stats``).

        Two implementations sit behind this entry point:

        * :meth:`_run_reference` — the readable cycle-by-cycle simulation,
          the executable specification of the engine's semantics.  It is
          always used when anything can observe or perturb individual
          cycles (an ``on_cycle`` observer, a fault injector, a dead chip)
          and for the ``"trie"`` and ``"verify"`` backends.
        * :meth:`_run_turbo` — a fused steady-state loop, used only when
          every chip runs the flattened ``"fast"`` backend under the CLUE
          policy with nothing watching individual cycles.  It inlines the
          stride-table lookup, dispatch rules and DRed maintenance into a
          single loop body and produces byte-identical statistics and
          engine state (the bench and the determinism pin test assert
          fingerprint equality against the reference path).
        """
        if (
            self.on_cycle is None
            and self.fault_injector is None
            and type(self.scheme) is CluePolicy
            and all(
                chip.alive
                and chip.dred is not None
                and type(chip.table) is FastLpmTable
                for chip in self.chips
            )
        ):
            return self._run_turbo(addresses, packet_count, max_cycles)
        return self._run_reference(addresses, packet_count, max_cycles)

    def _run_reference(
        self,
        addresses: Iterator[int],
        packet_count: int,
        max_cycles: Optional[int] = None,
    ) -> EngineStats:
        """The cycle-by-cycle engine loop (see :meth:`run`).

        Cycle accounting is event-driven: after a *quiescent* cycle — no
        fault fired, nothing arrived, nothing dispatched, no chip popped a
        packet — every following cycle is provably identical until the
        next event (a chip's busy timer expiring with queued work, the
        next arrival becoming due, or the next scheduled fault), so the
        clock jumps straight there.  Per-cycle statistics that the skipped
        cycles would have accumulated (``chip_downtime_cycles``,
        ``stalled_arrivals``, arrival credit) are applied in closed form,
        keeping every counter byte-identical to the cycle-by-cycle run.
        Skipping disables itself whenever an ``on_cycle`` observer is
        attached (observers must see every cycle) or the fault source does
        not expose ``next_cycle``.
        """
        config = self.config
        # Targets are relative to this call so that consecutive run() calls
        # (e.g. traffic chunks interleaved with updates) each make progress.
        target = self.stats.completions + packet_count
        limit = self._cycle + (
            max_cycles if max_cycles is not None else packet_count * 100
        )
        injected = 0
        # Hot-loop local bindings (the loop body runs once per simulated
        # cycle — attribute lookups here dominate the non-lookup cost).
        stats = self.stats
        chips = self.chips
        pending = self._pending
        home_of = self.home_of
        offer = self.reorder.offer
        serve_chip = self._serve_chip
        next_address = iter(addresses).__next__
        rate = config.arrivals_per_cycle
        rate_is_integral = float(rate).is_integer()
        while stats.completions < target:
            cycle = self._cycle
            if cycle > limit:
                raise RuntimeError(
                    f"simulation exceeded its cycle budget "
                    f"({stats.completions}/{target} done)"
                )
            # Step 0: scheduled faults strike before anything else happens
            # this cycle (chip deaths, corruption, stalls, storms).
            injector = self.fault_injector
            fault_fired = 0
            if injector is not None:
                fault_fired = injector.tick(cycle) or 0
            dead_chips = 0
            for chip in chips:
                if not chip.alive:
                    dead_chips += 1
            if dead_chips:
                stats.chip_downtime_cycles += dead_chips
            # Step I: arrivals for this cycle.
            arrived = 0
            self._arrival_credit += rate
            while self._arrival_credit >= 1.0 and injected < packet_count:
                self._arrival_credit -= 1.0
                packet = Packet(
                    tag=self._next_tag,
                    address=next_address(),
                    home=0,
                    arrival_cycle=cycle,
                )
                packet.home = home_of(packet.address)
                self._next_tag += 1
                injected += 1
                arrived += 1
                stats.arrivals += 1
                pending.append(packet)
            # Steps II-IV: dispatch the backlog (arrivals and bounces).
            dispatched = self._drain() if pending else 0
            if pending:
                stats.stalled_arrivals += len(pending)
            # Step V: every chip serves its queue.
            popped = 0
            for chip in chips:
                # Inline eligibility check: most chips are mid-lookup on
                # most cycles, and skipping the method call for them is a
                # measurable share of the loop.
                if not chip.alive or chip.busy_until > cycle:
                    continue
                if chip.queue.is_empty:
                    continue
                popped += 1
                completion = serve_chip(chip)
                if completion is not None:
                    stats.completions += 1
                    latency = completion.latency
                    stats.latencies_sum += latency
                    if latency > stats.latency_max:
                        stats.latency_max = latency
                    offer(completion)
            on_cycle = self.on_cycle
            if on_cycle is not None:
                on_cycle(cycle)
            cycle += 1
            self._cycle = cycle
            stats.cycles = cycle
            # Event-driven skip: a cycle where nothing happened repeats
            # verbatim until the next scheduled event, so jump there.
            if (
                on_cycle is None
                and fault_fired == 0
                and arrived == 0
                and dispatched == 0
                and popped == 0
            ):
                next_event = self._next_event_cycle(
                    cycle, injector, injected, packet_count, limit
                )
                if next_event is not None and next_event > cycle:
                    skipped = next_event - cycle
                    # Closed-form catch-up of the per-cycle counters the
                    # skipped (identical) cycles would have accumulated.
                    if dead_chips:
                        stats.chip_downtime_cycles += dead_chips * skipped
                    if pending:
                        stats.stalled_arrivals += len(pending) * skipped
                    if rate_is_integral:
                        # Integral rates stay float-exact under scaling.
                        self._arrival_credit += rate * skipped
                    else:
                        # Fractional rates must replay the additions to
                        # reproduce the reference run's rounding exactly.
                        credit = self._arrival_credit
                        for _ in range(skipped):
                            credit += rate
                        self._arrival_credit = credit
                    self._cycle = next_event
                    stats.cycles = next_event
        return self.stats

    def _run_turbo(
        self,
        addresses: Iterator[int],
        packet_count: int,
        max_cycles: Optional[int] = None,
    ) -> EngineStats:
        """Fused fast-path engine loop (CLUE + flattened tables only).

        Semantically identical to :meth:`_run_reference`; structurally a
        single loop body with the per-packet machinery inlined:

        * the DIR-24-8 stride descent of :class:`FastLpmTable` (three array
          indexes instead of a per-bit trie walk);
        * dispatch rules (a)/(b)/(c) and the idlest-queue scan;
        * CLUE's ``on_main_hit`` DRed maintenance, with the pure-recency
          refresh special-cased to an ``OrderedDict.move_to_end``;
        * the DRed LPM probe over the occupied-length index;
        * the reorder buffer's in-order fast path.

        Scalar statistics accumulate in locals and are flushed back to
        ``self`` in a ``finally`` block, so the engine state is consistent
        even when the cycle-budget guard raises.  The gate in :meth:`run`
        guarantees nothing can observe or perturb a cycle mid-run (no
        observer, no fault injector, all chips alive), which is what makes
        the local accumulation and the one-time structure bindings below
        safe.  Equivalence with the reference loop is enforced by the
        fingerprint assertions in ``benchmarks/bench_engine.py`` and the
        determinism pin test.
        """
        config = self.config
        stats = self.stats
        target = stats.completions + packet_count
        limit = self._cycle + (
            max_cycles if max_cycles is not None else packet_count * 100
        )
        injected = 0

        # --- one-time structure bindings (safe: nothing rebinds these
        # mid-run without an observer, and the gate excluded observers) ---
        chips = self.chips
        n = len(chips)
        chip_range = range(n)
        pending = self._pending
        pending_popleft = pending.popleft
        pending_append = pending.append
        home_of = self.home_of
        # Flattened Indexing Logic (see builders.FlatHomeIndex): answer
        # step II with one array index; ``-1`` falls back to the exact
        # callable.  An all-sentinel array keeps the loop uniform when the
        # index is not flattened.
        home_l1 = getattr(home_of, "home_l1", None)
        if home_l1 is None:
            home_l1 = [-1] * (1 << 16)
        next_address = iter(addresses).__next__
        rate = config.arrivals_per_cycle
        rate_is_integral = float(rate).is_integer()
        # Figure 15's line rate (one packet per clock) admits a simpler
        # arrival step: exactly one arrival per cycle while the stream
        # lasts, no credit arithmetic (credit provably stays at 0.0).
        rate_is_one = rate == 1.0 and self._arrival_credit == 0.0
        lookup_cycles = config.lookup_cycles
        qcap = config.queue_capacity
        max_attempts = config.max_dred_attempts
        # NamedTuple construction goes through an eval-generated __new__
        # wrapper; tuple.__new__ with the ready tuple skips that frame.
        tuple_new = tuple.__new__
        completion_type = Completion
        make_packet = Packet
        # Completed packets are unreachable (Completions copy the scalars
        # out), so recycle them: overwriting four slots is cheaper than a
        # dataclass construction, and the allocation churn it avoids is
        # what kept the cyclic GC busy.
        free_packets: List[Packet] = []
        free_pop = free_packets.pop
        free_append = free_packets.append
        kind_main = LookupKind.MAIN
        kind_dred = LookupKind.DRED
        _list = list

        queues = [chip.queue for chip in chips]
        queue_items = [queue._items for queue in queues]
        # Queue depths tracked as plain ints alongside the deques: the
        # dispatch rules and the idlest-queue scan read depths far more
        # often than they change, and len() is a measurable share of the
        # loop.  Purely derived state — never flushed.
        depths = [len(items) for items in queue_items]
        l1s = [chip.table._l1 for chip in chips]
        hops = [chip.table._hops for chip in chips]
        dreds = [chip.dred for chip in chips]
        dred_entries = [dred._entries for dred in dreds]
        dred_moves = [dred._entries.move_to_end for dred in dreds]
        dred_probes = [dred._probe for dred in dreds]
        dred_hits_pc = [dred.hits for dred in dreds]
        dred_misses_pc = [dred.misses for dred in dreds]
        dred_refreshes_pc = [dred.refreshes for dred in dreds]
        # CLUE on_main_hit pushes a hit prefix into every other chip's DRed
        # except chips already holding it in MAIN.  That target set depends
        # only on the prefix and the (static mid-run) table contents, so it
        # is computed once per distinct table-entry object — keyed by the
        # entry tuple's id (an int key probes without calling the
        # Python-level ``Prefix.__hash__``; the stride table keeps every
        # entry object alive, so ids are stable for the whole run).  Each
        # target is a mutable ``[entries, move_to_end, dred, chip, egen,
        # rgen]`` record: ``egen``/``rgen`` remember the target DRed's
        # eviction count and the global replace generation at the last
        # verification that its cached entry is exactly
        # ``(prefix, hop, serving chip)``.  While both generations are
        # unchanged nothing can have disturbed that entry, so the refresh
        # collapses to a pure recency bump — no lookup, no field compare.
        replica_targets: dict = {}
        replica_targets_get = replica_targets.get
        evicts = [dred.evictions for dred in dreds]
        replace_gen = 0
        busy = [chip.busy_until for chip in chips]
        enq = [queue.total_enqueued for queue in queues]
        qpeak = [queue.peak_occupancy for queue in queues]

        # O(1) DRed path under the builder's disjointness certificate (see
        # mark_tables_disjoint): if the certificate still matches the live
        # tables AND every cached prefix is still a live MAIN entry
        # somewhere, then at most one prefix can match any address — the
        # home chip's unique table match — so the DRed LPM scan collapses
        # to one stride descent plus one dict probe.  The provenance sweep
        # below guards against stale cache entries surviving a mark;
        # entries inserted *during* the run come from live tables, so the
        # property is preserved for the whole call.
        use_direct_dred = self._disjoint_token == tuple(
            (id(chip.table), chip.table.mutations) for chip in chips
        )
        if use_direct_dred:
            live = set()
            for hop_map in hops:
                live.update(hop_map)
            use_direct_dred = all(
                prefix in live
                for entries in dred_entries
                for prefix in entries
            )

        reorder = self.reorder
        rb_pending = reorder._pending
        rb_pending_pop = rb_pending.pop
        rb_released_append = reorder.released.append
        rb_next_tag = reorder._next_tag
        rb_peak = reorder.peak_occupancy

        # Per-chip stats lists are mutated in place (they are plain lists).
        pcl = stats.per_chip_lookups
        pcm = stats.per_chip_main
        pcd = stats.per_chip_dred

        # --- scalar statistics, accumulated locally, flushed in finally ---
        cycle = self._cycle
        next_tag = self._next_tag
        credit = self._arrival_credit
        arrivals = stats.arrivals
        completions = stats.completions
        main_lookups = stats.main_lookups
        dred_lookups = stats.dred_lookups
        dred_hits = stats.dred_hits
        dred_misses = stats.dred_misses
        dred_insertions = stats.dred_insertions
        diverted = stats.diverted
        bounced = stats.bounced
        stalled = stats.stalled_arrivals
        latencies_sum = stats.latencies_sum
        latency_max = stats.latency_max

        try:
            while completions < target:
                if cycle > limit:
                    raise RuntimeError(
                        f"simulation exceeded its cycle budget "
                        f"({completions}/{target} done)"
                    )
                # Step I: arrivals for this cycle.
                arrived = 0
                dispatched = 0
                if rate_is_one:
                    # Line rate: exactly one arrival while the stream
                    # lasts, no credit arithmetic.  Once the stream is
                    # exhausted the reference loop still accrues credit
                    # every cycle (it just stops consuming it), and that
                    # carry-over feeds the next run() call's first burst.
                    if injected >= packet_count:
                        credit += 1.0
                    else:
                        address = next_address()
                        home = home_l1[address >> 16]
                        if home < 0:
                            home = home_of(address)
                        if free_packets:
                            packet = free_pop()
                            packet.tag = next_tag
                            packet.address = address
                            packet.home = home
                            packet.arrival_cycle = cycle
                            packet.dred_attempts = 0
                        else:
                            packet = make_packet(
                                next_tag, address, home, cycle
                            )
                        next_tag += 1
                        injected += 1
                        arrived = 1
                        arrivals += 1
                        if pending:
                            # FIFO fairness: once anything waits, arrivals
                            # queue behind it (head-of-line discipline).
                            pending_append(packet)
                        else:
                            depth = depths[home]
                            if depth < qcap:
                                # Rule (a) direct: skip the backlog.
                                queue_items[home].append(
                                    (packet, kind_main)
                                )
                                enq[home] += 1
                                depth += 1
                                depths[home] = depth
                                if depth > qpeak[home]:
                                    qpeak[home] = depth
                                dispatched = 1
                            else:
                                # Rule (b) at arrival time: with an empty
                                # backlog the drain loop would divert
                                # this packet this very cycle (a fresh
                                # arrival can never trip the livelock
                                # guard), so skip the round-trip.
                                best = -1
                                best_depth = qcap
                                for other in chip_range:
                                    if other == home:
                                        continue
                                    depth = depths[other]
                                    if depth < best_depth:
                                        best = other
                                        best_depth = depth
                                if best < 0:
                                    pending_append(packet)
                                else:
                                    queue_items[best].append(
                                        (packet, kind_dred)
                                    )
                                    enq[best] += 1
                                    depth = best_depth + 1
                                    depths[best] = depth
                                    if depth > qpeak[best]:
                                        qpeak[best] = depth
                                    diverted += 1
                                    dispatched = 1
                else:
                    credit += rate
                    while credit >= 1.0 and injected < packet_count:
                        credit -= 1.0
                        address = next_address()
                        home = home_l1[address >> 16]
                        if home < 0:
                            home = home_of(address)
                        if free_packets:
                            packet = free_pop()
                            packet.tag = next_tag
                            packet.address = address
                            packet.home = home
                            packet.arrival_cycle = cycle
                            packet.dred_attempts = 0
                        else:
                            packet = make_packet(
                                next_tag, address, home, cycle
                            )
                        next_tag += 1
                        injected += 1
                        arrived += 1
                        arrivals += 1
                        if pending:
                            pending_append(packet)
                            continue
                        depth = depths[home]
                        if depth < qcap:
                            queue_items[home].append((packet, kind_main))
                            enq[home] += 1
                            depth += 1
                            depths[home] = depth
                            if depth > qpeak[home]:
                                qpeak[home] = depth
                            dispatched += 1
                        else:
                            pending_append(packet)
                # Steps II-IV: dispatch the backlog in FIFO order until the
                # head blocks (rules (a) and (b) inlined).
                while pending:
                    packet = pending[0]
                    home = packet.home
                    depth = depths[home]
                    if depth < qcap:
                        queue_items[home].append((packet, kind_main))
                        enq[home] += 1
                        depth += 1
                        depths[home] = depth
                        if depth > qpeak[home]:
                            qpeak[home] = depth
                        pending_popleft()
                        dispatched += 1
                        continue
                    if packet.dred_attempts >= max_attempts:
                        break  # livelock guard: wait for the home chip
                    best = -1
                    best_depth = qcap
                    for index in chip_range:
                        if index == home:
                            continue
                        depth = depths[index]
                        if depth < best_depth:
                            best = index
                            best_depth = depth
                    if best < 0:
                        break  # every foreign queue is full too
                    queue_items[best].append((packet, kind_dred))
                    enq[best] += 1
                    depth = best_depth + 1
                    depths[best] = depth
                    if depth > qpeak[best]:
                        qpeak[best] = depth
                    diverted += 1
                    pending_popleft()
                    dispatched += 1
                if pending:
                    stalled += len(pending)
                # Step V: every free chip serves its queue head.
                popped = 0
                for index in chip_range:
                    if busy[index] > cycle:
                        continue
                    items = queue_items[index]
                    if not items:
                        continue
                    popped += 1
                    packet, kind = items.popleft()
                    depths[index] -= 1
                    done_at = cycle + lookup_cycles
                    busy[index] = done_at
                    pcl[index] += 1
                    address = packet.address
                    if kind is kind_main:
                        main_lookups += 1
                        pcm[index] += 1
                        entry = l1s[index][address >> 16]
                        if type(entry) is _list:
                            entry = entry[(address >> 8) & 0xFF]
                            if type(entry) is _list:
                                entry = entry[address & 0xFF]
                        if entry is not None:
                            prefix, hop = entry
                            # CLUE on_main_hit: push the hit prefix into
                            # every other chip's DRed (owner exclusion can
                            # never trigger here: owner != that chip;
                            # chips already holding the prefix in MAIN are
                            # excluded by the memoised target set).
                            targets = replica_targets_get(id(entry))
                            if targets is None:
                                targets = tuple(
                                    [
                                        dred_entries[other],
                                        dred_moves[other],
                                        dreds[other],
                                        other,
                                        -1,
                                        -1,
                                    ]
                                    for other in chip_range
                                    if hops[other].get(prefix) is None
                                )
                                replica_targets[id(entry)] = targets
                            for state in targets:
                                other = state[3]
                                if (
                                    state[4] == evicts[other]
                                    and state[5] == replace_gen
                                ):
                                    # Verified steady state: the cached
                                    # entry is still ours — pure recency.
                                    dred_refreshes_pc[other] += 1
                                    state[1](prefix)
                                    dred_insertions += 1
                                    continue
                                entries = state[0]
                                existing = entries.get(prefix)
                                if existing is None:
                                    dred = state[2]
                                    dred.insert(prefix, hop, index)
                                    evicts[other] = dred.evictions
                                else:
                                    dred_refreshes_pc[other] += 1
                                    if (
                                        existing.next_hop != hop
                                        or existing.owner != index
                                    ):
                                        # Replica owner flip: replace the
                                        # entry and invalidate every
                                        # cached verification (rare —
                                        # only boundary-spanning replica
                                        # values alternate owners).
                                        entries[prefix] = DredEntry(
                                            prefix, hop, index
                                        )
                                        state[2]._by_length[prefix.length][
                                            prefix.value
                                        ] = prefix
                                        replace_gen += 1
                                    state[1](prefix)
                                state[4] = evicts[other]
                                state[5] = replace_gen
                                dred_insertions += 1
                            completion = tuple_new(completion_type, (
                                packet.tag, address, hop, done_at,
                                index, kind, packet.arrival_cycle,
                            ))
                        else:
                            completion = tuple_new(completion_type, (
                                packet.tag, address, None, done_at,
                                index, kind, packet.arrival_cycle,
                            ))
                    else:
                        # DRed lookup (diverted traffic).
                        dred_lookups += 1
                        pcd[index] += 1
                        entries = dred_entries[index]
                        hit = None
                        if use_direct_dred:
                            # Certificate valid: the only possible match
                            # is the home chip's unique table entry.
                            entry = l1s[packet.home][address >> 16]
                            if type(entry) is _list:
                                entry = entry[(address >> 8) & 0xFF]
                                if type(entry) is _list:
                                    entry = entry[address & 0xFF]
                            if entry is not None:
                                prefix = entry[0]
                                hit = entries.get(prefix)
                                if hit is not None:
                                    dred_moves[index](prefix)
                        else:
                            # General LPM scan over the probe plan
                            # (longest occupied length first).
                            for shift, bucket in dred_probes[index]:
                                prefix = bucket.get(address >> shift)
                                if prefix is not None:
                                    hit = entries[prefix]
                                    dred_moves[index](prefix)
                                    break
                        if hit is None:
                            dred_misses_pc[index] += 1
                            dred_misses += 1
                            bounced += 1
                            packet.dred_attempts += 1
                            pending_append(packet)  # rule (c)
                            continue
                        dred_hits_pc[index] += 1
                        dred_hits += 1
                        completion = tuple_new(completion_type, (
                            packet.tag, address, hit.next_hop, done_at,
                            index, kind, packet.arrival_cycle,
                        ))
                    completions += 1
                    latency = done_at - packet.arrival_cycle
                    latencies_sum += latency
                    if latency > latency_max:
                        latency_max = latency
                    # Reorder buffer, inlined (mirrors ReorderBuffer.offer
                    # with ``_next_tag``/``peak_occupancy`` held locally).
                    tag = packet.tag
                    if tag == rb_next_tag and not rb_pending:
                        if rb_peak == 0:
                            rb_peak = 1
                        rb_next_tag = tag + 1
                        rb_released_append(completion)
                    else:
                        rb_pending[tag] = completion
                        if len(rb_pending) > rb_peak:
                            rb_peak = len(rb_pending)
                        while rb_next_tag in rb_pending:
                            rb_released_append(rb_pending_pop(rb_next_tag))
                            rb_next_tag += 1
                    free_append(packet)
                cycle += 1
                # Event-driven skip (same invariants as the reference
                # loop, specialised to the no-fault/all-alive gate).
                if arrived == 0 and dispatched == 0 and popped == 0:
                    if injected >= packet_count or rate < 1.0:
                        next_event = limit + 1
                        for index in chip_range:
                            if queue_items[index]:
                                done_at = busy[index]
                                if done_at < next_event:
                                    next_event = done_at
                        if injected < packet_count:
                            # rate < 1.0: find the cycle whose credit
                            # top-up crosses 1.0 (the top-up precedes the
                            # >= 1.0 check, hence the -1).
                            probe = credit
                            wait = 0
                            while probe < 1.0:
                                probe += rate
                                wait += 1
                            arrival_cycle = cycle + wait - 1
                            if arrival_cycle < next_event:
                                next_event = arrival_cycle
                        if next_event > cycle:
                            skipped = next_event - cycle
                            if pending:
                                stalled += len(pending) * skipped
                            if rate_is_integral:
                                credit += rate * skipped
                            else:
                                for _ in range(skipped):
                                    credit += rate
                            cycle = next_event
        finally:
            self._cycle = cycle
            self._next_tag = next_tag
            self._arrival_credit = credit
            stats.cycles = cycle
            stats.arrivals = arrivals
            stats.completions = completions
            stats.main_lookups = main_lookups
            stats.dred_lookups = dred_lookups
            stats.dred_hits = dred_hits
            stats.dred_misses = dred_misses
            stats.dred_insertions = dred_insertions
            stats.diverted = diverted
            stats.bounced = bounced
            stats.stalled_arrivals = stalled
            stats.latencies_sum = latencies_sum
            stats.latency_max = latency_max
            reorder._next_tag = rb_next_tag
            reorder.peak_occupancy = rb_peak
            for index in chip_range:
                chips[index].busy_until = busy[index]
                queue = queues[index]
                queue.total_enqueued = enq[index]
                queue.peak_occupancy = qpeak[index]
                dred = dreds[index]
                dred.hits = dred_hits_pc[index]
                dred.misses = dred_misses_pc[index]
                dred.refreshes = dred_refreshes_pc[index]
        return self.stats

    def _next_event_cycle(
        self,
        cycle: int,
        injector: Optional[object],
        injected: int,
        packet_count: int,
        limit: int,
    ) -> Optional[int]:
        """The next cycle at which a quiescent engine can change state.

        Candidates: the earliest busy-timer expiry among alive chips that
        hold queued work, the cycle the next arrival becomes due, and the
        fault source's ``next_cycle``.  Everything is clamped to
        ``limit + 1`` so a deadlocked engine still trips the cycle-budget
        guard with the same counters as a cycle-by-cycle run.  Returns
        None when skipping is unsafe (fault source without ``next_cycle``).
        """
        if injector is not None:
            fault_cycle = getattr(injector, "next_cycle", False)
            if fault_cycle is False:
                return None
        else:
            fault_cycle = None
        next_event = limit + 1
        for chip in self.chips:
            if chip.alive and not chip.queue.is_empty:
                if chip.busy_until < next_event:
                    next_event = chip.busy_until
        if injected < packet_count:
            rate = self.config.arrivals_per_cycle
            if rate >= 1.0:
                return None  # an arrival is due every cycle
            # The cycle's credit top-up happens before the >= 1.0 check,
            # so the arrival lands on the cycle whose addition crosses 1.0.
            credit = self._arrival_credit
            wait = 0
            while credit < 1.0:
                credit += rate
                wait += 1
            arrival_cycle = cycle + wait - 1
            if arrival_cycle < next_event:
                next_event = arrival_cycle
        if fault_cycle is not None and fault_cycle < next_event:
            next_event = fault_cycle
        return next_event

    # ------------------------------------------------------------------
    # Chip failure and recovery
    # ------------------------------------------------------------------

    def kill_chip(self, chip_index: int) -> None:
        """Fail one chip: it stops serving until :meth:`revive_chip`.

        Jobs already queued at the chip are orphaned back to the front of
        the dispatch backlog (their queue order preserved) and re-homed by
        the failover rule on the next drain.  Idempotent on a dead chip.
        """
        chip = self.chips[chip_index]
        if not chip.alive:
            return
        chip.alive = False
        chip.busy_until = self._cycle
        self.stats.chip_failures += 1
        orphans = []
        while not chip.queue.is_empty:
            packet, _kind = chip.queue.pop()
            orphans.append(packet)
        self._pending.extendleft(reversed(orphans))

    def revive_chip(self, chip_index: int) -> None:
        """Bring a failed chip back; its table content is whatever the
        control plane maintained while it was down (callers that stop
        mirroring updates into dead chips must reload/rebalance first).
        Idempotent on an alive chip."""
        chip = self.chips[chip_index]
        if chip.alive:
            return
        chip.alive = True
        chip.busy_until = self._cycle
        self.stats.chip_recoveries += 1

    @property
    def alive_chips(self) -> List[int]:
        """Indices of the chips currently serving."""
        return [chip.index for chip in self.chips if chip.alive]

    # ------------------------------------------------------------------
    # Update interference
    # ------------------------------------------------------------------

    def inject_stall(self, chip_index: int, cycles: int) -> None:
        """Block one chip for ``cycles`` — a TCAM update in progress.

        Slot writes and entry moves occupy the chip's single access port,
        which is exactly why the paper separates TTF2/TTF3 (they interrupt
        lookups) from TTF1 (which does not).  Callers convert an update's
        operation count into cycles and charge the owning chip here; see
        ``bench_ablation_update_interference.py`` for the premise-1
        experiment this enables.
        """
        if cycles < 0:
            raise ValueError("stall must be non-negative")
        chip = self.chips[chip_index]
        chip.busy_until = max(chip.busy_until, self._cycle) + cycles

    @property
    def current_cycle(self) -> int:
        """The simulator's clock (monotone across multiple run() calls)."""
        return self._cycle

    # ------------------------------------------------------------------
    # Verification hook
    # ------------------------------------------------------------------

    def verify_completions(self, covered_only: bool = True) -> bool:
        """Every released completion matches the reference LPM result.

        With ``covered_only`` (don't-care compression), packets the original
        table missed are exempt.
        """
        if self.reference is None:
            raise ValueError("no reference trie attached")
        for completion in self.reorder.released:
            expected = self.reference.lookup(completion.address)
            if covered_only and expected is None:
                continue
            if completion.next_hop != expected:
                return False
        return True
