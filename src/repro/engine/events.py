"""Packet-level records flowing through the lookup engine.

These types are allocated once per packet (and :class:`Completion` once
per finished lookup), which puts their construction cost on the
simulator's hot path — hence the slotted dataclass and the NamedTuple:
both cut per-instance overhead without changing the attribute API.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import NamedTuple, Optional


class LookupKind(Enum):
    """Which TCAM region a queued job will search (Figure 1, step V).

    A job is either a *main* lookup in the home chip's table partition, or a
    *DRed* lookup in a foreign chip's dynamic-redundancy partition.  The two
    are mutually exclusive by design: "No IP address will be looked-up both
    in home TCAM and the corresponding DRed".
    """

    MAIN = "main"
    DRED = "dred"


@dataclass(slots=True)
class Packet:
    """One destination lookup travelling through the engine.

    ``tag`` is the sequence number attached in step III (used by the
    reorder buffer); ``home`` the chip index the Indexing Logic named in
    step II.  ``dred_attempts`` counts how often the packet bounced off a
    DRed miss back to rule (a); ``failed_over`` is set once the packet has
    been re-homed away from a dead chip (counted once per packet).
    """

    tag: int
    address: int
    home: int
    arrival_cycle: int
    dred_attempts: int = 0
    failed_over: bool = False


class Completion(NamedTuple):
    """The outcome of one lookup (immutable, like the frozen record it is)."""

    tag: int
    address: int
    next_hop: Optional[int]
    completion_cycle: int
    served_by: int
    kind: LookupKind
    arrival_cycle: int

    @property
    def latency(self) -> int:
        """Cycles from arrival to completion."""
        return self.completion_cycle - self.arrival_cycle
