"""RRC-ME — minimal-expansion prefix caching (Akhbarizadeh & Nourani 2004).

With an *overlapping* table, the prefix that longest-matched a packet
cannot be cached as-is: a shorter match ``p = 1*`` may have a more-specific
child ``q = 11*`` with a different hop, and caching ``p`` would short-
circuit ``q`` for later packets (Figure 2).  RRC-ME instead computes the
shortest *non-overlapped expansion* — the shortest prefix along the packet's
address that covers no other table prefix — and caches that.

The computation needs the control-plane trie in SRAM, which is exactly the
data-plane/control-plane round trip CLUE eliminates (Figures 3 vs 4).  The
walk length is returned so the TTF3 cost model can charge it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.prefix import ADDRESS_WIDTH, Prefix
from repro.trie.trie import BinaryTrie


@dataclass(frozen=True)
class Expansion:
    """The result of one RRC-ME computation.

    ``sram_accesses`` counts trie-node visits — the "must visit SRAM several
    times" overhead the paper charges CLPL's DRed maintenance with.
    """

    prefix: Prefix
    next_hop: int
    sram_accesses: int


def minimal_expansion(trie: BinaryTrie, address: int) -> Optional[Expansion]:
    """The shortest cacheable prefix covering ``address``.

    Returns ``None`` when the table has no match for ``address`` (nothing to
    cache).  Guarantees of the result ``q``:

    * ``q`` contains ``address``;
    * every address inside ``q`` longest-matches the same table prefix (so
      a cache hit on ``q`` returns the correct hop for all of them);
    * ``q`` is the shortest such prefix along the address path.

    In a *pruned* trie every node has a routed descendant-or-self, so the
    walk simply descends along the address until the path leaves the trie;
    one bit past the deepest node is the expansion.  If the deepest node is
    itself the (leaf) match, the matched prefix is already non-overlapped
    and is returned unexpanded — the case where RRC-ME degenerates to
    CLUE's "just cache what hit".
    """
    node = trie.root
    best_hop: Optional[int] = node.next_hop
    depth = 0
    accesses = 1  # the root visit
    value = 0
    while depth < ADDRESS_WIDTH:
        bit = (address >> (ADDRESS_WIDTH - 1 - depth)) & 1
        child = node.child(bit)
        if child is None:
            break
        node = child
        value = (value << 1) | bit
        depth += 1
        accesses += 1
        if node.has_route:
            best_hop = node.next_hop
    if best_hop is None:
        return None
    if node.has_route and node.is_leaf:
        # The match itself is non-overlapped: cacheable verbatim.
        return Expansion(Prefix(value, depth), best_hop, accesses)
    if depth >= ADDRESS_WIDTH:
        return Expansion(Prefix(value, depth), best_hop, accesses)
    bit = (address >> (ADDRESS_WIDTH - 1 - depth)) & 1
    expansion = Prefix((value << 1) | bit, depth + 1)
    return Expansion(expansion, best_hop, accesses)
