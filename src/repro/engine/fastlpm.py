"""Flattened stride-table LPM backend for the lookup-engine fast path.

The cycle simulator performs one :meth:`lookup_prefix` per MAIN lookup —
millions per benchmark — and the reference :class:`~repro.trie.trie.
BinaryTrie` costs a Python-level method call per address bit.  This module
trades precomputation for O(1) array-indexed lookups, the classic
DIR-24-8 move (Gupta, Lin & McKeown, INFOCOM 1998; see
:mod:`repro.swlookup.dir248` for the faithful hardware model): each chip's
table is compiled into a three-level 16/8/8 stride table whose slots hold
the precomputed ``(prefix, hop)`` answer, so the data path is at most
three list indexings with no per-bit work.

Design notes:

* **Semantics are identical to the trie.**  Slots are painted from a
  shadow :class:`BinaryTrie` by a preorder descent, so genuine
  longest-prefix-match holds even for overlapping content (SLPL replica
  closures, round-robin full duplication, transient mid-update states).
* **Updates are incremental.**  Insert/delete repaints only the region
  the changed prefix covers (descending the shadow subtree underneath
  it), not the whole table — a /24 change touches a handful of slots.
* **Entries are shared tuples.**  A repaint allocates one ``(Prefix,
  hop)`` tuple per visible route and aliases it across every slot the
  route covers, keeping memory proportional to painted regions.
* Blocks are created on demand and never collapsed back to a single
  slot; a stale block after deletions costs one extra indexing, never
  a wrong answer.

The ``"verify"`` backend (:class:`VerifyingLpmTable`) runs both
implementations side by side and raises :class:`BackendMismatchError` on
the first divergence — the equivalence guardrail for engine refactors.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.net.prefix import ADDRESS_WIDTH, Prefix
from repro.trie.node import TrieNode
from repro.trie.trie import BinaryTrie

Route = Tuple[Prefix, int]
Entry = Tuple[Prefix, int]

#: First-level stride (bits 0-15): one slot per /16.
_L1_BITS = 16
_L1_SIZE = 1 << _L1_BITS
#: Second and third level strides (bits 16-23 and 24-31).
_SUB_SIZE = 1 << 8

#: Valid values of :attr:`repro.engine.simulator.EngineConfig.lookup_backend`.
LOOKUP_BACKENDS = ("trie", "fast", "verify")


class BackendMismatchError(AssertionError):
    """The fast backend disagreed with the reference trie."""


def make_lookup_table(routes: Iterable[Route], backend: str = "trie"):
    """Build a chip lookup table for the configured backend.

    ``"trie"`` is the reference :class:`BinaryTrie`; ``"fast"`` the
    flattened :class:`FastLpmTable`; ``"verify"`` runs both and checks
    every lookup (:class:`VerifyingLpmTable`).
    """
    if backend == "trie":
        return BinaryTrie.from_routes(routes)
    if backend == "fast":
        return FastLpmTable(routes)
    if backend == "verify":
        return VerifyingLpmTable(routes)
    raise ValueError(
        f"unknown lookup backend {backend!r} (choose from {LOOKUP_BACKENDS})"
    )


class FastLpmTable:
    """Routing table with O(1) flattened lookups and incremental repaint.

    Implements the full mapping interface of :class:`BinaryTrie` (insert,
    delete, get, routes, iteration, …) — structural queries delegate to
    the shadow trie — plus the flattened ``lookup``/``lookup_prefix``
    data path.

    >>> table = FastLpmTable([(Prefix.from_bits("1"), 1),
    ...                       (Prefix.from_bits("100"), 2)])
    >>> table.lookup_prefix(0b100 << 29)
    (Prefix('128.0.0.0/3'), 2)
    >>> table.lookup(0b111 << 29)
    1
    """

    def __init__(self, routes: Iterable[Route] = ()) -> None:
        self._trie = BinaryTrie.from_routes(routes)
        self._hops: Dict[Prefix, int] = self._trie.as_dict()
        self._l1: List[object] = []
        #: Repaint bookkeeping (exposed for benches and DESIGN.md §10).
        self.rebuilds = 0
        self.repaints = 0
        #: Content-change counter.  Certificates about table content (the
        #: engine's disjointness token, see
        #: :meth:`LookupEngine.mark_tables_disjoint`) record this value and
        #: self-invalidate when it moves.
        self.mutations = 0
        self.rebuild()

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def lookup_prefix(self, address: int) -> Optional[Entry]:
        """LPM lookup returning the matching ``(prefix, hop)`` pair."""
        entry = self._l1[address >> 16]
        if type(entry) is list:
            entry = entry[(address >> 8) & 0xFF]
            if type(entry) is list:
                entry = entry[address & 0xFF]
        return entry

    def lookup(self, address: int) -> Optional[int]:
        """Longest-prefix-match lookup of a 32-bit address."""
        entry = self._l1[address >> 16]
        if type(entry) is list:
            entry = entry[(address >> 8) & 0xFF]
            if type(entry) is list:
                entry = entry[address & 0xFF]
        return None if entry is None else entry[1]

    # ------------------------------------------------------------------
    # Mapping operations (mirror BinaryTrie's contract)
    # ------------------------------------------------------------------

    def insert(self, prefix: Prefix, next_hop: int) -> bool:
        """Insert or overwrite a route; repaints only its region."""
        is_new = self._trie.insert(prefix, next_hop)
        self._hops[prefix] = next_hop
        self.mutations += 1
        self._repaint(prefix)
        return is_new

    def delete(self, prefix: Prefix) -> bool:
        """Remove a route; repaints only its region."""
        if not self._trie.delete(prefix):
            return False
        del self._hops[prefix]
        self.mutations += 1
        self._repaint(prefix)
        return True

    def get(self, prefix: Prefix) -> Optional[int]:
        """Exact-match lookup — O(1), unlike the trie's per-bit walk."""
        return self._hops.get(prefix)

    def routes(self) -> Iterator[Route]:
        """Routes in the trie's inorder (address order), like the trie."""
        return self._trie.routes()

    def as_dict(self) -> Dict[Prefix, int]:
        return dict(self._trie.routes())

    def __len__(self) -> int:
        return len(self._hops)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._hops

    def __iter__(self) -> Iterator[Route]:
        return self._trie.routes()

    def __getattr__(self, name: str):
        # Structural queries (prefixes, next_hops, is_disjoint, find_node,
        # effective_hop, node_count, …) delegate to the shadow trie.
        # Only non-mutating attributes may be reached this way; the
        # mutators are overridden above so the flat table never drifts.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._trie, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FastLpmTable routes={len(self._hops)}>"

    # ------------------------------------------------------------------
    # Compilation (full rebuild and incremental repaint)
    # ------------------------------------------------------------------

    def rebuild(self) -> None:
        """Recompile the whole stride table from the shadow trie."""
        self._l1 = [None] * _L1_SIZE
        self._paint_node(self._trie.root, 0, 0, None)
        self.rebuilds += 1

    def _repaint(self, prefix: Prefix) -> None:
        """Recompute every slot ``prefix`` covers (and nothing else).

        Routes below the prefix still paint themselves via the subtree
        descent; the covering answer inherited from above is recomputed
        once.  After a delete has pruned the path entirely, the region is
        a uniform fill with the inherited answer.
        """
        node = self._trie.find_node(prefix)
        best = self._best_above(prefix)
        if node is None:
            self._fill(prefix.value, prefix.length, best)
        else:
            self._paint_node(node, prefix.value, prefix.length, best)
        self.repaints += 1

    def _best_above(self, prefix: Prefix) -> Optional[Entry]:
        """The LPM entry a strictly shorter route contributes at ``prefix``."""
        node = self._trie.root
        length = prefix.length
        best: Optional[Entry] = None
        if length and node.next_hop is not None:
            best = (Prefix.root(), node.next_hop)
        value = 0
        for position in range(length):
            bit = (prefix.value >> (length - 1 - position)) & 1
            node = node.child(bit)
            if node is None:
                break
            value = (value << 1) | bit
            if position + 1 < length and node.next_hop is not None:
                best = (Prefix(value, position + 1), node.next_hop)
        return best

    def _paint_node(
        self,
        node: TrieNode,
        value: int,
        depth: int,
        best: Optional[Entry],
    ) -> None:
        """Preorder descent: paint each childless half with the best entry."""
        if node.next_hop is not None:
            best = (Prefix(value, depth), node.next_hop)
        left, right = node.left, node.right
        if left is None and right is None:
            self._fill(value, depth, best)
            return
        if left is not None:
            self._paint_node(left, value << 1, depth + 1, best)
        else:
            self._fill(value << 1, depth + 1, best)
        if right is not None:
            self._paint_node(right, (value << 1) | 1, depth + 1, best)
        else:
            self._fill((value << 1) | 1, depth + 1, best)

    def _fill(self, value: int, depth: int, entry: Optional[Entry]) -> None:
        """Paint ``entry`` over every slot the region ``value/depth`` covers.

        Callers guarantee the region holds no longer route than the ones
        already painted by the surrounding descent, so replacing a block
        with plain entries here is always correct.
        """
        if depth <= _L1_BITS:
            shift = _L1_BITS - depth
            start = value << shift
            count = 1 << shift
            self._l1[start:start + count] = [entry] * count
            return
        l1_index = value >> (depth - _L1_BITS)
        block = self._l1[l1_index]
        if type(block) is not list:
            # Blockify: the old uniform answer becomes the default.
            block = [block] * _SUB_SIZE
            self._l1[l1_index] = block
        if depth <= 24:
            shift = 24 - depth
            start = (value << shift) & 0xFF
            count = 1 << shift
            block[start:start + count] = [entry] * count
            return
        sub = block[(value >> (depth - 24)) & 0xFF]
        if type(sub) is not list:
            sub = [sub] * _SUB_SIZE
            block[(value >> (depth - 24)) & 0xFF] = sub
        shift = ADDRESS_WIDTH - depth
        start = (value << shift) & 0xFF
        count = 1 << shift
        sub[start:start + count] = [entry] * count

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def slot_stats(self) -> Dict[str, int]:
        """Allocated stride-table structure (memory footprint driver)."""
        l2_blocks = 0
        l3_blocks = 0
        for slot in self._l1:
            if type(slot) is list:
                l2_blocks += 1
                for sub in slot:
                    if type(sub) is list:
                        l3_blocks += 1
        return {
            "level1_slots": _L1_SIZE,
            "level2_blocks": l2_blocks,
            "level3_blocks": l3_blocks,
        }


class VerifyingLpmTable:
    """Parity harness: reference trie and fast table, checked per lookup.

    Every data-path query runs on both backends and must agree; mutations
    are applied to both.  This is ``EngineConfig(lookup_backend="verify")``
    — slower than either backend alone, but it turns any semantic drift
    into an immediate :class:`BackendMismatchError` instead of a silently
    wrong benchmark figure.
    """

    def __init__(self, routes: Iterable[Route] = ()) -> None:
        routes = list(routes)
        self.trie = BinaryTrie.from_routes(routes)
        self.fast = FastLpmTable(routes)
        #: Data-path queries that were cross-checked.
        self.checked = 0

    # -- data path (checked) -------------------------------------------

    def lookup_prefix(self, address: int) -> Optional[Entry]:
        expected = self.trie.lookup_prefix(address)
        actual = self.fast.lookup_prefix(address)
        if expected != actual:
            raise BackendMismatchError(
                f"lookup_prefix({address:#010x}): trie says {expected!r}, "
                f"fast table says {actual!r}"
            )
        self.checked += 1
        return actual

    def lookup(self, address: int) -> Optional[int]:
        expected = self.trie.lookup(address)
        actual = self.fast.lookup(address)
        if expected != actual:
            raise BackendMismatchError(
                f"lookup({address:#010x}): trie says {expected!r}, "
                f"fast table says {actual!r}"
            )
        self.checked += 1
        return actual

    def get(self, prefix: Prefix) -> Optional[int]:
        expected = self.trie.get(prefix)
        actual = self.fast.get(prefix)
        if expected != actual:
            raise BackendMismatchError(
                f"get({prefix}): trie says {expected!r}, "
                f"fast table says {actual!r}"
            )
        return actual

    # -- mutations (mirrored) ------------------------------------------

    def insert(self, prefix: Prefix, next_hop: int) -> bool:
        is_new = self.trie.insert(prefix, next_hop)
        self.fast.insert(prefix, next_hop)
        return is_new

    def delete(self, prefix: Prefix) -> bool:
        found = self.trie.delete(prefix)
        self.fast.delete(prefix)
        return found

    # -- structural reads (trie is authoritative) ----------------------

    def routes(self) -> Iterator[Route]:
        return self.trie.routes()

    def as_dict(self) -> Dict[Prefix, int]:
        return self.trie.as_dict()

    def __len__(self) -> int:
        return len(self.trie)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self.trie

    def __iter__(self) -> Iterator[Route]:
        return self.trie.routes()

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.trie, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VerifyingLpmTable routes={len(self.trie)} checked={self.checked}>"
