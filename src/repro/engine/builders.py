"""Engine builders: wire a routing table into a ready-to-run engine.

Each builder performs a scheme's full setup pipeline — compression (or
not), partitioning, partition→chip mapping, indexing logic, redundancy
provisioning — and returns a :class:`BuiltEngine` bundling the engine with
everything the benchmarks report on (partition sizes, TCAM entry counts,
redundancy).

The partition→chip mapping accepts a measured per-partition load so the
benches can reproduce Table II / Figure 15's *adversarial* mapping: sort
partitions by traffic share and give the hottest block to chip 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Counter as CounterType
from collections import Counter
from typing import List, Optional, Sequence, Tuple

from repro.compress.labels import CompressionMode
from repro.compress.onrtc import compress
from repro.engine.schemes import (
    CluePolicy,
    ClplPolicy,
    RoundRobinPolicy,
    SchemePolicy,
    SlplPolicy,
)
from repro.engine.simulator import EngineConfig, LookupEngine
from repro.net.prefix import Prefix
from repro.partition.base import PartitionResult
from repro.partition.even import even_partition
from repro.partition.idbit import idbit_partition
from repro.partition.index_logic import (
    BitIndex,
    IndexingLogic,
    PrefixIndex,
    RangeIndex,
    build_index,
)
from repro.partition.subtree import subtree_partition
from repro.trie.traversal import subtree_routes
from repro.trie.trie import BinaryTrie

Route = Tuple[Prefix, int]


class FlatHomeIndex:
    """Step II (Indexing Logic) flattened to one array index per packet.

    CLUE's range table is a binary search over partition boundaries; on the
    simulator's hot path that bisect (plus the partition→chip mapping hop)
    runs once per arriving packet.  The same trick as the DIR-24-8 lookup
    backend applies: precompute the answer per /16 block.  Blocks that a
    partition boundary splits keep a ``-1`` sentinel and fall back to the
    exact bisect — there are at most ``partition_count - 1`` such blocks.

    The instance is callable with the same signature as the lambda it
    replaces; the engine's fused loop recognises the ``home_l1`` attribute
    and indexes the array directly.
    """

    __slots__ = ("index", "mapping", "home_l1")

    def __init__(self, index: RangeIndex, mapping: Sequence[int]) -> None:
        self.index = index
        self.mapping = list(mapping)
        home_l1 = [-1] * (1 << 16)
        fences = list(index.boundaries) + [1 << 32]
        for partition in range(len(index.boundaries)):
            start, end = fences[partition], fences[partition + 1]
            chip = self.mapping[partition]
            first_block = (start + 0xFFFF) >> 16  # first fully-covered /16
            for block in range(first_block, end >> 16):
                home_l1[block] = chip
        self.home_l1 = home_l1

    def __call__(self, address: int) -> int:
        chip = self.home_l1[address >> 16]
        if chip >= 0:
            return chip
        return self.mapping[self.index.home_of(address)]


@dataclass
class BuiltEngine:
    """A configured engine plus the setup artefacts benchmarks report."""

    engine: LookupEngine
    scheme: SchemePolicy
    partition_result: PartitionResult
    index: IndexingLogic
    partition_to_chip: List[int]
    tcam_entries_per_chip: List[int]

    @property
    def total_tcam_entries(self) -> int:
        """Main-partition entries across all chips (DRed slots excluded)."""
        return sum(self.tcam_entries_per_chip)


def measure_partition_load(
    index: IndexingLogic, addresses: Sequence[int], partition_count: int
) -> List[int]:
    """Packets per partition for a traffic sample (Table II's percentages)."""
    loads: CounterType[int] = Counter(
        index.home_of(address) for address in addresses
    )
    return [loads.get(partition, 0) for partition in range(partition_count)]


def map_partitions_to_chips(
    partition_count: int,
    chip_count: int,
    loads: Optional[Sequence[int]] = None,
) -> List[int]:
    """Assign partitions to chips in contiguous groups.

    Without ``loads``, partition ``p`` goes to chip ``p // (count/chips)``
    (the natural mapping).  With ``loads``, partitions are sorted by load,
    descending, and dealt out in blocks — the paper's worst-case mapping
    where chip 0 receives the eight hottest partitions.
    """
    if partition_count % chip_count:
        raise ValueError("partition count must divide evenly among chips")
    per_chip = partition_count // chip_count
    mapping = [0] * partition_count
    if loads is None:
        order = list(range(partition_count))
    else:
        if len(loads) != partition_count:
            raise ValueError("one load per partition required")
        order = sorted(
            range(partition_count), key=lambda p: loads[p], reverse=True
        )
    for position, partition in enumerate(order):
        mapping[partition] = position // per_chip
    return mapping


def _chip_tables(
    result: PartitionResult, partition_to_chip: List[int], chip_count: int
) -> List[List[Route]]:
    tables: List[List[Route]] = [[] for _ in range(chip_count)]
    for partition in result.partitions:
        tables[partition_to_chip[partition.index]].extend(
            partition.all_routes()
        )
    return tables


def build_clue_engine(
    routes: Sequence[Route],
    config: Optional[EngineConfig] = None,
    partitions_per_chip: int = 8,
    mode: CompressionMode = CompressionMode.DONT_CARE,
    partition_loads: Optional[Sequence[int]] = None,
) -> BuiltEngine:
    """ONRTC-compress, even-partition and wire up the CLUE engine."""
    config = config or EngineConfig()
    reference = BinaryTrie.from_routes(routes)
    compressed = sorted(
        compress(reference, mode).items(), key=lambda r: r[0].sort_key()
    )
    partition_count = config.chip_count * partitions_per_chip
    result = even_partition(compressed, partition_count)
    index = RangeIndex.from_partition(result)
    mapping = map_partitions_to_chips(
        partition_count, config.chip_count, partition_loads
    )
    tables = _chip_tables(result, mapping, config.chip_count)
    engine = LookupEngine(
        tables,
        home_of=FlatHomeIndex(index, mapping),
        scheme=CluePolicy(),
        config=config,
        reference=reference,
    )
    # ONRTC output is pairwise disjoint (boundary-spanning entries are
    # exact replicas), so certify it for the engine's O(1) DRed path.
    engine.mark_tables_disjoint()
    return BuiltEngine(
        engine=engine,
        scheme=engine.scheme,
        partition_result=result,
        index=index,
        partition_to_chip=mapping,
        tcam_entries_per_chip=[len(table) for table in tables],
    )


def build_clpl_engine(
    routes: Sequence[Route],
    config: Optional[EngineConfig] = None,
    partitions_per_chip: int = 8,
    partition_loads: Optional[Sequence[int]] = None,
) -> BuiltEngine:
    """Sub-tree partition the uncompressed table and wire up CLPL."""
    config = config or EngineConfig()
    reference = BinaryTrie.from_routes(routes)
    partition_count = config.chip_count * partitions_per_chip
    result = subtree_partition(reference, partition_count)
    index = PrefixIndex.from_partition(result)
    mapping = map_partitions_to_chips(
        partition_count, config.chip_count, partition_loads
    )
    tables = _chip_tables(result, mapping, config.chip_count)
    engine = LookupEngine(
        tables,
        home_of=lambda address: mapping[index.home_of(address)],
        scheme=ClplPolicy(),
        config=config,
        reference=reference,
    )
    return BuiltEngine(
        engine=engine,
        scheme=engine.scheme,
        partition_result=result,
        index=index,
        partition_to_chip=mapping,
        tcam_entries_per_chip=[len(table) for table in tables],
    )


def build_slpl_engine(
    routes: Sequence[Route],
    training_addresses: Sequence[int],
    config: Optional[EngineConfig] = None,
    redundancy_fraction: float = 0.25,
) -> BuiltEngine:
    """ID-bit partition plus statically replicated hot prefixes (SLPL).

    ``training_addresses`` plays the role of the long-period statistics the
    scheme selects its redundancy from; the hottest prefixes are replicated
    into every chip until ``redundancy_fraction`` extra entries are spent.
    """
    config = config or EngineConfig()
    reference = BinaryTrie.from_routes(routes)
    result = idbit_partition(routes, config.chip_count)
    index = BitIndex.from_partition(result)
    mapping = list(range(config.chip_count))  # buckets already packed
    tables = _chip_tables(result, mapping, config.chip_count)

    hits: CounterType[Prefix] = Counter()
    for address in training_addresses:
        match = reference.lookup_prefix(address)
        if match is not None:
            hits[match[0]] += 1
    budget = int(len(routes) * redundancy_fraction)
    chips_minus_one = max(1, config.chip_count - 1)
    hot_set = BinaryTrie()
    spent = 0
    for prefix, _count in hits.most_common():
        if hot_set.effective_hop(prefix) is not None:
            continue  # already covered by a hotter (shorter) replica group
        # Replicating a prefix alone would be wrong: a diverted packet whose
        # true LPM is a more-specific route under it would match the replica
        # instead.  Replicate the whole descendant closure so any chip can
        # answer exactly.
        closure = subtree_routes(reference, prefix)
        cost = len(closure) * chips_minus_one
        if spent + cost > budget:
            continue
        spent += cost
        hot_set.insert(prefix, closure[0][1] if closure else 0)
        for chip_index, table in enumerate(tables):
            for replica_prefix, replica_hop in closure:
                if index.home_of(replica_prefix.network) != chip_index:
                    table.append((replica_prefix, replica_hop))

    engine = LookupEngine(
        tables,
        home_of=index.home_of,
        scheme=SlplPolicy(hot_set),
        config=config,
        reference=reference,
    )
    return BuiltEngine(
        engine=engine,
        scheme=engine.scheme,
        partition_result=result,
        index=index,
        partition_to_chip=mapping,
        tcam_entries_per_chip=[len(table) for table in tables],
    )


def build_round_robin_engine(
    routes: Sequence[Route],
    config: Optional[EngineConfig] = None,
) -> BuiltEngine:
    """Full-duplication baseline: whole table on every chip."""
    config = config or EngineConfig()
    reference = BinaryTrie.from_routes(routes)
    tables = [list(routes) for _ in range(config.chip_count)]
    counter = {"next": 0}

    def round_robin(address: int) -> int:
        del address
        chip = counter["next"]
        counter["next"] = (chip + 1) % config.chip_count
        return chip

    result = PartitionResult(
        algorithm="round-robin-duplicate",
        partitions=[],
    )
    engine = LookupEngine(
        tables,
        home_of=round_robin,
        scheme=RoundRobinPolicy(),
        config=config,
        reference=reference,
    )
    return BuiltEngine(
        engine=engine,
        scheme=engine.scheme,
        partition_result=result,
        index=RangeIndex([0]),
        partition_to_chip=[0] * config.chip_count,
        tcam_entries_per_chip=[len(table) for table in tables],
    )


__all__ = [
    "BuiltEngine",
    "build_clpl_engine",
    "build_clue_engine",
    "build_round_robin_engine",
    "build_slpl_engine",
    "map_partitions_to_chips",
    "measure_partition_load",
    "build_index",
]
