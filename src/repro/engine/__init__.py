"""Parallel TCAM lookup engine with dynamic redundancy (Figure 1)."""

from repro.engine.builders import (
    BuiltEngine,
    build_clpl_engine,
    build_clue_engine,
    build_round_robin_engine,
    build_slpl_engine,
    map_partitions_to_chips,
    measure_partition_load,
)
from repro.engine.dred import DredCache, DredEntry
from repro.engine.events import Completion, LookupKind, Packet
from repro.engine.fastlpm import (
    LOOKUP_BACKENDS,
    BackendMismatchError,
    FastLpmTable,
    VerifyingLpmTable,
    make_lookup_table,
)
from repro.engine.queues import BoundedFifo, UpdateQueue
from repro.engine.reorder import ReorderBuffer
from repro.engine.rrcme import Expansion, minimal_expansion
from repro.engine.schemes import (
    CluePolicy,
    ClplPolicy,
    RoundRobinPolicy,
    SchemePolicy,
    SlplPolicy,
)
from repro.engine.simulator import ChipState, EngineConfig, LookupEngine
from repro.engine.stats import EngineStats
from repro.engine.timeline import Timeline, TimelineSample

__all__ = [
    "BackendMismatchError",
    "BoundedFifo",
    "BuiltEngine",
    "ChipState",
    "CluePolicy",
    "ClplPolicy",
    "Completion",
    "DredCache",
    "DredEntry",
    "EngineConfig",
    "EngineStats",
    "Expansion",
    "FastLpmTable",
    "LOOKUP_BACKENDS",
    "LookupEngine",
    "LookupKind",
    "Packet",
    "ReorderBuffer",
    "RoundRobinPolicy",
    "SchemePolicy",
    "SlplPolicy",
    "Timeline",
    "TimelineSample",
    "UpdateQueue",
    "VerifyingLpmTable",
    "build_clpl_engine",
    "build_clue_engine",
    "build_round_robin_engine",
    "build_slpl_engine",
    "make_lookup_table",
    "map_partitions_to_chips",
    "measure_partition_load",
    "minimal_expansion",
]
