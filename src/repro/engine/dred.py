"""Dynamic Redundancy (DRed) — the prefix cache inside each chip.

CLPL calls these "logical caches"; the paper insists DRed is *not* really a
cache (a packet is never looked up in both its home TCAM and a DRed), but
its content is maintained with a cache policy: prefixes observed to hit in
some chip's main partition are inserted, LRU evicts.

Two properties distinguish the schemes and are both modelled here:

* **exclusion** — CLUE never stores chip *i*'s own prefixes in DRed *i*
  (the pair is never searched for the same packet), which is the "3/4 the
  redundancy" saving with four chips.  The owner is recorded per entry and
  the exclusion enforced on insert.
* **lookup semantics** — LPM over the cached prefixes.  CLUE's entries are
  disjoint table entries, so at most one can match; CLPL's RRC-ME outputs
  are non-overlapping by construction as well, but the cache performs a
  genuine longest-match so that mixed or transiently-stale content stays
  correct.
"""

from __future__ import annotations

from bisect import insort
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.net.prefix import ADDRESS_WIDTH, Prefix


@dataclass(frozen=True)
class DredEntry:
    """A cached prefix with its hop and the chip whose table owns it."""

    prefix: Prefix
    next_hop: int
    owner: int


class DredCache:
    """LRU prefix cache with owner-exclusion and LPM lookups.

    >>> cache = DredCache(capacity=2, chip_index=0, exclude_own=True)
    >>> cache.insert(Prefix.from_bits("1"), 7, owner=1)
    True
    >>> cache.insert(Prefix.from_bits("0"), 8, owner=0)   # own chip: refused
    False
    """

    def __init__(
        self, capacity: int, chip_index: int, exclude_own: bool
    ) -> None:
        if capacity <= 0:
            raise ValueError("DRed capacity must be positive")
        self.capacity = capacity
        self.chip_index = chip_index
        self.exclude_own = exclude_own
        self._entries: "OrderedDict[Prefix, DredEntry]" = OrderedDict()
        # Per-length membership for longest-prefix lookup.
        self._by_length: Dict[int, Dict[int, Prefix]] = {}
        # Occupied lengths, ascending.  A routing-table-shaped cache holds
        # a handful of distinct lengths, so scanning this (longest first)
        # beats probing all 33 possible lengths on every lookup.
        self._lengths: List[int] = []
        # Probe plan for the LPM scan: ``(shift, bucket)`` pairs, longest
        # length first, with the shift precomputed (``address >> shift`` is
        # the bucket key; length 0 shifts the whole address away, so its
        # key is 0 as required).  Kept in lockstep with ``_lengths`` so the
        # hot lookup needs no per-probe dict indirection.
        self._probe: List[Tuple[int, Dict[int, Prefix]]] = []
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.refreshes = 0
        self.evictions = 0

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._entries

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------

    @property
    def occupied_lengths(self) -> Tuple[int, ...]:
        """The distinct prefix lengths currently cached, ascending."""
        return tuple(self._lengths)

    def lookup(self, address: int) -> Optional[DredEntry]:
        """LPM over cached prefixes; updates recency and hit statistics."""
        entries = self._entries
        for shift, bucket in self._probe:
            prefix = bucket.get(address >> shift)
            if prefix is not None:
                entry = entries[prefix]
                entries.move_to_end(prefix)
                self.hits += 1
                return entry
        self.misses += 1
        return None

    def insert(self, prefix: Prefix, next_hop: int, owner: int) -> bool:
        """Cache a prefix; returns False when the exclusion rule refuses it.

        Re-inserting an existing prefix refreshes its hop and recency.
        """
        if self.exclude_own and owner == self.chip_index:
            return False
        entries = self._entries
        existing = entries.get(prefix)
        if existing is not None:
            self.refreshes += 1
            if existing.next_hop == next_hop and existing.owner == owner:
                # Pure recency refresh — the overwhelmingly common case on
                # the engine's hot path (every main hit re-offers the same
                # hot prefixes).  The stored entry is already correct.
                entries.move_to_end(prefix)
                return True
            entries[prefix] = DredEntry(prefix, next_hop, owner)
            entries.move_to_end(prefix)
            # Re-point the length index at the refreshing Prefix object:
            # value-equal keys make a stale reference functionally
            # invisible, but the index and entry map must stay in lockstep
            # for the eviction bookkeeping to be auditable.
            self._by_length[prefix.length][prefix.value] = prefix
            return True
        while len(self._entries) >= self.capacity:
            self._evict()
        self._entries[prefix] = DredEntry(prefix, next_hop, owner)
        bucket = self._by_length.get(prefix.length)
        if bucket is None:
            bucket = self._by_length[prefix.length] = {}
            insort(self._lengths, prefix.length)
            shift = ADDRESS_WIDTH - prefix.length
            # _probe sorts longest-first == ascending shift.
            insort(self._probe, (shift, bucket), key=lambda pair: pair[0])
        bucket[prefix.value] = prefix
        self.insertions += 1
        return True

    def delete(self, prefix: Prefix) -> bool:
        """Remove a prefix (the CLUE DRed-update path: 'if it exists, just
        delete it; otherwise do nothing')."""
        entry = self._entries.pop(prefix, None)
        if entry is None:
            return False
        self._remove_index(prefix)
        return True

    def invalidate_overlapping(self, prefix: Prefix) -> Tuple[int, int]:
        """Remove every cached entry overlapping ``prefix``.

        This is what CLPL's DRed update must do after a table change: any
        cached RRC-ME expansion that overlaps the updated prefix may now be
        stale.  Returns ``(removed, scanned)`` — ``scanned`` models the SRAM
        walk cost of identifying the victims.
        """
        victims = [
            cached for cached in self._entries if cached.overlaps(prefix)
        ]
        for cached in victims:
            del self._entries[cached]
            self._remove_index(cached)
        return len(victims), len(self._entries) + len(victims)

    # ------------------------------------------------------------------

    def _evict(self) -> None:
        prefix, _ = self._entries.popitem(last=False)
        self._remove_index(prefix)
        self.evictions += 1

    def _remove_index(self, prefix: Prefix) -> None:
        bucket = self._by_length.get(prefix.length)
        if bucket is not None:
            bucket.pop(prefix.value, None)
            if not bucket:
                del self._by_length[prefix.length]
                self._lengths.remove(prefix.length)
                self._probe.remove((ADDRESS_WIDTH - prefix.length, bucket))
