"""Dynamic Redundancy (DRed) — the prefix cache inside each chip.

CLPL calls these "logical caches"; the paper insists DRed is *not* really a
cache (a packet is never looked up in both its home TCAM and a DRed), but
its content is maintained with a cache policy: prefixes observed to hit in
some chip's main partition are inserted, LRU evicts.

Two properties distinguish the schemes and are both modelled here:

* **exclusion** — CLUE never stores chip *i*'s own prefixes in DRed *i*
  (the pair is never searched for the same packet), which is the "3/4 the
  redundancy" saving with four chips.  The owner is recorded per entry and
  the exclusion enforced on insert.
* **lookup semantics** — LPM over the cached prefixes.  CLUE's entries are
  disjoint table entries, so at most one can match; CLPL's RRC-ME outputs
  are non-overlapping by construction as well, but the cache performs a
  genuine longest-match so that mixed or transiently-stale content stays
  correct.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.net.prefix import ADDRESS_WIDTH, Prefix


@dataclass(frozen=True)
class DredEntry:
    """A cached prefix with its hop and the chip whose table owns it."""

    prefix: Prefix
    next_hop: int
    owner: int


class DredCache:
    """LRU prefix cache with owner-exclusion and LPM lookups.

    >>> cache = DredCache(capacity=2, chip_index=0, exclude_own=True)
    >>> cache.insert(Prefix.from_bits("1"), 7, owner=1)
    True
    >>> cache.insert(Prefix.from_bits("0"), 8, owner=0)   # own chip: refused
    False
    """

    def __init__(
        self, capacity: int, chip_index: int, exclude_own: bool
    ) -> None:
        if capacity <= 0:
            raise ValueError("DRed capacity must be positive")
        self.capacity = capacity
        self.chip_index = chip_index
        self.exclude_own = exclude_own
        self._entries: "OrderedDict[Prefix, DredEntry]" = OrderedDict()
        # Per-length membership for O(32) longest-prefix lookup.
        self._by_length: Dict[int, Dict[int, Prefix]] = {}
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._entries

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------

    def lookup(self, address: int) -> Optional[DredEntry]:
        """LPM over cached prefixes; updates recency and hit statistics."""
        for length in range(ADDRESS_WIDTH, -1, -1):
            bucket = self._by_length.get(length)
            if not bucket:
                continue
            key = address >> (ADDRESS_WIDTH - length) if length else 0
            prefix = bucket.get(key)
            if prefix is not None:
                entry = self._entries[prefix]
                self._entries.move_to_end(prefix)
                self.hits += 1
                return entry
        self.misses += 1
        return None

    def insert(self, prefix: Prefix, next_hop: int, owner: int) -> bool:
        """Cache a prefix; returns False when the exclusion rule refuses it.

        Re-inserting an existing prefix refreshes its hop and recency.
        """
        if self.exclude_own and owner == self.chip_index:
            return False
        if prefix in self._entries:
            self._entries[prefix] = DredEntry(prefix, next_hop, owner)
            self._entries.move_to_end(prefix)
            return True
        while len(self._entries) >= self.capacity:
            self._evict()
        self._entries[prefix] = DredEntry(prefix, next_hop, owner)
        bucket = self._by_length.setdefault(prefix.length, {})
        bucket[prefix.value] = prefix
        self.insertions += 1
        return True

    def delete(self, prefix: Prefix) -> bool:
        """Remove a prefix (the CLUE DRed-update path: 'if it exists, just
        delete it; otherwise do nothing')."""
        entry = self._entries.pop(prefix, None)
        if entry is None:
            return False
        self._remove_index(prefix)
        return True

    def invalidate_overlapping(self, prefix: Prefix) -> Tuple[int, int]:
        """Remove every cached entry overlapping ``prefix``.

        This is what CLPL's DRed update must do after a table change: any
        cached RRC-ME expansion that overlaps the updated prefix may now be
        stale.  Returns ``(removed, scanned)`` — ``scanned`` models the SRAM
        walk cost of identifying the victims.
        """
        victims = [
            cached for cached in self._entries if cached.overlaps(prefix)
        ]
        for cached in victims:
            del self._entries[cached]
            self._remove_index(cached)
        return len(victims), len(self._entries) + len(victims)

    # ------------------------------------------------------------------

    def _evict(self) -> None:
        prefix, _ = self._entries.popitem(last=False)
        self._remove_index(prefix)
        self.evictions += 1

    def _remove_index(self, prefix: Prefix) -> None:
        bucket = self._by_length.get(prefix.length)
        if bucket is not None:
            bucket.pop(prefix.value, None)
            if not bucket:
                del self._by_length[prefix.length]
